#!/bin/sh
# Tier-1 verification, run exactly as CI does.
#
# CARGO_NET_OFFLINE=1 makes any accidental reintroduction of a crates.io
# dependency fail immediately: this workspace builds from the standard
# library alone (see README "Zero dependencies").
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

cargo build --release --workspace
cargo test -q

# Docs must stay warning-free (missing_docs is denied in core and obs) and
# the doctests across every crate must run — the workspace flag includes
# each member's unit, integration, and documentation tests.
cargo test -q --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Doc-drift gate: the operator runbook (docs/SERVING.md) and the
# metrics reference (docs/OBSERVABILITY.md) are checked against the
# code-side enumerations — wire ops, the full counter/gauge/histogram
# registry, error codes, query exit codes — so they cannot rot
# silently. This already ran under `cargo test` above; run it by name
# so a drift failure is unmistakable in CI output.
cargo test -q --test doc_drift
echo "doc drift gate passed (docs/SERVING.md and docs/OBSERVABILITY.md match the code)"

# Serving smoke test: start the daemon on an ephemeral port, prove the
# second identical query is a cache hit, and check it drains and exits 0
# on `shutdown` within a timeout. Tracing is on (--trace-out) so the
# drain also exercises the Chrome trace export.
SERVE_METRICS="$(mktemp)"
SERVE_LOG="$(mktemp)"
SERVE_TRACE="$(mktemp)"
SERVE_PROM="$(mktemp)"
SERVE_SERIES="$(mktemp)"
TOP_FRAME="$(mktemp)"
target/release/datareuse serve --addr 127.0.0.1:0 --metrics "$SERVE_METRICS" \
    --trace-out "$SERVE_TRACE" --series-out "$SERVE_SERIES" \
    --scrape-ms 50 > "$SERVE_LOG" &
SERVE_PID=$!
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR="$(sed -n 's/^datareuse-serve: listening on //p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "serve smoke: daemon never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
SMOKE_REQ='{"op":"explore","kernel":"me-small","array":"Old"}'
target/release/datareuse query --addr "$ADDR" "$SMOKE_REQ" \
    | grep -q '"cached":false'
target/release/datareuse query --addr "$ADDR" "$SMOKE_REQ" \
    | grep -q '"cached":true'
# Scrape the Prometheus exposition while the daemon is still up.
target/release/datareuse query --addr "$ADDR" '{"op":"prom"}' > "$SERVE_PROM"

# Memstats smoke: the allocator accounting op must answer inline with
# the v1 schema, nonzero allocator traffic, and the serve section that
# splits computed leaders from coalesced followers.
MEMSTATS="$(mktemp)"
target/release/datareuse query --addr "$ADDR" '{"op":"memstats"}' > "$MEMSTATS"
for needle in '"schema":"datareuse-memstats-v1"' '"allocator":' \
    '"bytes_allocated":' '"live_bytes":' '"peak_bytes":' \
    '"computed":' '"coalesced_followers":'; do
    if ! grep -qF "$needle" "$MEMSTATS"; then
        echo "serve smoke: memstats response lacks $needle" >&2
        cat "$MEMSTATS" >&2
        exit 1
    fi
done
if grep -qF '"bytes_allocated":0,' "$MEMSTATS"; then
    echo "serve smoke: memstats reports a zero-allocation server" >&2
    exit 1
fi
rm -f "$MEMSTATS"

# Health gate: a freshly exercised daemon under default SLOs must grade
# ok, and the probe contract is the exit code itself (0 ok, 5 degraded,
# 6 failing) — under `set -e` a degraded/failing grade aborts here.
target/release/datareuse query --addr "$ADDR" '{"op":"health"}' \
    | grep -q '"status":"ok"'

# Dashboard gate: one `top` frame over the live series. Give the 50ms
# scraper a beat so the sparklines have points, then diff the frame's
# shape — numbers collapsed to N, sparkline cells to SPARK — against
# the golden skeleton. `--once --ascii` output must carry no ANSI.
sleep 0.3
target/release/datareuse top --addr "$ADDR" --once --ascii > "$TOP_FRAME"
if grep -q "$(printf '\033')" "$TOP_FRAME"; then
    echo "serve smoke: top --once --ascii emitted ANSI escapes" >&2
    exit 1
fi
sed -e "s|$ADDR|ADDR|" \
    -e 's/  */ /g' \
    -e 's/[0-9][0-9.]*/N/g' \
    -e 's/[_.:=+*#-]\{1,\}$/SPARK/' \
    -e 's/within-noise/VERDICT/' \
    -e 's/better/VERDICT/' \
    -e 's/regressed/VERDICT/' "$TOP_FRAME" > "$TOP_FRAME.norm"
cat > "$TOP_FRAME.golden" <<'EOF'
datareuse top — ADDR
requests N errors N timeouts N overloaded N
cache hits N misses N hit ratio N%
queue depth N now, N peak
latency window pN Nms pN Nms
req/win SPARK
pN SPARK
pN SPARK
points N
memory live NMB peak NMB alloc NMB/s
scorecard pN VERDICT vs baseline (N metrics)
EOF
if ! diff -u "$TOP_FRAME.golden" "$TOP_FRAME.norm"; then
    echo "serve smoke: top frame shape drifted from the golden skeleton" >&2
    echo "--- raw frame ---" >&2
    cat "$TOP_FRAME" >&2
    exit 1
fi

target/release/datareuse query --addr "$ADDR" '{"op":"shutdown"}' > /dev/null
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        echo "serve smoke: daemon did not drain within 10s" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$SERVE_PID"   # fails the script if the daemon exited nonzero
grep -q '"serve_cache_hits":[1-9]' "$SERVE_METRICS"

# The metrics artifact is a v2 snapshot whose embedded serve-latency
# histogram must report ordered percentiles.
grep -q '"schema":"datareuse-metrics-v2"' "$SERVE_METRICS"
hist_q() {
    sed -n 's/.*"serve_latency_cold_ns":{[^}]*"'"$1"'":\([0-9]*\).*/\1/p' \
        "$SERVE_METRICS"
}
P50="$(hist_q p50)"; P90="$(hist_q p90)"; P99="$(hist_q p99)"
if [ -z "$P50" ] || [ "$P50" -gt "$P90" ] || [ "$P90" -gt "$P99" ]; then
    echo "serve smoke: cold-latency percentiles missing or unordered" \
        "(p50=$P50 p90=$P90 p99=$P99)" >&2
    exit 1
fi

# The Chrome trace written at drain must hold at least one complete
# request/execute span pair with ids (loadable in Perfetto as-is).
for needle in '"traceEvents":[{' '"ph":"X"' '"name":"request"' \
    '"name":"execute"' '"trace_id":"' '"parent_span":'; do
    if ! grep -qF "$needle" "$SERVE_TRACE"; then
        echo "serve smoke: trace output lacks $needle" >&2
        exit 1
    fi
done

# Exposition drift gate: every counter the registry reported in the
# snapshot must appear in the Prometheus scrape, plus at least one
# histogram bucket series. A Counter variant added without a prom row
# (or renamed in one place only) fails here.
COUNTERS="$(sed -n 's/.*"counters":{\([^}]*\)}.*/\1/p' "$SERVE_METRICS" \
    | tr ',' '\n' | sed -n 's/^"\([a-z0-9_]*\)":.*/\1/p')"
if [ -z "$COUNTERS" ]; then
    echo "serve smoke: no counters found in metrics snapshot" >&2
    exit 1
fi
for name in $COUNTERS; do
    if ! grep -qF "datareuse_$name " "$SERVE_PROM"; then
        echo "serve smoke: prom scrape is missing counter $name" >&2
        exit 1
    fi
done
grep -qF '_bucket{le=' "$SERVE_PROM"

# The series dump written at drain must be parseable NDJSON with at
# least one scraped point carrying counters.
if ! [ -s "$SERVE_SERIES" ]; then
    echo "serve smoke: --series-out wrote no points" >&2
    exit 1
fi
grep -q '"counters"' "$SERVE_SERIES"

rm -f "$SERVE_METRICS" "$SERVE_LOG" "$SERVE_TRACE" "$SERVE_PROM" \
    "$SERVE_SERIES" "$TOP_FRAME" "$TOP_FRAME.norm" "$TOP_FRAME.golden"
echo "serve smoke test passed"

# Explain gate: the audit log must be line-delimited JSON whose
# candidate-summary tallies account for every candidate record — the
# same completeness invariant the property tests pin, checked here on
# the shipped binary.
EXPLAIN_LOG="$(mktemp)"
target/release/datareuse explore fir --explain "$EXPLAIN_LOG" > /dev/null
BAD_LINES="$(grep -cv '^{"record":"[a-z-]*",.*}$' "$EXPLAIN_LOG" || true)"
if [ "$BAD_LINES" -ne 0 ]; then
    echo "explain gate: $BAD_LINES line(s) are not well-formed records" >&2
    exit 1
fi
CANDIDATES="$(grep -c '"record":"candidate",' "$EXPLAIN_LOG")"
SUMMARY="$(grep '"record":"candidate-summary"' "$EXPLAIN_LOG" | head -n 1)"
tally() {
    printf '%s\n' "$SUMMARY" | sed -n 's/.*"'"$1"'":\([0-9]*\).*/\1/p'
}
OFFERED="$(tally offered)"
ACCOUNTED="$(( $(tally kept) + $(tally bypass) + $(tally pruned) + $(tally dominated) ))"
if [ -z "$OFFERED" ] || [ "$ACCOUNTED" -ne "$CANDIDATES" ] \
    || [ "$OFFERED" -ne "$CANDIDATES" ]; then
    echo "explain gate: verdicts do not cover the candidate pool" \
        "(records=$CANDIDATES offered=$OFFERED accounted=$ACCOUNTED)" >&2
    exit 1
fi
rm -f "$EXPLAIN_LOG"
echo "explain gate passed ($CANDIDATES candidates, every verdict accounted)"

# Symbolic cross-validation gate: the analytical (symbolic-first) explore
# path must agree with the Belady trace oracle on the shipped kernels.
# `--cross-validate` replays every exact candidate through the simulator
# and exits nonzero on any disagreement.
for kernel in me-small fir; do
    XVAL_ERR="$(mktemp)"
    target/release/datareuse explore "$kernel" --cross-validate \
        > /dev/null 2> "$XVAL_ERR"
    if ! grep -q 'cross-validation: PASS' "$XVAL_ERR"; then
        echo "cross-validation gate: $kernel did not report PASS" >&2
        cat "$XVAL_ERR" >&2
        exit 1
    fi
    rm -f "$XVAL_ERR"
done
echo "cross-validation gate passed (me-small, fir)"

# Committed bench-baseline gate: every benchmark group must have a
# checked-in BENCH_<group>.json under benchmarks/ that at least looks
# like a harness artifact (the full Json::parse + schema check runs in
# tests/bench_artifacts.rs under `cargo test` above).
for group in analytical_vs_simulation batch_and_hierarchy corpus \
    model_stages pareto_and_codegen policies serve_latency serve_ops \
    serve_scaling serve_throughput stack_distances symbolic_vs_simulation; do
    ARTIFACT="benchmarks/BENCH_$group.json"
    if ! [ -s "$ARTIFACT" ]; then
        echo "bench gate: missing committed baseline $ARTIFACT" >&2
        exit 1
    fi
    if ! grep -q '"group":"'"$group"'"' "$ARTIFACT" \
        || ! grep -q '"median_ns":' "$ARTIFACT"; then
        echo "bench gate: $ARTIFACT does not look like a harness artifact" >&2
        exit 1
    fi
done
echo "bench baseline gate passed (benchmarks/BENCH_*.json present)"

# Scorecard regression gate: fold the committed baselines plus a fresh
# smoke sweep into the roll-up and judge every metric against the
# committed benchmarks/SCORECARD.json. Exit 7 is the sentinel's
# regression verdict; any nonzero exit fails tier-1. The compared
# document is kept for the memory gates below.
SCORECARD_DOC="$(mktemp)"
if target/release/datareuse scorecard --json \
    --baseline benchmarks/SCORECARD.json > "$SCORECARD_DOC"; then
    echo "scorecard gate passed (no metric regressed past its noise band)"
else
    RC=$?
    if [ "$RC" -eq 7 ]; then
        echo "scorecard gate: a metric regressed past its noise band" \
            "(rebaseline deliberately with --update-baseline)" >&2
    else
        echo "scorecard gate: datareuse scorecard failed (exit $RC)" >&2
    fi
    exit 1
fi

# Alloc-budget gate: the memory half of the scorecard must exist in
# both the fresh measurement and the committed baseline — the exit-7
# check above already judged each one against its noise band, so
# presence here means allocation budgets are actively enforced.
for id in smoke_alloc_fir_bytes smoke_alloc_me_small_bytes \
    smoke_alloc_symbolic_ratio smoke_serve_live_bytes; do
    if ! grep -qF "\"id\":\"$id\"" "$SCORECARD_DOC"; then
        echo "alloc-budget gate: fresh scorecard lacks $id" >&2
        exit 1
    fi
    if ! grep -qF "\"id\":\"$id\"" benchmarks/SCORECARD.json; then
        echo "alloc-budget gate: committed baseline lacks $id" \
            "(reseed with --update-baseline)" >&2
        exit 1
    fi
done
echo "alloc-budget gate passed (4 memory metrics measured and baselined)"

# Tracking-overhead gate: the allocator wrapper is always on, so the
# fir explore smoke measured just above already includes its cost. It
# must not have pushed the latency past the committed noise band —
# i.e. the tracking overhead is within measurement noise.
FIR_VERDICT="$(sed -n \
    's/.*"id":"smoke_explore_fir_ns"[^}]*"verdict":"\([a-z-]*\)".*/\1/p' \
    "$SCORECARD_DOC")"
case "$FIR_VERDICT" in
    better|within-noise)
        echo "tracking-overhead gate passed" \
            "(fir explore with allocator tracking: $FIR_VERDICT)"
        ;;
    *)
        echo "tracking-overhead gate: fir explore smoke verdict is" \
            "'$FIR_VERDICT' — allocator tracking cost is visible" >&2
        exit 1
        ;;
esac
rm -f "$SCORECARD_DOC"

# Tamper tripwire: shrinking a committed memory budget must trip the
# sentinel. Drop the smoke_alloc_fir_bytes baseline to one byte
# (lower-is-better, so the unchanged measurement now reads as a
# regression) and require exit code exactly 7.
TAMPERED="$(mktemp)"
sed 's/\("id":"smoke_alloc_fir_bytes","value":\)[0-9.eE+-]*/\11/' \
    benchmarks/SCORECARD.json > "$TAMPERED"
if ! grep -qF '"value":1,' "$TAMPERED"; then
    echo "alloc tamper tripwire: could not tamper the baseline value" >&2
    exit 1
fi
set +e
target/release/datareuse scorecard --baseline "$TAMPERED" \
    > /dev/null 2> /dev/null
TAMPER_RC=$?
set -e
if [ "$TAMPER_RC" -ne 7 ]; then
    echo "alloc tamper tripwire: tampered baseline exited $TAMPER_RC," \
        "expected the regression sentinel's exit 7" >&2
    exit 1
fi
rm -f "$TAMPERED"
echo "alloc tamper tripwire passed (shrunken byte budget exits 7)"

# Profiler smoke: --profile-out must write a non-empty collapsed-stack
# export rooted at the `run` span (the 5% wall-time partition invariant
# is pinned by crates/cli/tests/cli_gates.rs under `cargo test` above).
PROFILE_OUT="$(mktemp)"
target/release/datareuse explore fir --profile-out "$PROFILE_OUT" \
    > /dev/null 2> /dev/null
if ! grep -q '^run.* [0-9][0-9]*$' "$PROFILE_OUT"; then
    echo "profiler smoke: no \`run\`-rooted collapsed stack in --profile-out" >&2
    cat "$PROFILE_OUT" >&2
    exit 1
fi
rm -f "$PROFILE_OUT"
echo "profiler smoke passed (collapsed-stack export is run-rooted)"

# Memory-profiler smoke: --alloc-profile must write a memprofile-v1
# document rooted at the `run` span with a nonzero byte total (the 5%
# self-bytes partition invariant is pinned by
# crates/cli/tests/cli_gates.rs under `cargo test` above).
ALLOC_OUT="$(mktemp)"
ALLOC_ERR="$(mktemp)"
target/release/datareuse explore fir --alloc-profile "$ALLOC_OUT" \
    > /dev/null 2> "$ALLOC_ERR"
for needle in '"schema":"datareuse-memprofile-v1"' '"path":"run"' \
    '"self_bytes":'; do
    if ! grep -qF "$needle" "$ALLOC_OUT"; then
        echo "memory-profiler smoke: --alloc-profile output lacks $needle" >&2
        cat "$ALLOC_OUT" >&2
        exit 1
    fi
done
if ! grep -q '^alloc: total_bytes [1-9]' "$ALLOC_ERR"; then
    echo "memory-profiler smoke: no nonzero \`alloc: total_bytes\` line" >&2
    cat "$ALLOC_ERR" >&2
    exit 1
fi
rm -f "$ALLOC_OUT" "$ALLOC_ERR"
echo "memory-profiler smoke passed (memprofile export is run-rooted)"

# Bench-regression guard: re-measure the symbolic-vs-simulation ratio
# fresh (short budget — this is a regression tripwire, not a baseline)
# and require the closed-form profile to stay >=10x faster than one
# trace-simulation point on the depth-3 nest.
DATAREUSE_BENCH_BUDGET_MS=20 DATAREUSE_BENCH_SAMPLES=5 \
    cargo bench -p datareuse-bench --bench symbolic > /dev/null
FRESH="crates/bench/target/figures/BENCH_symbolic_vs_simulation.json"
bench_median() {
    sed -n 's/.*"id":"'"$1"'"[^}]*"median_ns":\([0-9.eE+-]*\).*/\1/p' "$FRESH"
}
SYM_NS="$(bench_median symbolic_profile_depth3)"
SIM_NS="$(bench_median simulate_one_point_depth3)"
if [ -z "$SYM_NS" ] || [ -z "$SIM_NS" ]; then
    echo "bench gate: could not read medians from $FRESH" >&2
    exit 1
fi
if ! awk -v sim="$SIM_NS" -v sym="$SYM_NS" 'BEGIN { exit !(sim >= 10 * sym) }'; then
    echo "bench gate: symbolic profile is not >=10x faster than" \
        "simulation (symbolic=$SYM_NS ns, simulate=$SIM_NS ns)" >&2
    exit 1
fi
echo "bench regression guard passed (symbolic $SYM_NS ns vs simulate $SIM_NS ns)"

# Serve-scaling guard: re-run a reduced connection ramp fresh (the
# committed benchmarks/BENCH_serve_scaling.json comes from a full
# 10k-connection run; this tripwire holds 200 and proves the event loop
# still ramps, saturates, and reports the schema bench_artifacts.rs
# pins on the big artifact).
SCALING_FRESH="$(mktemp)"
target/release/datareuse bench-serve --connections 200 \
    --out "$SCALING_FRESH" 2> /dev/null
for needle in '"group":"serve_scaling"' '"id":"conns_00200"' \
    '"saturation":' '"rps":' '"open_connections":'; do
    if ! grep -qF "$needle" "$SCALING_FRESH"; then
        echo "serve-scaling guard: fresh ramp output lacks $needle" >&2
        cat "$SCALING_FRESH" >&2
        exit 1
    fi
done
rm -f "$SCALING_FRESH"
echo "serve-scaling guard passed (fresh 200-connection ramp)"

# Rust-selfcheck gate: the Rust emitter's output must actually compile
# and run. For three corpus kernels, emit the self-checking band-copy
# program (original nest vs transformed access stream, checksummed),
# build it with bare rustc, and require the OK verdict. The same check
# runs wider in tests/rust_selfcheck.rs; this proves it on the shipped
# binary's `codegen --rust` path.
RUSTGEN_DIR="$(mktemp -d)"
for spec in "gen-matmul-32x32x32 A" "gen-conv2d-32x32x3 image" \
    "gen-stencil2d-32x32 img"; do
    kernel="${spec% *}"
    array="${spec#* }"
    RS="$RUSTGEN_DIR/check.rs"
    BIN="$RUSTGEN_DIR/check"
    target/release/datareuse codegen "$kernel" --array "$array" \
        --band 1 --rust > "$RS"
    rustc -O --edition 2021 -o "$BIN" "$RS"
    VERDICT="$("$BIN")"
    case "$VERDICT" in
        OK\ *) ;;
        *)
            echo "rust-selfcheck gate: $kernel band copy failed: $VERDICT" >&2
            exit 1
            ;;
    esac
done
rm -rf "$RUSTGEN_DIR"
echo "rust-selfcheck gate passed (3 corpus kernels compiled and verified)"

echo "tier-1 verification passed"
