#!/bin/sh
# Tier-1 verification, run exactly as CI does.
#
# CARGO_NET_OFFLINE=1 makes any accidental reintroduction of a crates.io
# dependency fail immediately: this workspace builds from the standard
# library alone (see README "Zero dependencies").
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

cargo build --release --workspace
cargo test -q

# Docs must stay warning-free (missing_docs is denied in core and obs) and
# the doctests across every crate must run — the workspace flag includes
# each member's unit, integration, and documentation tests.
cargo test -q --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "tier-1 verification passed"
