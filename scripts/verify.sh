#!/bin/sh
# Tier-1 verification, run exactly as CI does.
#
# CARGO_NET_OFFLINE=1 makes any accidental reintroduction of a crates.io
# dependency fail immediately: this workspace builds from the standard
# library alone (see README "Zero dependencies").
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

cargo build --release --workspace
cargo test -q

# Docs must stay warning-free (missing_docs is denied in core and obs) and
# the doctests across every crate must run — the workspace flag includes
# each member's unit, integration, and documentation tests.
cargo test -q --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Serving smoke test: start the daemon on an ephemeral port, prove the
# second identical query is a cache hit, and check it drains and exits 0
# on `shutdown` within a timeout.
SERVE_METRICS="$(mktemp)"
SERVE_LOG="$(mktemp)"
target/release/datareuse serve --addr 127.0.0.1:0 --metrics "$SERVE_METRICS" \
    > "$SERVE_LOG" &
SERVE_PID=$!
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR="$(sed -n 's/^datareuse-serve: listening on //p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "serve smoke: daemon never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
SMOKE_REQ='{"op":"explore","kernel":"me-small","array":"Old"}'
target/release/datareuse query --addr "$ADDR" "$SMOKE_REQ" \
    | grep -q '"cached":false'
target/release/datareuse query --addr "$ADDR" "$SMOKE_REQ" \
    | grep -q '"cached":true'
target/release/datareuse query --addr "$ADDR" '{"op":"shutdown"}' > /dev/null
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        echo "serve smoke: daemon did not drain within 10s" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$SERVE_PID"   # fails the script if the daemon exited nonzero
grep -q '"serve_cache_hits":[1-9]' "$SERVE_METRICS"
rm -f "$SERVE_METRICS" "$SERVE_LOG"
echo "serve smoke test passed"

echo "tier-1 verification passed"
