//! # datareuse
//!
//! A production-quality Rust implementation of *"Data Reuse Exploration
//! Techniques for Loop-dominated Applications"* (Tanja Van Achteren, Geert
//! Deconinck, Francky Catthoor, Rudy Lauwereins — DATE 2002): analytical
//! exploration of power-efficient custom memory hierarchies for array
//! signals in nested loops, with simulation-based validation and
//! copy-candidate code generation.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`loopir`] | `datareuse-loopir` | loop-nest IR, affine expressions, DSL parser, traces |
//! | [`exprlang`] | `datareuse-exprlang` | einsum-style expression front end: parse, infer domains, lower |
//! | [`trace`] | `datareuse-trace` | Belady OPT / LRU / FIFO simulators, reuse curves |
//! | [`memmodel`] | `datareuse-memmodel` | SRAM power/area models, chain costs (eq. 1–3), Pareto |
//! | [`model`] | `datareuse-core` | the paper's analytical model (eq. 4–22) and exploration |
//! | [`codegen`] | `datareuse-codegen` | Fig. 8 templates, verifying schedule interpreter, gnuplot |
//! | [`kernels`] | `datareuse-kernels` | motion estimation, SUSAN, conv2d, matmul, … |
//! | [`steps`] | `datareuse-steps` | downstream DTSE steps: SCBD and in-place mapping |
//! | [`obs`] | `datareuse-obs` | counters, timed spans, JSON metrics snapshots, progress |
//! | [`server`] | `datareuse-server` | NDJSON-over-TCP serving daemon: worker pool, result cache, deadlines |
//!
//! # Quickstart
//!
//! ```
//! use datareuse::prelude::*;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe a kernel (or use datareuse::kernels):
//! let program = parse_program(
//!     "array A[23];
//!      for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
//! )?;
//!
//! // Analytical exploration of copy-candidate hierarchies:
//! let exploration = explore_signal(&program, "A", &ExploreOptions::default())?;
//!
//! // Power–memory-size Pareto curve under the default memory technology:
//! let tech = MemoryTechnology::new();
//! let front = exploration.pareto(&ExploreOptions::default(), &tech, &BitCount);
//! assert!(front.last().expect("non-empty front").power < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use datareuse_codegen as codegen;
pub use datareuse_core as model;
pub use datareuse_exprlang as exprlang;
pub use datareuse_obs as obs;
pub use datareuse_kernels as kernels;
pub use datareuse_loopir as loopir;
pub use datareuse_memmodel as memmodel;
pub use datareuse_server as server;
pub use datareuse_steps as steps;
pub use datareuse_trace as trace;

/// One-stop imports for the common exploration workflow.
pub mod prelude {
    pub use datareuse_codegen::{
        emit_program, emit_selfcheck, emit_transformed, gnuplot_script, run_schedule, Series,
        Strategy, TemplateOptions,
    };
    pub use datareuse_core::{
        assign_layers, explore_orders, explore_signal, footprint_levels,
        footprint_levels_merged, max_reuse, partial_reuse, partial_sweep, CandidatePoint,
        ExplorationReport, ExploreOptions, OrderChoice, PairGeometry, ReuseClass,
        SignalExploration, SignalOptions,
    };
    pub use datareuse_kernels::{
        Conv2d, Downsample, Fir, MatMul, MotionCompensation, MotionEstimation, Sobel, Susan,
    };
    pub use datareuse_loopir::{
        parse_program, read_addresses, trace_array, AffineExpr, ArrayDecl, Loop, LoopNest,
        Program, TraceFilter,
    };
    pub use datareuse_steps::{distribute_cycles, map_inplace, PortBudget};
    pub use datareuse_memmodel::{
        chain_breakdown, evaluate_chain, pareto_front, BitCount, CellPeriphery, ChainLevel,
        CopyChain, MemoryLibrary, MemoryTechnology, ParetoPoint,
    };
    pub use datareuse_trace::{
        distinct_count, fifo_simulate, lru_simulate, opt_simulate, opt_simulate_bypass,
        opt_simulate_bypass_many, opt_simulate_many, working_set_profile, CurvePolicy,
        ReuseCurve, StackDistances, TraceStats, WorkingSetProfile,
    };
}
