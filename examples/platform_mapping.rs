//! Mapping onto a predefined memory platform, and the global hierarchy
//! layer assignment across several signals.
//!
//! The paper's methodology serves two targets: a custom hierarchy, and
//! "efficiently using a predefined memory hierarchy with software cache
//! control", where the virtual copy-candidate chain is collapsed onto the
//! available physical layers. This example explores two signals of the
//! motion-estimation kernel plus the SUSAN image, collapses their chains
//! onto a power-of-two scratch-pad library, and lets the global
//! assignment divide a fixed on-chip budget between them.
//!
//! Run with `cargo run --release --example platform_mapping`.

use datareuse::prelude::*;

fn explore_menu(
    program: &Program,
    array: &str,
    tech: &MemoryTechnology,
) -> Result<SignalOptions, Box<dyn std::error::Error>> {
    let opts = ExploreOptions::default();
    let ex = explore_signal(program, array, &opts)?;
    let options = ex
        .pareto(&opts, tech, &BitCount)
        .into_iter()
        .map(|p| (p.payload.0, p.payload.1))
        .collect();
    Ok(SignalOptions {
        array: array.to_string(),
        options,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = MemoryTechnology::new();
    let me = MotionEstimation::SMALL.program();
    let susan = Susan::SMALL.program();

    // Per-signal Pareto menus (DTSE step 3), including the baseline.
    let signals = vec![
        explore_menu(&me, MotionEstimation::OLD, &tech)?,
        explore_menu(&me, MotionEstimation::NEW, &tech)?,
        explore_menu(&susan, Susan::IMAGE, &tech)?,
    ];
    for s in &signals {
        println!("signal `{}`: {} Pareto options", s.array, s.options.len());
    }

    // Global hierarchy layer assignment under a shared on-chip budget.
    println!("\nglobal assignment under decreasing on-chip budgets:");
    for budget in [4096u64, 1024, 256, 64, 0] {
        let assignment =
            assign_layers(&signals, 1.0, 0.0, Some(budget)).expect("baselines keep it feasible");
        print!("  budget {budget:>5}: total words {:>5}, cost {:>10.1} | ",
            assignment.total_words, assignment.total_cost);
        for (s, &choice) in signals.iter().zip(&assignment.choice) {
            let words = s.options[choice].1.onchip_words;
            print!("{}={words} ", s.array);
        }
        println!();
    }

    // Collapse a virtual chain onto a fixed scratch-pad library.
    let library = MemoryLibrary::powers_of_two(16, 4096);
    println!("\nscratch-pad library: {:?}", library.sizes());
    let chosen = &signals[0].options.last().expect("non-empty menu").0;
    let virtual_sizes: Vec<u64> = chosen.levels.iter().map(|l| l.words).collect();
    let physical = library.collapse(&virtual_sizes);
    println!(
        "virtual chain for `{}`: {:?} -> physical layers {:?}",
        signals[0].array,
        virtual_sizes,
        physical.iter().map(|(w, _)| *w).collect::<Vec<_>>()
    );
    Ok(())
}
