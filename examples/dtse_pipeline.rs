//! The full DTSE slice this project implements, end to end on one signal:
//!
//! 1. data reuse exploration (step 3) → pick a hierarchy off the Pareto
//!    front;
//! 2. storage cycle budget distribution (step 4) → check the copy traffic
//!    fits the memory ports, with single-assignment spreading;
//! 3. code generation (Fig. 8) → transformed C, executed and verified;
//! 4. in-place mapping (step 6) → fold the buffer to its exact liveness.
//!
//! Run with `cargo run --release --example dtse_pipeline`.

use datareuse::codegen::{emit_transformed, run_schedule, Strategy, TemplateOptions};
use datareuse::model::{max_reuse, PairGeometry};
use datareuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let me = MotionEstimation::SMALL;
    let program = me.program();
    let (nest, access, outer, inner) = (0, 1, 3, 5); // Old over (i4, i6)

    // -- Step 3: data reuse decision ------------------------------------
    let opts = ExploreOptions::default();
    let exploration = explore_signal(&program, MotionEstimation::OLD, &opts)?;
    let tech = MemoryTechnology::new();
    let front = exploration.pareto(&opts, &tech, &BitCount);
    println!("step 3 (data reuse): {} Pareto hierarchies for `Old`", front.len());
    let geom = PairGeometry::from_access(&program.nests()[nest], access, outer, inner)?;
    let point = max_reuse(&geom).expect("the §6.3 pair carries reuse");
    println!(
        "  chosen copy-candidate: A = {} elements, F_R = {:.2}",
        point.size,
        point.reuse_factor()
    );

    // -- Step 4: storage cycle budget distribution ----------------------
    let ports = PortBudget::default();
    let scbd = distribute_cycles(&program, nest, access, outer, inner, Strategy::MaxReuse, ports)?;
    println!(
        "step 4 (SCBD): {} buffer ops peak/iter, {} after spreading over {} iterations \
         -> {} cycle(s) per iteration{}",
        scbd.peak_buffer_ops_per_iteration,
        1 + scbd.spread_fills_per_iteration,
        scbd.spread_window,
        scbd.cycles_required_spread,
        if scbd.feasible_spread { "" } else { " (needs a second port)" }
    );

    // -- Code generation + verification ---------------------------------
    let code = emit_transformed(&program, nest, access, outer, inner, TemplateOptions::default())?;
    let verified = run_schedule(&program, nest, access, outer, inner, Strategy::MaxReuse)?;
    println!(
        "codegen: template verified — {} fills (closed form {}), {} wrong reads",
        verified.fills, point.fills, verified.value_errors
    );
    println!("\n{code}");

    // -- Step 6: in-place mapping ----------------------------------------
    let inplace = map_inplace(&program, nest, access, outer, inner, Strategy::MaxReuse)?;
    println!(
        "step 6 (in-place): single-assignment {} -> in-place {} elements \
         ({:.0}% reclaimed, fold modulo {})",
        inplace.single_assignment_words,
        inplace.inplace_words,
        100.0 * inplace.savings_ratio(),
        inplace.fold_modulo
    );
    assert_eq!(inplace.inplace_words, point.size);
    Ok(())
}
