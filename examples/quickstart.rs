//! Quickstart: describe a kernel, explore its memory hierarchy, and
//! generate the transformed code.
//!
//! Run with `cargo run --example quickstart`.

use datareuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a loop-dominated kernel in the DSL (or build one with
    //    the `datareuse::loopir` API, or take one from `datareuse::kernels`).
    let program = parse_program(
        "array A[23] bits 8;
         for j in 0..16 {
           for k in 0..8 {
             read A[j + k];
           }
         }",
    )?;
    println!("kernel:\n{program}");

    // 2. Analytical exploration (the paper's data reuse step): every
    //    copy-candidate the model can derive, with exact traffic counts.
    let opts = ExploreOptions::default();
    let exploration = explore_signal(&program, "A", &opts)?;
    println!(
        "C_tot = {}, background = {} elements",
        exploration.c_tot, exploration.background_words
    );
    println!("\ncopy-candidates (size, reuse factor):");
    for candidate in &exploration.candidates {
        println!(
            "  A = {:>3} elements -> F_R = {:.2}",
            candidate.size,
            candidate.reuse_factor()
        );
    }

    // 3. The power / memory-size Pareto curve (paper Fig. 4b) under the
    //    default memory technology, normalized to "all accesses from the
    //    background memory".
    let tech = MemoryTechnology::new();
    let front = exploration.pareto(&opts, &tech, &BitCount);
    println!("\nPareto front:");
    for point in &front {
        println!(
            "  {:>3} on-chip elements -> {:.3} of baseline power",
            point.size as u64, point.power
        );
    }

    // 4. Cross-check the best single level against Belady-optimal
    //    simulation — the analytical model is exact here.
    let trace = read_addresses(&program, "A");
    let best = exploration
        .candidates
        .iter()
        .max_by(|a, b| a.reuse_factor().total_cmp(&b.reuse_factor()))
        .expect("candidates exist");
    let sim = opt_simulate(&trace, best.size);
    println!(
        "\nbest candidate: A = {} -> analytic fills {}, Belady fills {}",
        best.size, best.fills, sim.fills
    );

    // 5. Generate the transformed code (paper Fig. 8 template).
    let code = emit_transformed(&program, 0, 0, 0, 1, TemplateOptions::default())?;
    println!("\ntransformed code:\n{code}");
    Ok(())
}
