//! Loop-order tuning — the "each loop nest ordering separately" half of
//! DTSE step 3.
//!
//! The loop-transformation step before the data reuse step deliberately
//! leaves ordering freedom; this example sweeps every permutation of a
//! matrix-multiply nest, explores the reuse hierarchy of `B` under each,
//! and shows how much the ordering alone changes the reachable power.
//!
//! Run with `cargo run --release --example loop_order_tuning`.

use datareuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mm = MatMul::square(16);
    let program = mm.program();
    println!(
        "matmul {0}x{0}x{0}, exploring signal `{1}` under all 6 loop orders\n",
        mm.n,
        MatMul::B
    );

    let tech = MemoryTechnology::new();
    let orders = explore_orders(
        &program,
        MatMul::B,
        &ExploreOptions::default(),
        &tech,
        &BitCount,
        6,
    )?;

    println!("{:<12} {:>12} {:>14} {:>10}", "order", "best power", "on-chip words", "candidates");
    for o in &orders {
        println!(
            "{:<12} {:>12.4} {:>14} {:>10}",
            o.loop_names.join(","),
            o.best_power,
            o.best_words,
            o.exploration.candidates.len()
        );
    }

    let best = &orders[0];
    let worst = orders.last().expect("non-empty");
    println!(
        "\nordering alone changes the best reachable power by {:.1}x \
         ({} vs {})",
        worst.best_power / best.best_power,
        best.loop_names.join(","),
        worst.loop_names.join(","),
    );

    // Cross-check the winner against Belady simulation under that order.
    let reordered = program.nests()[0].with_loop_order(&best.permutation);
    let mut variant = Program::new();
    for d in program.arrays() {
        variant.declare(d.clone())?;
    }
    variant.push_nest(reordered)?;
    let trace = read_addresses(&variant, MatMul::B);
    for c in best.exploration.candidates.iter().take(3) {
        let sim = opt_simulate(&trace, c.size);
        println!(
            "  candidate {:>5} elements: analytic F_R {:.2}, Belady {:.2}",
            c.size,
            c.reuse_factor(),
            sim.reuse_factor()
        );
    }
    Ok(())
}
