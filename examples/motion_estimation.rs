//! The paper's primary test-vehicle: full-search motion estimation.
//!
//! Reproduces the Section 6.3 analysis of the inner (i4-i5-i6) nest —
//! `b' = c' = 1`, `A_Max = n(n−1)`, the partial-reuse family and the
//! bypass improvement — then verifies the generated copy schedule returns
//! byte-exact data with exactly the predicted traffic.
//!
//! Run with `cargo run --release --example motion_estimation`.

use datareuse::codegen::{run_schedule, Strategy};
use datareuse::model::{max_reuse, partial_sweep, PairGeometry, ReuseClass};
use datareuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let me = MotionEstimation::QCIF;
    let program = me.program();
    println!(
        "motion estimation: H={}, W={}, n={}, m={} ({} reads of Old per frame)",
        me.height,
        me.width,
        me.block,
        me.search,
        me.old_reads()
    );

    // The Old access sits at index 1 of the single nest; the §6.3 pair is
    // (i4, i6) = loop depths (3, 5), with i5 in between.
    let nest = &program.nests()[0];
    let geom = PairGeometry::from_access(nest, 1, 3, 5)?;
    println!("\npair (i4, i6): {}", geom.class);
    assert_eq!(
        geom.class,
        ReuseClass::Vector {
            bp: 1,
            cp: 1,
            anti: false
        }
    );
    println!(
        "repeat factor from loop i5 (the paper's extra factor n): {}",
        geom.repeat_distinct
    );

    let max = max_reuse(&geom).expect("the pair carries reuse");
    println!(
        "max reuse: A_Max = {} elements, F_RMax = {:.3}",
        max.size,
        max.reuse_factor()
    );
    println!("\npartial reuse trade-offs (γ, size, F_R, F'_R with bypass):");
    let bypassed = partial_sweep(&geom, true);
    for (plain, bypass) in partial_sweep(&geom, false).iter().zip(&bypassed) {
        println!(
            "  γ = {:?}: A = {:>3} -> F_R = {:.3}   |   A' = {:>3} -> F'_R = {:.3}",
            plain.kind,
            plain.size,
            plain.reuse_factor(),
            bypass.size,
            bypass.reuse_factor()
        );
    }

    // Execute the copy schedule on a small instance and verify it: every
    // buffered read must return the right element, the buffer must never
    // exceed A_Max, and the fill count must equal the closed form.
    let small = MotionEstimation::SMALL.program();
    let small_geom = PairGeometry::from_access(&small.nests()[0], 1, 3, 5)?;
    let small_max = max_reuse(&small_geom).expect("reuse");
    let report = run_schedule(&small, 0, 1, 3, 5, Strategy::MaxReuse)?;
    println!(
        "\nverified schedule (small instance): {} accesses, {} fills (closed form {}), \
         peak occupancy {} <= A_Max {}, {} value errors",
        report.accesses,
        report.fills,
        small_max.fills,
        report.max_occupancy,
        small_max.size,
        report.value_errors
    );
    assert_eq!(report.value_errors, 0);
    assert_eq!(report.fills, small_max.fills);
    assert!(report.max_occupancy <= small_max.size);

    // Whole-signal exploration with the chain cost model.
    let opts = ExploreOptions::default();
    let exploration = explore_signal(&program, MotionEstimation::OLD, &opts)?;
    let tech = MemoryTechnology::new();
    let front = exploration.pareto(&opts, &tech, &BitCount);
    let best = front.last().expect("non-empty front");
    println!(
        "\nbest hierarchy: {:.1}x power reduction using {} on-chip elements",
        1.0 / best.power,
        best.size as u64
    );
    Ok(())
}
