//! The paper's complex test-vehicle: the SUSAN principle (Section 6.4).
//!
//! Shows the merged copy-candidates at work: seven mask-row accesses to
//! the image share one rolling row-band buffer whose analytical reuse
//! factor matches Belady simulation to within a fraction of a percent.
//!
//! Run with `cargo run --release --example susan_exploration`.

use datareuse::model::CandidateSource;
use datareuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let susan = Susan::SMALL; // use Susan::QCIF for the paper-sized run
    let program = susan.program();
    println!(
        "SUSAN: {}x{} image, 37-pixel circular mask, {} image reads",
        susan.height,
        susan.width,
        susan.image_reads()
    );
    println!("\nkernel (interleaved form):\n{program}");

    let opts = ExploreOptions::default();
    let exploration = explore_signal(&program, Susan::IMAGE, &opts)?;
    println!(
        "{} access groups merged into {} signal candidates",
        exploration.groups.len(),
        exploration.candidates.len()
    );

    // Cross-validate every candidate against optimal-replacement
    // simulation on the real interleaved trace.
    let trace = read_addresses(&program, Susan::IMAGE);
    println!("\ncandidate | size | analytic F_R | Belady F_R");
    for c in &exploration.candidates {
        let sim = opt_simulate(&trace, c.size);
        let label = match c.source {
            CandidateSource::MergedFootprint { .. } => "merged rows",
            CandidateSource::Footprint { .. } => "footprint",
            CandidateSource::PairMax => "pair max",
            CandidateSource::PairPartial { bypass: true, .. } => "partial+bypass",
            CandidateSource::PairPartial { .. } => "partial",
            CandidateSource::Simulated => "simulated",
        };
        println!(
            "{label:>15} | {:>5} | {:>8.2} | {:>8.2}",
            c.size,
            c.reuse_factor(),
            sim.reuse_factor()
        );
    }

    // The headline: the merged row-band buffer.
    let merged = exploration
        .candidates
        .iter()
        .find(|c| matches!(c.source, CandidateSource::MergedFootprint { .. }))
        .expect("merged candidate exists");
    let sim = opt_simulate(&trace, merged.size);
    let err = (merged.reuse_factor() - sim.reuse_factor()).abs() / sim.reuse_factor();
    println!(
        "\nmerged row buffer: {} elements, analytic F_R {:.2} vs Belady {:.2} ({:.2}% apart)",
        merged.size,
        merged.reuse_factor(),
        sim.reuse_factor(),
        100.0 * err
    );

    // Power trade-off with and without the bypass option.
    let tech = MemoryTechnology::new();
    for bypass in [false, true] {
        let o = ExploreOptions {
            include_bypass: bypass,
            ..opts
        };
        let ex = explore_signal(&program, Susan::IMAGE, &o)?;
        let front = ex.pareto(&o, &tech, &BitCount);
        let best = front.last().expect("front");
        println!(
            "bypass = {bypass:>5}: {} Pareto points, best power {:.3} of baseline",
            front.len(),
            best.power
        );
    }
    Ok(())
}
