//! Half-pel motion compensation — the data-transfer core of the H.263
//! video decoder the paper's methodology was demonstrated on ([21]).
//!
//! For every block, a candidate motion vector selects a window of the
//! reference frame; half-pel interpolation reads the 2×2 pixel
//! neighbourhood of each position. In the decoder the vector is
//! data-dependent; for compile-time analysis the standard practice (and
//! our substitution, recorded in DESIGN.md) is to analyze the worst-case
//! sweep over the vector range, which is exactly the Fig. 3 search
//! structure with interpolation accesses added.

use datareuse_loopir::{Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program};

/// Parameters of the motion-compensation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionCompensation {
    /// Frame height (multiple of `block`).
    pub height: i64,
    /// Frame width (multiple of `block`).
    pub width: i64,
    /// Block size.
    pub block: i64,
    /// Motion-vector range per axis (full-pel positions).
    pub range: i64,
}

impl MotionCompensation {
    /// Name of the reference-frame array.
    pub const REF: &'static str = "Ref";

    /// A small decoder-like instance.
    pub const SMALL: Self = Self {
        height: 32,
        width: 32,
        block: 8,
        range: 4,
    };

    /// Extents of the padded reference frame (one extra row/column for the
    /// half-pel neighbourhood).
    pub fn ref_extents(&self) -> (i64, i64) {
        (
            self.height + 2 * self.range,
            self.width + 2 * self.range,
        )
    }

    /// Builds the nest: block row/col, vector y/x, pixel y/x, with four
    /// interpolation reads per pixel.
    ///
    /// # Panics
    ///
    /// Panics when the frame is not block-aligned or a parameter is
    /// non-positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_kernels::MotionCompensation;
    ///
    /// let p = MotionCompensation::SMALL.program();
    /// assert_eq!(p.nests()[0].accesses().len(), 4);
    /// ```
    pub fn program(&self) -> Program {
        assert!(
            self.block > 0 && self.range > 0 && self.height > 0 && self.width > 0,
            "parameters must be positive"
        );
        assert!(
            self.height % self.block == 0 && self.width % self.block == 0,
            "frame must be block-aligned"
        );
        let n = self.block;
        let (rh, rw) = self.ref_extents();
        let mut p = Program::new();
        p.declare(ArrayDecl::new(Self::REF, [rh, rw], 8).expect("extents"))
            .expect("fresh program");
        let var = AffineExpr::var;
        let row = AffineExpr::term("by", n) + var("vy") + var("py");
        let col = AffineExpr::term("bx", n) + var("vx") + var("px");
        let accesses: Vec<Access> = [(0i64, 0i64), (0, 1), (1, 0), (1, 1)]
            .into_iter()
            .map(|(dy, dx)| {
                Access::read(Self::REF, [row.clone() + dy, col.clone() + dx])
            })
            .collect();
        let nest = LoopNest::new(
            [
                Loop::new("by", 0, self.height / n - 1),
                Loop::new("bx", 0, self.width / n - 1),
                Loop::new("vy", 0, 2 * self.range - 1),
                Loop::new("vx", 0, 2 * self.range - 1),
                Loop::new("py", 0, n - 1),
                Loop::new("px", 0, n - 1),
            ],
            accesses,
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }

    /// Total reference-frame reads (4 interpolation taps per position).
    pub fn ref_reads(&self) -> u64 {
        (4 * (self.height / self.block)
            * (self.width / self.block)
            * 4
            * self.range
            * self.range
            * self.block
            * self.block) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{trace_len, TraceFilter};

    #[test]
    fn counts_match() {
        let mc = MotionCompensation::SMALL;
        let p = mc.program();
        assert_eq!(
            trace_len(&p, MotionCompensation::REF, TraceFilter::READS),
            mc.ref_reads()
        );
    }

    #[test]
    fn interpolation_taps_are_translations() {
        let p = MotionCompensation::SMALL.program();
        let accesses = p.nests()[0].accesses();
        let base = &accesses[0];
        for a in accesses {
            for (dim, (ea, eb)) in a.indices().iter().zip(base.indices()).enumerate() {
                for it in ["by", "bx", "vy", "vx", "py", "px"] {
                    assert_eq!(ea.coeff(it), eb.coeff(it), "dim {dim}, iter {it}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_frame_panics() {
        MotionCompensation {
            height: 30,
            width: 32,
            block: 8,
            range: 2,
        }
        .program();
    }
}
