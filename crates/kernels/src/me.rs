//! Full-search full-pixel motion estimation (paper Fig. 3).
//!
//! The kernel estimates, for every `n × n` block of the new frame, the
//! motion vector within a `±m` search window in the old frame, by
//! exhaustive sum-of-absolute-differences matching. The paper's
//! simulations use H=144, W=176 (QCIF), n=m=8.
//!
//! **Substitution note** (recorded in `DESIGN.md`): the paper indexes
//! `Old` inside the original `H × W` frame, implying border clamping of
//! the search window, which is not affine. We use the standard padded
//! reference frame of `(H + 2m − 1) × (W + 2m − 1)` elements instead, so
//! every access stays affine. The footprint grows by the apron
//! (25 344 → 30 369 elements for QCIF), which shifts the saturation
//! reuse factor from 256 to ≈ 213.6; all reuse structure is unchanged.

use datareuse_loopir::{Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program};

/// Parameters of the motion-estimation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionEstimation {
    /// Frame height `H` (must be a multiple of `block`).
    pub height: i64,
    /// Frame width `W` (must be a multiple of `block`).
    pub width: i64,
    /// Block size `n`.
    pub block: i64,
    /// Search range `m` (window spans `2m` positions per axis).
    pub search: i64,
}

impl MotionEstimation {
    /// The paper's simulation parameters: QCIF frame, `n = m = 8`.
    pub const QCIF: Self = Self {
        height: 144,
        width: 176,
        block: 8,
        search: 8,
    };

    /// A scaled-down instance for fast tests and examples.
    pub const SMALL: Self = Self {
        height: 32,
        width: 32,
        block: 4,
        search: 4,
    };

    /// Name of the reference-frame array the paper explores.
    pub const OLD: &'static str = "Old";

    /// Name of the current-frame array.
    pub const NEW: &'static str = "New";

    /// Extents of the padded `Old` frame.
    pub fn old_extents(&self) -> (i64, i64) {
        (
            self.height + 2 * self.search - 1,
            self.width + 2 * self.search - 1,
        )
    }

    /// Builds the six-deep loop nest of Fig. 3.
    ///
    /// Loop order (outermost first): block row `i1`, block column `i2`,
    /// vertical search `i3`, horizontal search `i4`, pixel row `i5`,
    /// pixel column `i6`.
    ///
    /// # Panics
    ///
    /// Panics when the frame is not block-aligned or a parameter is
    /// non-positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_kernels::MotionEstimation;
    ///
    /// let p = MotionEstimation::QCIF.program();
    /// assert_eq!(p.nests()[0].depth(), 6);
    /// assert_eq!(p.nests()[0].iteration_count(), 18 * 22 * 16 * 16 * 8 * 8);
    /// ```
    pub fn program(&self) -> Program {
        assert!(
            self.block > 0 && self.search > 0 && self.height > 0 && self.width > 0,
            "parameters must be positive"
        );
        assert!(
            self.height % self.block == 0 && self.width % self.block == 0,
            "frame must be block-aligned"
        );
        let (n, m) = (self.block, self.search);
        let (oh, ow) = self.old_extents();
        let mut p = Program::new();
        p.declare(ArrayDecl::new(Self::NEW, [self.height, self.width], 8).expect("extents"))
            .expect("fresh program");
        p.declare(ArrayDecl::new(Self::OLD, [oh, ow], 8).expect("extents"))
            .expect("fresh program");
        let var = AffineExpr::var;
        let new_row = AffineExpr::term("i1", n) + var("i5");
        let new_col = AffineExpr::term("i2", n) + var("i6");
        let old_row = AffineExpr::term("i1", n) + var("i3") + var("i5");
        let old_col = AffineExpr::term("i2", n) + var("i4") + var("i6");
        let nest = LoopNest::new(
            [
                Loop::new("i1", 0, self.height / n - 1),
                Loop::new("i2", 0, self.width / n - 1),
                Loop::new("i3", 0, 2 * m - 1),
                Loop::new("i4", 0, 2 * m - 1),
                Loop::new("i5", 0, n - 1),
                Loop::new("i6", 0, n - 1),
            ],
            [
                Access::read(Self::NEW, [new_row, new_col]),
                Access::read(Self::OLD, [old_row, old_col]),
            ],
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }

    /// Total reads of the `Old` array per frame.
    pub fn old_reads(&self) -> u64 {
        ((self.height / self.block)
            * (self.width / self.block)
            * 4
            * self.search
            * self.search
            * self.block
            * self.block) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{read_addresses, TraceFilter};

    #[test]
    fn qcif_matches_paper_counts() {
        let me = MotionEstimation::QCIF;
        let p = me.program();
        assert_eq!(me.old_reads(), 6_488_064);
        assert_eq!(
            datareuse_loopir::trace_len(&p, MotionEstimation::OLD, TraceFilter::READS),
            me.old_reads()
        );
        assert_eq!(me.old_extents(), (159, 191));
    }

    #[test]
    fn small_instance_traces() {
        let me = MotionEstimation::SMALL;
        let p = me.program();
        let trace = read_addresses(&p, MotionEstimation::OLD);
        assert_eq!(trace.len() as u64, me.old_reads());
        let max = trace.iter().max().copied().unwrap();
        let (oh, ow) = me.old_extents();
        assert!(max < (oh * ow) as u64);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_frame_panics() {
        MotionEstimation {
            height: 30,
            width: 32,
            block: 4,
            search: 4,
        }
        .program();
    }
}
