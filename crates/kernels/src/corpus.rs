//! The generated workload corpus: dozens of named expression-derived
//! kernels covering the matmul / conv1d / conv2d / attention-score /
//! LU-update / stencil families at several sizes.
//!
//! Every entry is an einsum-style source string lowered through
//! `datareuse-exprlang`, which is the point: the corpus exercises the
//! expression front end on realistic shapes, and anything that explores
//! a builtin kernel can sweep the corpus unchanged (ROADMAP item 5).
//!
//! Generation is *seeded and deterministic*: the same seed always
//! produces the same names, sizes, and expressions (pinned by the
//! property tests), so corpus names are stable registry keys. Each
//! family leads with one fixed flagship instance — `gen-matmul-32x32x32`,
//! `gen-conv2d-32x32x3`, `gen-stencil2d-32x32`, … — that tests and
//! `scripts/verify.sh` can reference by name, followed by seed-drawn
//! size variants.

use std::sync::OnceLock;

use datareuse_exprlang::parse_expression;
use datareuse_loopir::Program;

/// The seed behind the registered corpus (any other seed is available
/// through [`generate_corpus`] for ablations).
pub const DEFAULT_CORPUS_SEED: u64 = 0x2002_DA7A;

/// One generated workload: a registry name, the einsum source it lowers
/// from, and a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Registry name (`gen-<family>-<sizes>`).
    pub name: String,
    /// The einsum source string (valid `datareuse-exprlang` input).
    pub expr: String,
    /// One-line description for listings.
    pub description: String,
}

/// SplitMix64 — the same tiny deterministic generator the in-repo
/// proptest harness uses, inlined so the corpus depends only on the
/// seed, not on harness internals.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A deterministic shuffle (Fisher–Yates) used to draw size combos
    /// without replacement.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// How many seed-drawn variants each family contributes on top of its
/// flagship instance.
const VARIANTS_PER_FAMILY: usize = 5;

fn matmul(n: i64, m: i64, p: i64) -> CorpusEntry {
    CorpusEntry {
        name: format!("gen-matmul-{n}x{m}x{p}"),
        expr: format!("C[i,j] += A[i,k] * B[k,j] ~ i j k where i={n}, j={p}, k={m}"),
        description: format!("{n}x{m} by {m}x{p} matrix multiply"),
    }
}

fn conv1d(outputs: i64, taps: i64) -> CorpusEntry {
    CorpusEntry {
        name: format!("gen-conv1d-{outputs}x{taps}"),
        // The anti-diagonal FIR orientation of the paper's warm-up
        // example: x[n - t + (taps-1)] slides one sample per output.
        expr: format!(
            "y[n] += x[n - t + {}] * h[t] where n={outputs}, t={taps}",
            taps - 1
        ),
        description: format!("{taps}-tap FIR over {outputs} outputs"),
    }
}

fn conv2d(size: i64, taps: i64) -> CorpusEntry {
    CorpusEntry {
        name: format!("gen-conv2d-{size}x{size}x{taps}"),
        expr: format!(
            "out[y,x] += image[y+i, x+j] * coef[i,j] \
             where y={size}, x={size}, i={taps}, j={taps}, image:8"
        ),
        description: format!("{taps}x{taps} convolution over a {size}x{size} image"),
    }
}

fn attention(seq: i64, dim: i64) -> CorpusEntry {
    CorpusEntry {
        name: format!("gen-attn-{seq}x{dim}"),
        expr: format!("S[q,k] += Q[q,d] * K[k,d] ~ q k d where q={seq}, k={seq}, d={dim}"),
        description: format!("attention scores, sequence {seq}, head dim {dim}"),
    }
}

fn lu_update(n: i64, rank: i64) -> CorpusEntry {
    CorpusEntry {
        name: format!("gen-lu-{n}x{rank}"),
        // The trailing-submatrix update of blocked LU: A -= L·U over the
        // remaining n×n block with a rank-`rank` panel.
        expr: format!("T[i,j] += L[i,k] * U[k,j] ~ k i j where i={n}, j={n}, k={rank}"),
        description: format!("LU trailing update, {n}x{n} block, rank {rank} panel"),
    }
}

fn stencil2d(size: i64) -> CorpusEntry {
    CorpusEntry {
        name: format!("gen-stencil2d-{size}x{size}"),
        // Unweighted 3x3 box stencil: a single-term sum, the smallest
        // member of the shifted-index family.
        expr: format!("out[y,x] += img[y+i, x+j] where y={size}, x={size}, i=3, j=3, img:8"),
        description: format!("3x3 box stencil over a {size}x{size} image"),
    }
}

/// Generates the corpus for a seed: six families, one fixed flagship
/// entry per family plus `VARIANTS_PER_FAMILY` seed-drawn size
/// variants, every entry guaranteed to lower (see the tests).
///
/// # Examples
///
/// ```
/// use datareuse_kernels::{generate_corpus, DEFAULT_CORPUS_SEED};
///
/// let corpus = generate_corpus(DEFAULT_CORPUS_SEED);
/// assert_eq!(corpus, generate_corpus(DEFAULT_CORPUS_SEED));
/// assert!(corpus.len() >= 36);
/// assert!(corpus.iter().any(|e| e.name == "gen-matmul-32x32x32"));
/// ```
pub fn generate_corpus(seed: u64) -> Vec<CorpusEntry> {
    let mut rng = SplitMix64(seed);
    let mut out = Vec::new();
    // Each family: flagship first, then variants drawn without
    // replacement from the family's size pool (flagship excluded).
    let mut family = |flagship: CorpusEntry, pool: &mut Vec<CorpusEntry>| {
        pool.retain(|e| e.name != flagship.name);
        rng.shuffle(pool);
        out.push(flagship);
        out.extend(pool.drain(..).take(VARIANTS_PER_FAMILY));
    };

    let mut pool: Vec<CorpusEntry> = Vec::new();
    for n in [8i64, 12, 16, 24, 32, 48] {
        for m in [8i64, 16, 32] {
            pool.push(matmul(n, m, n));
        }
    }
    family(matmul(32, 32, 32), &mut pool);

    let mut pool: Vec<CorpusEntry> = Vec::new();
    for outputs in [128i64, 256, 512] {
        for taps in [8i64, 16, 32] {
            pool.push(conv1d(outputs, taps));
        }
    }
    family(conv1d(256, 16), &mut pool);

    let mut pool: Vec<CorpusEntry> = Vec::new();
    for size in [16i64, 24, 32, 48] {
        for taps in [3i64, 5] {
            pool.push(conv2d(size, taps));
        }
    }
    family(conv2d(32, 3), &mut pool);

    let mut pool: Vec<CorpusEntry> = Vec::new();
    for seq in [16i64, 32, 64] {
        for dim in [16i64, 32, 64] {
            pool.push(attention(seq, dim));
        }
    }
    family(attention(32, 32), &mut pool);

    let mut pool: Vec<CorpusEntry> = Vec::new();
    for n in [8i64, 16, 24, 32] {
        for rank in [4i64, 8, 16] {
            pool.push(lu_update(n, rank));
        }
    }
    family(lu_update(16, 8), &mut pool);

    let mut pool: Vec<CorpusEntry> = Vec::new();
    for size in [12i64, 16, 24, 32, 48, 64] {
        pool.push(stencil2d(size));
    }
    family(stencil2d(32), &mut pool);

    out
}

/// The registered corpus ([`DEFAULT_CORPUS_SEED`]), generated once.
pub fn corpus() -> &'static [CorpusEntry] {
    static CORPUS: OnceLock<Vec<CorpusEntry>> = OnceLock::new();
    CORPUS.get_or_init(|| generate_corpus(DEFAULT_CORPUS_SEED))
}

/// Resolves a corpus name to its lowered program; `None` when the name
/// is not in the registered corpus.
///
/// # Panics
///
/// Never for registered entries: the tests prove every generated
/// expression lowers.
pub fn corpus_kernel(name: &str) -> Option<Program> {
    let entry = corpus().iter().find(|e| e.name == name)?;
    Some(
        parse_expression(&entry.expr)
            .unwrap_or_else(|e| panic!("corpus entry `{}` does not lower: {e}", entry.name)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_seed_sensitive() {
        assert_eq!(generate_corpus(7), generate_corpus(7));
        assert_ne!(generate_corpus(7), generate_corpus(8));
        // Flagships are seed-independent.
        for seed in [1u64, 99] {
            let c = generate_corpus(seed);
            for flagship in [
                "gen-matmul-32x32x32",
                "gen-conv1d-256x16",
                "gen-conv2d-32x32x3",
                "gen-attn-32x32",
                "gen-lu-16x8",
                "gen-stencil2d-32x32",
            ] {
                assert!(c.iter().any(|e| e.name == flagship), "seed {seed}: {flagship}");
            }
        }
    }

    #[test]
    fn names_are_unique_and_every_entry_lowers() {
        let c = corpus();
        let mut names: Vec<&str> = c.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate corpus names");
        for e in c {
            let p = parse_expression(&e.expr)
                .unwrap_or_else(|err| panic!("{}: {err}\n{}", e.name, e.expr));
            assert!(!p.nests().is_empty(), "{}", e.name);
            assert!(e.name.starts_with("gen-"), "{}", e.name);
        }
    }

    #[test]
    fn corpus_lookup_resolves_flagships() {
        let p = corpus_kernel("gen-matmul-32x32x32").expect("flagship registered");
        assert_eq!(p.nests()[0].iteration_count(), 32 * 32 * 32);
        assert!(corpus_kernel("gen-nope").is_none());
    }
}
