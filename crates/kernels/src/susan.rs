//! The SUSAN principle (paper Section 6.4, [27]).
//!
//! SUSAN-based edge/corner detection moves a reference pixel over the
//! image and compares it against every pixel on a 37-pixel circular mask
//! of radius 3. Two representations are provided:
//!
//! - [`Susan::program`] — the original interleaved order: one `(y, x, d)`
//!   nest whose body holds seven guarded accesses (one per mask row, the
//!   bounds of the circle expressed as guard conjunctions, plus the
//!   middle-row `d != 0` conditional the paper calls out);
//! - [`Susan::unfolded_program`] — the paper's pre-processed shape, "a
//!   series of loops with different accesses to an array image": one
//!   exact-bound nest per mask row. This is the form the analytical
//!   exploration consumes ("each of the accesses is handled separately").

use datareuse_loopir::{Access, AffineExpr, ArrayDecl, CmpOp, Guard, Loop, LoopNest, Program};

/// Parameters of the SUSAN kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Susan {
    /// Image height.
    pub height: i64,
    /// Image width.
    pub width: i64,
}

impl Susan {
    /// The paper's image size (QCIF, like the ME test-vehicle).
    pub const QCIF: Self = Self {
        height: 144,
        width: 176,
    };

    /// A scaled-down instance for fast tests and examples.
    pub const SMALL: Self = Self {
        height: 24,
        width: 32,
    };

    /// Name of the image array.
    pub const IMAGE: &'static str = "image";

    /// Mask radius.
    pub const RADIUS: i64 = 3;

    /// Half-width of each mask row, for `dy = −3 … 3`. The row areas
    /// `3 + 5 + 7 + 7 + 7 + 5 + 3 = 37` form the classic 37-pixel mask.
    pub const HALF_WIDTHS: [i64; 7] = [1, 2, 3, 3, 3, 2, 1];

    /// Mask pixels compared per reference position (the center is
    /// skipped).
    pub const MASK_COMPARES: u64 = 36;

    fn reference_bounds(&self) -> ((i64, i64), (i64, i64)) {
        let r = Self::RADIUS;
        ((r, self.height - r - 1), (r, self.width - r - 1))
    }

    /// Builds the interleaved single-nest form: `(y, x, d)` with seven
    /// guarded accesses.
    ///
    /// # Panics
    ///
    /// Panics when the image is smaller than the mask.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_kernels::Susan;
    ///
    /// let p = Susan::SMALL.program();
    /// assert_eq!(p.nests().len(), 1);
    /// assert_eq!(p.nests()[0].accesses().len(), 7);
    /// ```
    pub fn program(&self) -> Program {
        let ((ylo, yhi), (xlo, xhi)) = self.reference_bounds();
        assert!(ylo <= yhi && xlo <= xhi, "image smaller than the mask");
        let r = Self::RADIUS;
        let mut p = Program::new();
        p.declare(ArrayDecl::new(Self::IMAGE, [self.height, self.width], 8).expect("extents"))
            .expect("fresh program");
        let mut accesses = Vec::new();
        for (row, &hw) in Self::HALF_WIDTHS.iter().enumerate() {
            let dy = row as i64 - r;
            let mut acc = Access::read(
                Self::IMAGE,
                [
                    AffineExpr::var("y") + dy,
                    AffineExpr::var("x") + AffineExpr::var("d"),
                ],
            );
            if hw < r {
                acc = acc
                    .with_guard(Guard::new(
                        AffineExpr::var("d"),
                        CmpOp::Ge,
                        AffineExpr::constant(-hw),
                    ))
                    .with_guard(Guard::new(
                        AffineExpr::var("d"),
                        CmpOp::Le,
                        AffineExpr::constant(hw),
                    ));
            }
            if dy == 0 {
                // The paper: "the loop accessing the middle row of the mask
                // is not executed for the position where the reference
                // pixel is located".
                acc = acc.with_guard(Guard::new(
                    AffineExpr::var("d"),
                    CmpOp::Ne,
                    AffineExpr::constant(0),
                ));
            }
            accesses.push(acc);
        }
        let nest = LoopNest::new(
            [
                Loop::new("y", ylo, yhi),
                Loop::new("x", xlo, xhi),
                Loop::new("d", -r, r),
            ],
            accesses,
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }

    /// Builds the pre-processed series-of-loops form: one `(y, x, d)` nest
    /// per mask row with exact `d` bounds. Only the middle row keeps a
    /// conditional (`d != 0`), exactly the situation for which the paper
    /// accepts "an approximate solution".
    pub fn unfolded_program(&self) -> Program {
        let ((ylo, yhi), (xlo, xhi)) = self.reference_bounds();
        assert!(ylo <= yhi && xlo <= xhi, "image smaller than the mask");
        let r = Self::RADIUS;
        let mut p = Program::new();
        p.declare(ArrayDecl::new(Self::IMAGE, [self.height, self.width], 8).expect("extents"))
            .expect("fresh program");
        for (row, &hw) in Self::HALF_WIDTHS.iter().enumerate() {
            let dy = row as i64 - r;
            let mut acc = Access::read(
                Self::IMAGE,
                [
                    AffineExpr::var("y") + dy,
                    AffineExpr::var("x") + AffineExpr::var("d"),
                ],
            );
            if dy == 0 {
                acc = acc.with_guard(Guard::new(
                    AffineExpr::var("d"),
                    CmpOp::Ne,
                    AffineExpr::constant(0),
                ));
            }
            let nest = LoopNest::new(
                [
                    Loop::new("y", ylo, yhi),
                    Loop::new("x", xlo, xhi),
                    Loop::new("d", -hw, hw),
                ],
                [acc],
            );
            p.push_nest(nest).expect("kernel is in bounds by construction");
        }
        p
    }

    /// Total image reads per frame (36 mask compares per reference pixel).
    pub fn image_reads(&self) -> u64 {
        let ((ylo, yhi), (xlo, xhi)) = self.reference_bounds();
        ((yhi - ylo + 1) * (xhi - xlo + 1)) as u64 * Self::MASK_COMPARES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{trace_len, TraceFilter};

    #[test]
    fn both_forms_issue_the_same_reads() {
        let s = Susan::SMALL;
        let folded = trace_len(&s.program(), Susan::IMAGE, TraceFilter::READS);
        let unfolded = trace_len(&s.unfolded_program(), Susan::IMAGE, TraceFilter::READS);
        assert_eq!(folded, s.image_reads());
        assert_eq!(unfolded, s.image_reads());
    }

    #[test]
    fn qcif_read_count() {
        let s = Susan::QCIF;
        // (144−6)·(176−6)·36
        assert_eq!(s.image_reads(), 138 * 170 * 36);
    }

    #[test]
    fn mask_covers_37_pixels() {
        let total: i64 = Susan::HALF_WIDTHS.iter().map(|&w| 2 * w + 1).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn folded_trace_matches_unfolded_multiset() {
        // Same addresses, different order.
        let s = Susan::SMALL;
        let mut a = datareuse_loopir::read_addresses(&s.program(), Susan::IMAGE);
        let mut b = datareuse_loopir::read_addresses(&s.unfolded_program(), Susan::IMAGE);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "smaller than the mask")]
    fn tiny_image_panics() {
        Susan {
            height: 4,
            width: 4,
        }
        .program();
    }
}
