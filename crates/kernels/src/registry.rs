//! Named kernel registry: one place that maps a kernel name (or a `.dr`
//! file path) to a [`Program`].
//!
//! Both entry points of the workspace — the one-shot `datareuse` CLI and
//! the long-running `datareuse serve` daemon — resolve workloads through
//! this registry, so a request for `"me-small"` means the same program
//! everywhere and the server's responses stay byte-identical to the
//! equivalent CLI invocation.

use datareuse_exprlang::{looks_like_expression, parse_expression};
use datareuse_loopir::{parse_program, Program};
use datareuse_obs::{add, Counter};

use crate::corpus::corpus_kernel;
use crate::{Conv2d, Downsample, Fir, MatMul, MotionEstimation, Sobel, Susan};

/// The built-in kernels, as `(name, description)` pairs in display order.
pub const BUILTINS: &[(&str, &str)] = &[
    ("me", "full-search motion estimation, QCIF, n=m=8 (paper Fig. 3)"),
    ("me-small", "motion estimation, 32x32 frame, n=m=4"),
    ("susan", "SUSAN 37-pixel circular mask, QCIF (paper Sec. 6.4)"),
    ("susan-small", "SUSAN on a 24x32 image"),
    ("susan-unfolded", "SUSAN pre-processed to a series of loops"),
    ("conv2d", "3x3 convolution over a 64x64 image"),
    ("matmul", "32x32x32 matrix multiply"),
    ("sobel", "Sobel operator over a 64x64 image"),
    ("downsample", "4:1 box downsampler over a 64x64 image"),
    ("fir", "64-tap FIR filter over 1024 samples"),
];

/// Resolves a built-in kernel name to its program, without touching the
/// filesystem. `None` when the name is not a built-in.
pub fn builtin_kernel(name: &str) -> Option<Program> {
    match name {
        "me" => Some(MotionEstimation::QCIF.program()),
        "me-small" => Some(MotionEstimation::SMALL.program()),
        "susan" => Some(Susan::QCIF.program()),
        "susan-small" => Some(Susan::SMALL.program()),
        "susan-unfolded" => Some(Susan::QCIF.unfolded_program()),
        "conv2d" => Some(
            Conv2d {
                height: 64,
                width: 64,
                tap_rows: 3,
                tap_cols: 3,
            }
            .program(),
        ),
        "matmul" => Some(MatMul::square(32).program()),
        "sobel" => Some(
            Sobel {
                height: 64,
                width: 64,
            }
            .program(),
        ),
        "downsample" => Some(
            Downsample {
                height: 64,
                width: 64,
                factor: 4,
            }
            .program(),
        ),
        "fir" => Some(Fir::AUDIO.program()),
        _ => None,
    }
}

/// Loads a kernel by name: a built-in, a generated-corpus entry, an
/// inline einsum expression (anything that
/// [`looks_like_expression`]), or a path to a `.dr` DSL file — in that
/// order.
///
/// Every consumer of kernels resolves through this one function (the
/// CLI subcommands and the serve ops), so an expression string in a
/// served request's `kernel` field means the same program — and gets
/// the same canonical cache key — as the equivalent one-shot CLI run.
///
/// # Errors
///
/// A human-readable message when the file cannot be read or the source
/// fails to parse; expression errors keep the `line:column:` prefix of
/// [`datareuse_exprlang::ParseNestError`].
///
/// # Examples
///
/// ```
/// let p = datareuse_kernels::load_kernel("me-small").unwrap();
/// assert!(!p.nests().is_empty());
/// let p = datareuse_kernels::load_kernel("gen-matmul-32x32x32").unwrap();
/// assert_eq!(p.nests()[0].depth(), 3);
/// let p = datareuse_kernels::load_kernel("y[n] += x[n+t] * h[t] where n=64, t=8").unwrap();
/// assert_eq!(p.array("x").unwrap().extents(), &[71]);
/// assert!(datareuse_kernels::load_kernel("/no/such/file.dr").is_err());
/// ```
pub fn load_kernel(name: &str) -> Result<Program, String> {
    if let Some(program) = builtin_kernel(name) {
        return Ok(program);
    }
    if let Some(program) = corpus_kernel(name) {
        add(Counter::CorpusKernelsLoaded, 1);
        return Ok(program);
    }
    if looks_like_expression(name) {
        let program =
            parse_expression(name).map_err(|e| format!("expression:{e}"))?;
        add(Counter::ExprKernelsLowered, 1);
        return Ok(program);
    }
    let src =
        std::fs::read_to_string(name).map_err(|e| format!("cannot read `{name}`: {e}"))?;
    parse_program(&src).map_err(|e| format!("{name}:{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_builtin_resolves() {
        for (name, _) in BUILTINS {
            let p = builtin_kernel(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!p.nests().is_empty(), "{name} has nests");
        }
    }

    #[test]
    fn unknown_names_fall_through_to_the_filesystem() {
        assert!(builtin_kernel("not-a-kernel").is_none());
        let e = load_kernel("/no/such/file.dr").unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
    }

    #[test]
    fn expression_errors_keep_the_line_column_prefix() {
        let e = load_kernel("C[i,j] += A[i,k * B[k,j]").unwrap_err();
        assert!(e.starts_with("expression:1:17:"), "{e}");
    }

    #[test]
    fn every_corpus_entry_resolves_through_the_registry() {
        for entry in crate::corpus() {
            let p = load_kernel(&entry.name).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert!(!p.nests().is_empty(), "{}", entry.name);
        }
    }
}
