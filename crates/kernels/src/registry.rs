//! Named kernel registry: one place that maps a kernel name (or a `.dr`
//! file path) to a [`Program`].
//!
//! Both entry points of the workspace — the one-shot `datareuse` CLI and
//! the long-running `datareuse serve` daemon — resolve workloads through
//! this registry, so a request for `"me-small"` means the same program
//! everywhere and the server's responses stay byte-identical to the
//! equivalent CLI invocation.

use datareuse_loopir::{parse_program, Program};

use crate::{Conv2d, Downsample, Fir, MatMul, MotionEstimation, Sobel, Susan};

/// The built-in kernels, as `(name, description)` pairs in display order.
pub const BUILTINS: &[(&str, &str)] = &[
    ("me", "full-search motion estimation, QCIF, n=m=8 (paper Fig. 3)"),
    ("me-small", "motion estimation, 32x32 frame, n=m=4"),
    ("susan", "SUSAN 37-pixel circular mask, QCIF (paper Sec. 6.4)"),
    ("susan-small", "SUSAN on a 24x32 image"),
    ("susan-unfolded", "SUSAN pre-processed to a series of loops"),
    ("conv2d", "3x3 convolution over a 64x64 image"),
    ("matmul", "32x32x32 matrix multiply"),
    ("sobel", "Sobel operator over a 64x64 image"),
    ("downsample", "4:1 box downsampler over a 64x64 image"),
    ("fir", "64-tap FIR filter over 1024 samples"),
];

/// Resolves a built-in kernel name to its program, without touching the
/// filesystem. `None` when the name is not a built-in.
pub fn builtin_kernel(name: &str) -> Option<Program> {
    match name {
        "me" => Some(MotionEstimation::QCIF.program()),
        "me-small" => Some(MotionEstimation::SMALL.program()),
        "susan" => Some(Susan::QCIF.program()),
        "susan-small" => Some(Susan::SMALL.program()),
        "susan-unfolded" => Some(Susan::QCIF.unfolded_program()),
        "conv2d" => Some(
            Conv2d {
                height: 64,
                width: 64,
                tap_rows: 3,
                tap_cols: 3,
            }
            .program(),
        ),
        "matmul" => Some(MatMul::square(32).program()),
        "sobel" => Some(
            Sobel {
                height: 64,
                width: 64,
            }
            .program(),
        ),
        "downsample" => Some(
            Downsample {
                height: 64,
                width: 64,
                factor: 4,
            }
            .program(),
        ),
        "fir" => Some(Fir::AUDIO.program()),
        _ => None,
    }
}

/// Loads a kernel by built-in name, falling back to reading `name` as a
/// path to a `.dr` DSL file.
///
/// # Errors
///
/// A human-readable message when the file cannot be read or fails to
/// parse (prefixed with the path, as the CLI has always reported it).
///
/// # Examples
///
/// ```
/// let p = datareuse_kernels::load_kernel("me-small").unwrap();
/// assert!(!p.nests().is_empty());
/// assert!(datareuse_kernels::load_kernel("/no/such/file.dr").is_err());
/// ```
pub fn load_kernel(name: &str) -> Result<Program, String> {
    if let Some(program) = builtin_kernel(name) {
        return Ok(program);
    }
    let src =
        std::fs::read_to_string(name).map_err(|e| format!("cannot read `{name}`: {e}"))?;
    parse_program(&src).map_err(|e| format!("{name}:{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_builtin_resolves() {
        for (name, _) in BUILTINS {
            let p = builtin_kernel(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!p.nests().is_empty(), "{name} has nests");
        }
    }

    #[test]
    fn unknown_names_fall_through_to_the_filesystem() {
        assert!(builtin_kernel("not-a-kernel").is_none());
        let e = load_kernel("/no/such/file.dr").unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
    }
}
