//! Stencil-style workloads: 2-D convolution, Sobel, and a strided
//! downsampler. These exercise the exploration machinery on the broader
//! class of loop-dominated kernels the paper's title targets.

use datareuse_loopir::{Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program};

/// Dense 2-D convolution `out[y][x] = Σ image[y+i][x+j]·coef[i][j]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    /// Output height.
    pub height: i64,
    /// Output width.
    pub width: i64,
    /// Kernel height.
    pub tap_rows: i64,
    /// Kernel width.
    pub tap_cols: i64,
}

impl Conv2d {
    /// Name of the input image array.
    pub const IMAGE: &'static str = "image";
    /// Name of the coefficient array.
    pub const COEF: &'static str = "coef";
    /// Name of the output array.
    pub const OUT: &'static str = "out";

    /// Builds the four-deep nest `(y, x, i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_kernels::Conv2d;
    ///
    /// let c = Conv2d { height: 16, width: 16, tap_rows: 3, tap_cols: 3 };
    /// assert_eq!(c.program().nests()[0].depth(), 4);
    /// ```
    pub fn program(&self) -> Program {
        assert!(
            self.height > 0 && self.width > 0 && self.tap_rows > 0 && self.tap_cols > 0,
            "parameters must be positive"
        );
        let mut p = Program::new();
        p.declare(
            ArrayDecl::new(
                Self::IMAGE,
                [self.height + self.tap_rows - 1, self.width + self.tap_cols - 1],
                8,
            )
            .expect("extents"),
        )
        .expect("fresh program");
        p.declare(ArrayDecl::new(Self::COEF, [self.tap_rows, self.tap_cols], 16).expect("extents"))
            .expect("fresh program");
        p.declare(ArrayDecl::new(Self::OUT, [self.height, self.width], 32).expect("extents"))
            .expect("fresh program");
        let var = AffineExpr::var;
        let nest = LoopNest::new(
            [
                Loop::new("y", 0, self.height - 1),
                Loop::new("x", 0, self.width - 1),
                Loop::new("i", 0, self.tap_rows - 1),
                Loop::new("j", 0, self.tap_cols - 1),
            ],
            [
                Access::read(Self::IMAGE, [var("y") + var("i"), var("x") + var("j")]),
                Access::read(Self::COEF, [var("i"), var("j")]),
                Access::write(Self::OUT, [var("y"), var("x")]),
            ],
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }
}

/// The Sobel 3×3 gradient operator with the taps fully unrolled into
/// constant-offset accesses — the "pointer-based unfolded body" shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sobel {
    /// Image height.
    pub height: i64,
    /// Image width.
    pub width: i64,
}

impl Sobel {
    /// Name of the image array.
    pub const IMAGE: &'static str = "image";

    /// Builds a `(y, x)` nest with eight neighbour reads (the center tap
    /// has zero weight in both Sobel masks and is skipped).
    ///
    /// # Panics
    ///
    /// Panics when the image is smaller than 3×3.
    pub fn program(&self) -> Program {
        assert!(self.height >= 3 && self.width >= 3, "image too small");
        let mut p = Program::new();
        p.declare(ArrayDecl::new(Self::IMAGE, [self.height, self.width], 8).expect("extents"))
            .expect("fresh program");
        let mut accesses = Vec::new();
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dy == 0 && dx == 0 {
                    continue;
                }
                accesses.push(Access::read(
                    Self::IMAGE,
                    [AffineExpr::var("y") + dy, AffineExpr::var("x") + dx],
                ));
            }
        }
        let nest = LoopNest::new(
            [
                Loop::new("y", 1, self.height - 2),
                Loop::new("x", 1, self.width - 2),
            ],
            accesses,
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }
}

/// A strided `factor:1` downsampler — exercises step-size normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Downsample {
    /// Input height.
    pub height: i64,
    /// Input width.
    pub width: i64,
    /// Decimation factor (≥ 1).
    pub factor: i64,
}

impl Downsample {
    /// Name of the input image array.
    pub const IMAGE: &'static str = "image";

    /// Builds the strided nest reading a `factor × factor` window per
    /// output pixel (simple box filter).
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or when `factor` does not divide
    /// the image size.
    pub fn program(&self) -> Program {
        assert!(
            self.factor > 0 && self.height % self.factor == 0 && self.width % self.factor == 0,
            "factor must divide the image size"
        );
        let mut p = Program::new();
        p.declare(ArrayDecl::new(Self::IMAGE, [self.height, self.width], 8).expect("extents"))
            .expect("fresh program");
        let var = AffineExpr::var;
        let nest = LoopNest::new(
            [
                Loop::with_step("y", 0, self.height - self.factor, self.factor),
                Loop::with_step("x", 0, self.width - self.factor, self.factor),
                Loop::new("i", 0, self.factor - 1),
                Loop::new("j", 0, self.factor - 1),
            ],
            [Access::read(
                Self::IMAGE,
                [var("y") + var("i"), var("x") + var("j")],
            )],
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{read_addresses, trace_len, TraceFilter};

    #[test]
    fn conv2d_counts() {
        let c = Conv2d {
            height: 8,
            width: 8,
            tap_rows: 3,
            tap_cols: 3,
        };
        let p = c.program();
        assert_eq!(trace_len(&p, Conv2d::IMAGE, TraceFilter::READS), 8 * 8 * 9);
        assert_eq!(trace_len(&p, Conv2d::OUT, TraceFilter::ALL), 8 * 8 * 9);
        assert_eq!(trace_len(&p, Conv2d::OUT, TraceFilter::READS), 0);
    }

    #[test]
    fn sobel_reads_eight_neighbours() {
        let s = Sobel {
            height: 10,
            width: 12,
        };
        let p = s.program();
        assert_eq!(
            trace_len(&p, Sobel::IMAGE, TraceFilter::READS),
            8 * 10 * (12 - 2) * (10 - 2) / 10
        );
        // Every interior pixel's neighbourhood stays in bounds.
        let trace = read_addresses(&p, Sobel::IMAGE);
        assert!(trace.iter().all(|&a| a < 120));
    }

    #[test]
    fn downsample_touches_every_pixel_once() {
        let d = Downsample {
            height: 16,
            width: 16,
            factor: 4,
        };
        let p = d.program();
        let trace = read_addresses(&p, Downsample::IMAGE);
        assert_eq!(trace.len(), 256);
        let mut sorted = trace.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256); // each element exactly once
    }
}
