//! 1-D FIR filtering — the smallest loop-dominated kernel with a clean
//! sliding-window reuse structure, and the canonical warm-up example in
//! the DTSE literature.
//!
//! `y[n] = Σ_t h[t] · x[n + T − 1 − t]` over a sample stream `x`: the
//! `(n, t)` pair carries reuse with `b' = c' = 1` on `x`, and the
//! coefficient array `h` is a `repeat-across-n` signal with `b = 0`.

use datareuse_loopir::{Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program};

/// Parameters of the FIR kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fir {
    /// Number of output samples.
    pub outputs: i64,
    /// Number of filter taps `T`.
    pub taps: i64,
}

impl Fir {
    /// Name of the sample array.
    pub const SAMPLES: &'static str = "x";
    /// Name of the coefficient array.
    pub const COEFFS: &'static str = "h";

    /// A 64-tap filter over 1024 outputs.
    pub const AUDIO: Self = Self {
        outputs: 1024,
        taps: 64,
    };

    /// Builds the double nest `(n, t)`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_kernels::Fir;
    ///
    /// let p = Fir { outputs: 16, taps: 4 }.program();
    /// assert_eq!(p.nests()[0].iteration_count(), 64);
    /// ```
    pub fn program(&self) -> Program {
        assert!(self.outputs > 0 && self.taps > 0, "parameters must be positive");
        let mut p = Program::new();
        p.declare(
            ArrayDecl::new(Self::SAMPLES, [self.outputs + self.taps - 1], 16).expect("extents"),
        )
        .expect("fresh program");
        p.declare(ArrayDecl::new(Self::COEFFS, [self.taps], 16).expect("extents"))
            .expect("fresh program");
        let var = AffineExpr::var;
        // x[n + T - 1 - t]: anti-diagonal orientation exercised on purpose.
        let sample_idx = var("n") - var("t") + (self.taps - 1);
        let nest = LoopNest::new(
            [
                Loop::new("n", 0, self.outputs - 1),
                Loop::new("t", 0, self.taps - 1),
            ],
            [
                Access::read(Self::SAMPLES, [sample_idx]),
                Access::read(Self::COEFFS, [var("t")]),
            ],
        );
        p.push_nest(nest).expect("kernel is in bounds by construction");
        p
    }

    /// Total sample reads.
    pub fn sample_reads(&self) -> u64 {
        (self.outputs * self.taps) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{read_addresses, trace_len, TraceFilter};

    #[test]
    fn counts_match() {
        let f = Fir {
            outputs: 32,
            taps: 8,
        };
        let p = f.program();
        assert_eq!(
            trace_len(&p, Fir::SAMPLES, TraceFilter::READS),
            f.sample_reads()
        );
        assert_eq!(trace_len(&p, Fir::COEFFS, TraceFilter::READS), 256);
    }

    #[test]
    fn window_slides_one_sample_per_output() {
        let f = Fir {
            outputs: 4,
            taps: 3,
        };
        let trace = read_addresses(&f.program(), Fir::SAMPLES);
        // n=0 reads x[2], x[1], x[0]; n=1 reads x[3], x[2], x[1]; ...
        assert_eq!(trace, vec![2, 1, 0, 3, 2, 1, 4, 3, 2, 5, 4, 3]);
    }

    #[test]
    fn coefficient_stream_repeats_per_output() {
        let f = Fir {
            outputs: 3,
            taps: 2,
        };
        let trace = read_addresses(&f.program(), Fir::COEFFS);
        assert_eq!(trace, vec![0, 1, 0, 1, 0, 1]);
    }
}
