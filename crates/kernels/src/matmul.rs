//! Dense matrix multiplication `C = A · B` — the classic reuse-heavy
//! kernel, with selectable loop order to exercise the "certain freedom in
//! loop nest ordering is still available" hook of DTSE step 2.

use datareuse_loopir::{Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program};

/// Loop order of the triple nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatMulOrder {
    /// `i` outer, `j` middle, `k` inner (row-major natural).
    #[default]
    Ijk,
    /// `i`, `k`, `j` — streams `B` rows.
    Ikj,
    /// `j`, `k`, `i` — streams `A` columns.
    Jki,
}

/// Parameters of the matrix-multiply kernel (`A: n×m`, `B: m×p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatMul {
    /// Rows of `A` / `C`.
    pub n: i64,
    /// Columns of `A` / rows of `B`.
    pub m: i64,
    /// Columns of `B` / `C`.
    pub p: i64,
    /// Loop order.
    pub order: MatMulOrder,
}

impl MatMul {
    /// Name of the left operand array.
    pub const A: &'static str = "A";
    /// Name of the right operand array.
    pub const B: &'static str = "B";
    /// Name of the result array.
    pub const C: &'static str = "C";

    /// A square instance with the default order.
    pub fn square(n: i64) -> Self {
        Self {
            n,
            m: n,
            p: n,
            order: MatMulOrder::default(),
        }
    }

    /// Builds the triple nest in the configured order.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_kernels::MatMul;
    ///
    /// let p = MatMul::square(8).program();
    /// assert_eq!(p.nests()[0].iteration_count(), 512);
    /// ```
    pub fn program(&self) -> Program {
        assert!(self.n > 0 && self.m > 0 && self.p > 0, "dimensions must be positive");
        let mut prog = Program::new();
        prog.declare(ArrayDecl::new(Self::A, [self.n, self.m], 16).expect("extents"))
            .expect("fresh program");
        prog.declare(ArrayDecl::new(Self::B, [self.m, self.p], 16).expect("extents"))
            .expect("fresh program");
        prog.declare(ArrayDecl::new(Self::C, [self.n, self.p], 32).expect("extents"))
            .expect("fresh program");
        let li = Loop::new("i", 0, self.n - 1);
        let lj = Loop::new("j", 0, self.p - 1);
        let lk = Loop::new("k", 0, self.m - 1);
        let loops = match self.order {
            MatMulOrder::Ijk => [li, lj, lk],
            MatMulOrder::Ikj => [li, lk, lj],
            MatMulOrder::Jki => [lj, lk, li],
        };
        let var = AffineExpr::var;
        let nest = LoopNest::new(
            loops,
            [
                Access::read(Self::A, [var("i"), var("k")]),
                Access::read(Self::B, [var("k"), var("j")]),
                Access::write(Self::C, [var("i"), var("j")]),
            ],
        );
        prog.push_nest(nest).expect("kernel is in bounds by construction");
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{trace_len, TraceFilter};

    #[test]
    fn all_orders_issue_the_same_traffic() {
        for order in [MatMulOrder::Ijk, MatMulOrder::Ikj, MatMulOrder::Jki] {
            let mm = MatMul {
                n: 4,
                m: 5,
                p: 6,
                order,
            };
            let prog = mm.program();
            assert_eq!(trace_len(&prog, MatMul::A, TraceFilter::READS), 120);
            assert_eq!(trace_len(&prog, MatMul::B, TraceFilter::READS), 120);
            assert_eq!(trace_len(&prog, MatMul::C, TraceFilter::ALL), 120);
        }
    }

    #[test]
    fn order_changes_reuse_carrier() {
        // Under Ijk, B[k][j] reuses across i (the outermost loop); under
        // Ikj, B[k][j] is reused across... the exploration sees different
        // candidate structures. Just assert the nests differ.
        let a = MatMul {
            n: 4,
            m: 4,
            p: 4,
            order: MatMulOrder::Ijk,
        }
        .program();
        let b = MatMul {
            n: 4,
            m: 4,
            p: 4,
            order: MatMulOrder::Ikj,
        }
        .program();
        assert_ne!(a.nests()[0].loops(), b.nests()[0].loops());
    }
}
