//! # datareuse-kernels
//!
//! Workload library for the `datareuse` project (reproduction of the
//! DATE 2002 data-reuse exploration paper): the paper's two test-vehicles
//! plus a set of classic loop-dominated kernels, all expressed as
//! `datareuse-loopir` programs.
//!
//! - [`MotionEstimation`] — full-search full-pixel motion estimation
//!   (paper Fig. 3; QCIF, n = m = 8);
//! - [`Susan`] — the SUSAN principle with its 37-pixel circular mask
//!   (paper Section 6.4), in both the interleaved and the pre-processed
//!   series-of-loops forms;
//! - [`Conv2d`], [`Sobel`], [`Downsample`], [`MatMul`], [`Fir`] — additional
//!   loop-dominated kernels for tests, examples and ablations;
//! - the **generated corpus** ([`corpus`], [`generate_corpus`],
//!   [`DEFAULT_CORPUS_SEED`]) — `gen-*` workloads minted as
//!   `datareuse-exprlang` einsum expressions (matmul, conv1d, conv2d,
//!   attention score, LU update, 5-point stencil at several sizes), a
//!   pure function of the seed;
//! - [`load_kernel`] — the one resolution path every CLI command and
//!   serve op uses: builtin name → corpus name → inline einsum
//!   expression → `.dr` file path.
//!
//! # Examples
//!
//! ```
//! use datareuse_kernels::MotionEstimation;
//! use datareuse_loopir::read_addresses;
//!
//! let program = MotionEstimation::SMALL.program();
//! let trace = read_addresses(&program, MotionEstimation::OLD);
//! assert_eq!(trace.len() as u64, MotionEstimation::SMALL.old_reads());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod fir;
mod matmul;
mod mc;
mod me;
mod registry;
mod stencils;
mod susan;

pub use corpus::{corpus, corpus_kernel, generate_corpus, CorpusEntry, DEFAULT_CORPUS_SEED};
pub use fir::Fir;
pub use registry::{builtin_kernel, load_kernel, BUILTINS};
pub use matmul::{MatMul, MatMulOrder};
pub use mc::MotionCompensation;
pub use me::MotionEstimation;
pub use stencils::{Conv2d, Downsample, Sobel};
pub use susan::Susan;
