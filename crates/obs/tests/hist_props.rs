//! Property tests of the latency histogram and the Chrome trace export.
//!
//! The histogram is the only lossy structure on the serving path — the
//! percentiles it reports feed `BENCH_serve` columns and the verify.sh
//! p50≤p90≤p99 gate — so its invariants are pinned over the *whole*
//! `u64` domain, not just plausible nanosecond values. All cases run
//! from fixed seeds (see `datareuse-proptest`); failures reproduce from
//! the printed `(seed, case)` pair.

use datareuse_obs::{chrome_trace_json, HistSnapshot, Histogram, Json, TraceEvent};
use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config, Rng};

/// Draws a value biased across scales: u64 extremes (0, MAX, powers of
/// two and their neighbours) must be as common as mid-range latencies,
/// since bucket-boundary off-by-ones only surface there.
fn any_value(rng: &mut Rng) -> u64 {
    match rng.u64_in(0, 5) {
        0 => rng.u64_in(0, 16),
        1 => rng.u64_in(0, 1 << 20),
        2 => rng.u64_in(u64::MAX - 16, u64::MAX),
        3 => {
            let exp = rng.u64_in(0, 63) as u32;
            let base = 1u64 << exp;
            base.wrapping_add(rng.u64_in(0, 2)).wrapping_sub(1)
        }
        _ => rng.next_u64(),
    }
}

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn no_value_is_lost_and_extremes_stay_in_range() {
    check(
        "hist_count_conservation",
        &Config::default(),
        |rng| rng.vec(0, 64, any_value),
        |values| {
            let snap = snapshot_of(values);
            // Every recorded value landed in exactly one bucket.
            prop_assert_eq!(snap.count, values.len() as u64);
            prop_assert_eq!(snap.counts.iter().sum::<u64>(), values.len() as u64);
            if values.is_empty() {
                prop_assert_eq!(snap.min, 0);
                prop_assert_eq!(snap.max, 0);
                return Ok(());
            }
            prop_assert_eq!(snap.min, *values.iter().min().unwrap());
            prop_assert_eq!(snap.max, *values.iter().max().unwrap());
            let sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
            prop_assert_eq!(snap.sum, sum, "wrapping sum conserved");
            // Each value's bucket upper bound is an over-approximation.
            for &v in values {
                let i = Histogram::bucket_index(v);
                prop_assert!(i < Histogram::BUCKETS);
                prop_assert!(Histogram::bucket_bound(i) >= v, "bound below value {v}");
                prop_assert!(i == 0 || Histogram::bucket_bound(i - 1) < v);
            }
            Ok(())
        },
    );
}

#[test]
fn percentiles_are_monotone_and_bounded_by_observation() {
    check(
        "hist_percentile_monotone",
        &Config::default(),
        |rng| rng.vec(1, 64, any_value),
        |values| {
            let snap = snapshot_of(values);
            let grid = [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
            for q in grid.windows(2) {
                prop_assert!(
                    snap.percentile(q[0]) <= snap.percentile(q[1]),
                    "p{} > p{}",
                    q[0],
                    q[1]
                );
            }
            for &q in &grid {
                let p = snap.percentile(q);
                // A percentile is a bucket bound clamped to the observed
                // max: never below the minimum, never above the maximum.
                prop_assert!(snap.min <= p && p <= snap.max, "p({q}) = {p} escapes range");
            }
            prop_assert_eq!(snap.percentile(1.0), snap.max);
            Ok(())
        },
    );
}

#[test]
fn merging_snapshots_equals_recording_the_concatenation() {
    check(
        "hist_merge_is_concat",
        &Config::default(),
        |rng| (rng.vec(0, 48, any_value), rng.vec(0, 48, any_value)),
        |(a, b)| {
            let merged = snapshot_of(a).merge(&snapshot_of(b));
            let concat: Vec<u64> = a.iter().chain(b).copied().collect();
            prop_assert_eq!(merged, snapshot_of(&concat));
            // And merge is commutative, so shards can combine in any order.
            prop_assert_eq!(
                snapshot_of(a).merge(&snapshot_of(b)),
                snapshot_of(b).merge(&snapshot_of(a))
            );
            Ok(())
        },
    );
}

#[test]
fn histogram_json_is_parseable_and_consistent() {
    check(
        "hist_json_roundtrip",
        &Config::with_cases(128),
        |rng| rng.vec(0, 32, any_value),
        |values| {
            let snap = snapshot_of(values);
            let doc = Json::parse(&snap.to_json().to_string()).map_err(|e| e.to_string())?;
            let field = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(u64::MAX);
            prop_assert_eq!(field("count"), snap.count);
            prop_assert_eq!(field("min"), snap.min);
            prop_assert_eq!(field("max"), snap.max);
            if snap.count == 0 {
                // Empty histograms have no percentiles: serialized null.
                prop_assert!(matches!(doc.get("p50"), Some(Json::Null)));
                prop_assert!(matches!(doc.get("p999"), Some(Json::Null)));
            } else {
                prop_assert_eq!(field("p50"), snap.p50());
                prop_assert_eq!(field("p999"), snap.p999());
            }
            // The serialized buckets re-add to the total count.
            let buckets = doc.get("buckets").and_then(Json::as_array).unwrap();
            let total: u64 = buckets
                .iter()
                .map(|pair| pair.at(1).and_then(Json::as_u64).unwrap())
                .sum();
            prop_assert_eq!(total, snap.count);
            Ok(())
        },
    );
}

#[test]
fn merged_histogram_percentiles_stay_monotone_and_in_range() {
    // The scorecard and the series ring both consume *merged* snapshots
    // (shard merges, window differences), so monotonicity must survive
    // the merge, not just a single-recorder histogram.
    check(
        "hist_merged_percentile_monotone",
        &Config::default(),
        |rng| (rng.vec(1, 48, any_value), rng.vec(1, 48, any_value)),
        |(a, b)| {
            let (sa, sb) = (snapshot_of(a), snapshot_of(b));
            let merged = sa.merge(&sb);
            let grid = [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
            for q in grid.windows(2) {
                prop_assert!(
                    merged.percentile(q[0]) <= merged.percentile(q[1]),
                    "merged p{} > p{}",
                    q[0],
                    q[1]
                );
            }
            for &q in &grid {
                let p = merged.percentile(q);
                prop_assert!(
                    merged.min <= p && p <= merged.max,
                    "merged p({q}) = {p} escapes [{}, {}]",
                    merged.min,
                    merged.max
                );
            }
            prop_assert_eq!(merged.percentile(1.0), sa.max.max(sb.max));
            // Merging with an empty snapshot changes nothing.
            prop_assert_eq!(sa.merge(&snapshot_of(&[])), sa);
            Ok(())
        },
    );
}

/// Names must be `&'static str`, so generated events draw from a pool.
const NAMES: [&str; 4] = ["request", "execute", "queue_wait", "flush"];

fn any_event(rng: &mut Rng) -> (usize, u64, u64, u64, u64, u64, u64) {
    (
        rng.usize_in(0, NAMES.len() - 1),
        rng.next_u64(),               // trace_id
        rng.u64_in(1, u64::MAX),      // span_id
        rng.next_u64(),               // parent_span
        rng.u64_in(0, 512),           // tid
        rng.u64_in(0, u64::MAX / 2),  // ts_ns
        rng.u64_in(0, u64::MAX / 2),  // dur_ns
    )
}

#[test]
fn chrome_trace_export_round_trips_through_the_json_parser() {
    check(
        "chrome_trace_roundtrip",
        &Config::with_cases(128),
        |rng| rng.vec(0, 24, any_event),
        |raw| {
            let events: Vec<TraceEvent> = raw
                .iter()
                .map(|&(n, trace_id, span_id, parent_span, tid, ts_ns, dur_ns)| TraceEvent {
                    name: NAMES[n],
                    detail: if span_id % 2 == 0 {
                        String::new()
                    } else {
                        format!("detail-{span_id}")
                    },
                    trace_id,
                    span_id,
                    parent_span,
                    tid,
                    ts_ns,
                    dur_ns,
                })
                .collect();
            let text = chrome_trace_json(&events).to_string();
            let doc = Json::parse(&text).map_err(|e| e.to_string())?;
            prop_assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ns"));
            let out = doc.get("traceEvents").and_then(Json::as_array).unwrap();
            prop_assert_eq!(out.len(), events.len());
            for (e, j) in events.iter().zip(out) {
                prop_assert_eq!(j.get("name").and_then(Json::as_str), Some(e.name));
                prop_assert_eq!(j.get("ph").and_then(Json::as_str), Some("X"));
                prop_assert_eq!(j.get("tid").and_then(Json::as_u64), Some(e.tid));
                let args = j.get("args").unwrap();
                let hex = format!("{:016x}", e.trace_id);
                prop_assert_eq!(args.get("trace_id").and_then(Json::as_str), Some(hex.as_str()));
                prop_assert_eq!(args.get("span_id").and_then(Json::as_u64), Some(e.span_id));
                prop_assert_eq!(
                    args.get("parent_span").and_then(Json::as_u64),
                    Some(e.parent_span)
                );
                prop_assert_eq!(
                    args.get("detail").is_some(),
                    !e.detail.is_empty(),
                    "detail key only when non-empty"
                );
                // Timestamps survive the µs conversion to Perfetto
                // precision (a 53-bit mantissa covers every ts the
                // process-epoch clock can mint in ~104 days).
                let ts = j.get("ts").and_then(Json::as_f64).unwrap();
                prop_assert!((ts - e.ts_ns as f64 / 1_000.0).abs() < 1e-3 * ts.abs().max(1.0));
                let dur = j.get("dur").and_then(Json::as_f64).unwrap();
                prop_assert!(dur > 0.0, "zero-duration spans render invisibly");
            }
            Ok(())
        },
    );
}
