//! Prometheus text-format exposition of a [`MetricsSnapshot`].
//!
//! Renders the exposition format version 0.0.4 (the plain-text format
//! every Prometheus scraper accepts): one `# TYPE` line per family,
//! `datareuse_`-prefixed sample names, and histograms as cumulative
//! `_bucket{le="…"}` series plus `_sum`/`_count`.
//!
//! The renderer iterates the snapshot's own vectors — which are built
//! from `Counter::ALL` / `Gauge::ALL` / `Hist::ALL` — so a newly added
//! enum variant shows up in the scrape automatically; the unit test
//! below (and a verify.sh gate) fail on any drift between the enums and
//! the exposition output.

use crate::metrics::MetricsSnapshot;

/// Renders `snap` as a Prometheus text-format scrape body.
///
/// Counters become `datareuse_<name>` with `# TYPE … counter`, gauges
/// likewise as `gauge`, and each latency histogram becomes a
/// `# TYPE … histogram` family with cumulative `_bucket{le="…"}` rows
/// (one per non-empty bucket, plus the mandatory `le="+Inf"`), `_sum`,
/// and `_count`. Bucket bounds are nanoseconds, matching the `_ns`
/// suffix in the metric names.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for &(name, value) in &snap.counters {
        out.push_str(&format!(
            "# TYPE datareuse_{name} counter\ndatareuse_{name} {value}\n"
        ));
    }
    for &(name, value) in &snap.gauges {
        out.push_str(&format!(
            "# TYPE datareuse_{name} gauge\ndatareuse_{name} {value}\n"
        ));
    }
    for (name, hist) in &snap.hists {
        out.push_str(&format!("# TYPE datareuse_{name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &count) in hist.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            let bound = crate::hist::Histogram::bucket_bound(i);
            out.push_str(&format!(
                "datareuse_{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "datareuse_{name}_bucket{{le=\"+Inf\"}} {count}\n",
            count = hist.count
        ));
        out.push_str(&format!("datareuse_{name}_sum {sum}\n", sum = hist.sum));
        out.push_str(&format!(
            "datareuse_{name}_count {count}\n",
            count = hist.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Hist;
    use crate::metrics::test_lock;
    use crate::{Counter, Gauge};

    /// The drift gate: every Counter/Gauge/Hist variant must appear in
    /// the scrape, and histograms must expose bucket series.
    #[test]
    fn scrape_covers_every_registered_metric() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        crate::set_metrics_enabled(true);
        crate::add(Counter::ServeRequests, 2);
        crate::record_hist(Hist::ServeLatencyCold, 1_000);
        crate::record_hist(Hist::ServeLatencyCold, 2_000_000);
        let snap = crate::snapshot();
        crate::reset_metrics();

        let text = prometheus_text(&snap);
        for counter in Counter::ALL {
            // Every sample row follows its `# TYPE` line's newline.
            assert!(
                text.contains(&format!("\ndatareuse_{} ", counter.name())),
                "missing counter {} in scrape",
                counter.name()
            );
        }
        for gauge in Gauge::ALL {
            assert!(
                text.contains(&format!("\ndatareuse_{} ", gauge.name())),
                "missing gauge {} in scrape",
                gauge.name()
            );
        }
        for hist in Hist::ALL {
            assert!(
                text.contains(&format!("# TYPE datareuse_{} histogram", hist.name())),
                "missing histogram {} in scrape",
                hist.name()
            );
            assert!(
                text.contains(&format!("datareuse_{}_bucket{{le=\"+Inf\"}}", hist.name())),
                "missing +Inf bucket for {}",
                hist.name()
            );
        }
        assert!(text.contains("datareuse_serve_requests 2\n"));
        // Two recorded values -> two non-empty buckets, cumulative.
        assert!(text.contains("datareuse_serve_latency_cold_ns_count 2\n"));
        let inf = "datareuse_serve_latency_cold_ns_bucket{le=\"+Inf\"} 2";
        assert!(text.contains(inf));
    }

    #[test]
    fn bucket_rows_are_cumulative_and_bounded_by_count() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        crate::set_metrics_enabled(true);
        for v in [10u64, 10, 500, 70_000] {
            crate::record_hist(Hist::ExploreChunk, v);
        }
        let snap = crate::snapshot();
        crate::reset_metrics();
        let text = prometheus_text(&snap);
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("datareuse_explore_chunk_ns_bucket{le=\"") {
                let value: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(value >= last, "bucket rows must be cumulative: {line}");
                assert!(value <= 4);
                last = value;
            }
        }
        assert_eq!(last, 4, "final bucket (+Inf) must equal total count");
    }
}
