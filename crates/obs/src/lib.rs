//! Zero-dependency observability for the data-reuse exploration pipeline.
//!
//! The DATE 2002 flow this workspace reproduces is an *exploration*: the
//! eq. 12–22 cost parameters are evaluated over thousands of copy-candidate
//! chains, and the trace simulators replay millions of accesses. This crate
//! makes that work visible without adding any crates.io dependency:
//!
//! - **Counters and gauges** ([`Counter`], [`Gauge`], [`add`],
//!   [`gauge_max`]) — fixed-enum atomic counts of pipeline events:
//!   candidates generated and pruned, chains enumerated and costed, Pareto
//!   points kept, Belady evictions, stack-distance samples, working-set
//!   windows, parallel-sweep items.
//! - **Spans** ([`span`]) — RAII guards that charge wall time *and*
//!   bytes allocated in scope to a `/`-joined hierarchical path
//!   (`explore/pairs`, `explore/chains`).
//! - **Allocation tracking** ([`alloc_snapshot`], [`thread_alloc_bytes`],
//!   [`AllocSnapshot`]) — a `#[global_allocator]` wrapper over `System`
//!   with sharded atomic tallies (alloc/dealloc/realloc counts, bytes
//!   allocated/freed, live bytes, high-water peak) and a per-thread
//!   cumulative counter the span layer samples for per-phase
//!   attribution; surfaced as the `alloc_*` gauges and the
//!   `datareuse-memprofile-v1` export.
//! - **Worker load** ([`record_worker_items`]) — items processed per
//!   `parallel_map` worker, for spotting a load-imbalanced sweep.
//! - **Latency histograms** ([`Hist`], [`record_hist`], [`Histogram`]) —
//!   atomic log-bucketed (power-of-√2) histograms with p50/p90/p99/p999
//!   extraction, recorded on the serving path (cold vs cache-hit
//!   separately), pool queue wait, explore chunks, and trace-simulator
//!   runs; mergeable across threads.
//! - **Request tracing** ([`TraceCtx`], [`trace_span`],
//!   [`chrome_trace_json`]) — 64-bit trace ids propagated explicitly
//!   across thread hops, spans exported as Chrome trace-event JSON
//!   (loadable in Perfetto).
//! - **Flight recorder** ([`flight_record`], [`flight_tail`]) — a
//!   lock-free ring buffer of the last [`FLIGHT_CAPACITY`] structured
//!   serving events, dumped on demand and attached to timeout/overload
//!   error responses.
//! - **Self-time profiler** ([`profile_rows`], [`collapsed_stacks`],
//!   [`profile_json`]) — derives per-phase cumulative/self-time
//!   attribution from the span registry and exports it as structured
//!   rows (`datareuse-profile-v1`) or flamegraph.pl-compatible
//!   collapsed-stack text; [`memprofile_json`] and
//!   [`collapsed_alloc_stacks`] export the same tree weighted by
//!   self-allocated bytes (`datareuse-memprofile-v1`).
//! - **Scorecard** ([`Scorecard`], [`fold_bench_artifacts`],
//!   [`Verdict`]) — folds committed benchmark artifacts plus a fresh
//!   smoke sweep into one `datareuse-scorecard-v1` roll-up with
//!   per-metric `better|within-noise|regressed` verdicts against a
//!   committed baseline.
//! - **Snapshots** ([`snapshot`], [`MetricsSnapshot`]) — serialize the
//!   registry to the workspace's hand-rolled [`Json`] as a
//!   `METRICS_*.json` artifact (schema `datareuse-metrics-v2`, embedding
//!   the histograms), or to Prometheus text format
//!   ([`prometheus_text`]).
//! - **Progress** ([`Progress`]) — a periodic stderr narrator for
//!   long-running CLI commands.
//!
//! The registry is **off by default** and every recording call starts with
//! one `Relaxed` atomic load, so instrumentation left in hot loops costs a
//! predictable branch when disabled — no allocation, no locking, no clock
//! reads. Hot per-access simulators batch locally via [`LocalCounter`].
//!
//! The `counters` section of a snapshot counts *work*, not time, and the
//! exploration's `parallel_map` is order-preserving, so counters are
//! deterministic for a given workload regardless of thread count; the
//! `spans`, `gauges`, and `load` sections carry the scheduling- and
//! clock-dependent data.
//!
//! # Example
//!
//! ```
//! use datareuse_obs::{add, set_metrics_enabled, reset_metrics, snapshot, span, Counter};
//!
//! reset_metrics();
//! set_metrics_enabled(true);
//! {
//!     let _timer = span("explore");
//!     add(Counter::ChainsEnumerated, 42);
//! }
//! set_metrics_enabled(false);
//!
//! let snap = snapshot();
//! assert_eq!(snap.counter(Counter::ChainsEnumerated), 42);
//! let json = snap.to_json().to_string();
//! assert!(json.starts_with("{\"schema\":\"datareuse-metrics-v2\""));
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

mod alloc;
mod explain;
mod flight;
mod hist;
mod json;
mod metrics;
mod profile;
mod progress;
mod prom;
mod scorecard;
mod span;
mod timeseries;
mod tracing;

pub use alloc::{alloc_snapshot, thread_alloc_bytes, AllocSnapshot, TrackingAllocator};
pub use explain::Explain;

pub use flight::{
    flight_record, flight_tail, flight_tail_json, FlightEvent, FlightKind, FLIGHT_CAPACITY,
    FLIGHT_ERROR_TAIL,
};
pub use hist::{hist_snapshot, record_hist, Hist, HistSnapshot, Histogram};
pub use json::{Json, JsonParseError};
pub use metrics::{
    add, counter_value, gauge_add, gauge_max, gauge_sub, gauge_value, metrics_enabled,
    record_worker_items, reset_metrics, set_metrics_enabled, snapshot, Counter, Gauge,
    LocalCounter, MetricsSnapshot,
};
pub use profile::{
    collapsed_alloc_stacks, collapsed_stacks, memprofile_json, profile_json, profile_rows,
    ProfileRow,
};
pub use progress::Progress;
pub use prom::prometheus_text;
pub use scorecard::{
    fold_bench_artifacts, record_smoke_metric, smoke_metrics, Direction, Metric, Scorecard,
    Verdict, NOISE_RATE, NOISE_SMOKE, NOISE_SPEEDUP, NOISE_TIMING, SCORECARD_SCHEMA,
};
pub use span::{span, SpanGuard};
pub use timeseries::{
    reset_series, scrape_series, series_json, series_len, series_ndjson, series_points,
    SeriesHist, SeriesPoint, SERIES_CAPACITY,
};
pub use tracing::{
    chrome_trace_json, record_span_at, set_tracing_enabled, take_trace_events, trace_now_ns,
    trace_span, trace_span_with, tracing_enabled, AttachGuard, TraceCtx, TraceEvent, TraceSpan,
    MAX_TRACE_EVENTS,
};
