//! The `datareuse-scorecard-v1` roll-up: one document that says whether
//! the system got faster or slower.
//!
//! The workspace commits per-group benchmark artifacts
//! (`benchmarks/BENCH_*.json`), but an artifact is only a pile of
//! numbers until something reads it back. A [`Scorecard`] folds every
//! committed artifact — plus a fresh in-process smoke sweep recorded
//! through [`record_smoke_metric`] — into a flat list of [`Metric`]s,
//! each carrying the measured value, a fractional noise band, and a
//! direction (whether lower or higher is better). Comparing a fresh
//! scorecard against a committed baseline
//! (`benchmarks/SCORECARD.json`) yields a [`Verdict`] per metric:
//! `better`, `within-noise`, or `regressed`. The CLI's `scorecard`
//! subcommand exits 7 when anything regresses, which is what turns
//! `scripts/verify.sh` into a no-regression gate.
//!
//! This module is the pure model: folding parsed artifact [`Json`],
//! verdict arithmetic, and (de)serialization. File I/O, the smoke
//! sweep itself, and exit codes live in the CLI. The smoke-sweep
//! registry here is process-global state like the rest of the crate,
//! and [`crate::reset_metrics`] clears it.

use std::sync::Mutex;

use crate::json::Json;

/// The scorecard document's schema tag.
pub const SCORECARD_SCHEMA: &str = "datareuse-scorecard-v1";

/// Noise band for committed latency/throughput metrics: the committed
/// BENCH artifacts are regenerated on maintainer machines with
/// different clocks and load, so a regression must beat 1.5x drift.
pub const NOISE_TIMING: f64 = 0.5;
/// Noise band for rates and ratios in `[0, 1]` (symbolic hit rate,
/// agreement): these are deterministic, so the band is a hair above
/// float formatting error.
pub const NOISE_RATE: f64 = 0.01;
/// Noise band for headline speedup ratios (symbolic vs simulation,
/// cold vs cache-hit): both sides are timing, so the band compounds.
pub const NOISE_SPEEDUP: f64 = 0.9;
/// Noise band for the fresh smoke sweep's absolute latencies: the
/// baseline was measured on a different machine entirely, so only a
/// multiple-of-baseline blowup counts as a regression.
pub const NOISE_SMOKE: f64 = 4.0;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (latencies).
    LowerIsBetter,
    /// Larger values are better (throughput, hit rates, speedups).
    HigherIsBetter,
}

impl Direction {
    /// Stable wire word: `lower` or `higher`.
    pub const fn word(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    /// Parses the wire word.
    pub fn from_word(word: &str) -> Option<Direction> {
        match word {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }
}

/// The outcome of comparing a metric against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Moved past the noise band in the good direction.
    Better,
    /// Inside the noise band either way.
    WithinNoise,
    /// Moved past the noise band in the bad direction.
    Regressed,
}

impl Verdict {
    /// Stable wire word: `better`, `within-noise`, or `regressed`.
    pub const fn word(self) -> &'static str {
        match self {
            Verdict::Better => "better",
            Verdict::WithinNoise => "within-noise",
            Verdict::Regressed => "regressed",
        }
    }

    /// Judges `value` against `baseline` with a fractional `noise` band.
    ///
    /// For a lower-is-better metric the band is
    /// `[baseline·(1−noise), baseline·(1+noise)]`: below it is better,
    /// inside is within-noise, above is regressed (mirrored for
    /// higher-is-better). A non-finite or non-positive baseline judges
    /// within-noise — there is nothing sane to compare against.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_obs::{Direction, Verdict};
    /// let lower = Direction::LowerIsBetter;
    /// assert_eq!(Verdict::judge(40.0, 100.0, 0.5, lower), Verdict::Better);
    /// assert_eq!(Verdict::judge(149.0, 100.0, 0.5, lower), Verdict::WithinNoise);
    /// assert_eq!(Verdict::judge(151.0, 100.0, 0.5, lower), Verdict::Regressed);
    /// let higher = Direction::HigherIsBetter;
    /// assert_eq!(Verdict::judge(40.0, 100.0, 0.5, higher), Verdict::Regressed);
    /// ```
    pub fn judge(value: f64, baseline: f64, noise: f64, direction: Direction) -> Verdict {
        if !baseline.is_finite() || baseline <= 0.0 || !value.is_finite() {
            return Verdict::WithinNoise;
        }
        let low = baseline * (1.0 - noise.max(0.0));
        let high = baseline * (1.0 + noise.max(0.0));
        match direction {
            Direction::LowerIsBetter if value < low => Verdict::Better,
            Direction::LowerIsBetter if value > high => Verdict::Regressed,
            Direction::HigherIsBetter if value > high => Verdict::Better,
            Direction::HigherIsBetter if value < low => Verdict::Regressed,
            _ => Verdict::WithinNoise,
        }
    }
}

/// One scorecard metric: an id, its measured value, and how to judge it.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric id, e.g. `suite_corpus_median_ns`.
    pub id: String,
    /// The measured value.
    pub value: f64,
    /// Fractional noise band for baseline comparison.
    pub noise: f64,
    /// Whether lower or higher is better.
    pub direction: Direction,
}

impl Metric {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, value: f64, noise: f64, direction: Direction) -> Metric {
        Metric {
            id: id.into(),
            value,
            noise,
            direction,
        }
    }
}

/// A full scorecard: the folded metrics, in a stable order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scorecard {
    /// The metrics, committed-artifact folds first, smoke sweep last.
    pub metrics: Vec<Metric>,
}

impl Scorecard {
    /// Looks up a metric by id.
    pub fn metric(&self, id: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.id == id)
    }

    /// Serializes as a plain `datareuse-scorecard-v1` document (no
    /// baseline/verdict annotations) — the shape committed as
    /// `benchmarks/SCORECARD.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCORECARD_SCHEMA)),
            (
                "metrics",
                Json::arr(self.metrics.iter().map(|m| {
                    Json::obj([
                        ("id", Json::str(&m.id)),
                        ("value", Json::Num(m.value)),
                        ("noise", Json::Num(m.noise)),
                        ("direction", Json::str(m.direction.word())),
                    ])
                })),
            ),
        ])
    }

    /// Parses a scorecard document (the plain form or the compared form
    /// — baseline/verdict annotations are ignored).
    ///
    /// # Errors
    ///
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<Scorecard, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(SCORECARD_SCHEMA) {
            return Err(format!("not a {SCORECARD_SCHEMA} document"));
        }
        let items = doc
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or("missing `metrics` array")?;
        let mut metrics = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .get("id")
                .and_then(Json::as_str)
                .ok_or("metric without `id`")?;
            let value = item
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{id}: missing `value`"))?;
            let noise = item
                .get("noise")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{id}: missing `noise`"))?;
            let direction = item
                .get("direction")
                .and_then(Json::as_str)
                .and_then(Direction::from_word)
                .ok_or_else(|| format!("{id}: bad `direction`"))?;
            metrics.push(Metric::new(id, value, noise, direction));
        }
        Ok(Scorecard { metrics })
    }

    /// Compares this scorecard against `baseline`, yielding
    /// `(metric, baseline value, verdict)` rows in metric order. A
    /// metric absent from the baseline has no verdict (it is new).
    pub fn compare<'a>(
        &'a self,
        baseline: &Scorecard,
    ) -> Vec<(&'a Metric, Option<f64>, Option<Verdict>)> {
        self.metrics
            .iter()
            .map(|m| match baseline.metric(&m.id) {
                Some(base) => (
                    m,
                    Some(base.value),
                    Some(Verdict::judge(m.value, base.value, m.noise, m.direction)),
                ),
                None => (m, None, None),
            })
            .collect()
    }

    /// Serializes the comparison against `baseline` as a
    /// `datareuse-scorecard-v1` document whose metrics carry `baseline`
    /// and `verdict` annotations, plus a `summary` tally. The result
    /// still parses with [`Scorecard::from_json`].
    pub fn compare_json(&self, baseline: &Scorecard) -> Json {
        let rows = self.compare(baseline);
        let mut better = 0u64;
        let mut within = 0u64;
        let mut regressed = 0u64;
        let metrics = rows
            .iter()
            .map(|(m, base, verdict)| {
                let mut fields = vec![
                    ("id".to_string(), Json::str(&m.id)),
                    ("value".to_string(), Json::Num(m.value)),
                    ("noise".to_string(), Json::Num(m.noise)),
                    ("direction".to_string(), Json::str(m.direction.word())),
                ];
                if let Some(base) = base {
                    fields.push(("baseline".to_string(), Json::Num(*base)));
                }
                if let Some(v) = verdict {
                    match v {
                        Verdict::Better => better += 1,
                        Verdict::WithinNoise => within += 1,
                        Verdict::Regressed => regressed += 1,
                    }
                    fields.push(("verdict".to_string(), Json::str(v.word())));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj([
            ("schema", Json::str(SCORECARD_SCHEMA)),
            ("metrics", Json::Arr(metrics)),
            (
                "summary",
                Json::obj([
                    ("metrics", Json::UInt(self.metrics.len() as u64)),
                    ("better", Json::UInt(better)),
                    ("within_noise", Json::UInt(within)),
                    ("regressed", Json::UInt(regressed)),
                ]),
            ),
        ])
    }

    /// Ids of the metrics that regressed against `baseline`.
    pub fn regressions(&self, baseline: &Scorecard) -> Vec<String> {
        self.compare(baseline)
            .into_iter()
            .filter(|(_, _, v)| *v == Some(Verdict::Regressed))
            .map(|(m, _, _)| m.id.clone())
            .collect()
    }
}

/// The median of a bench's `median_ns` values. Returns `None` when the
/// artifact has no finite medians.
fn suite_median(doc: &Json) -> Option<f64> {
    let mut medians: Vec<f64> = doc
        .get("benches")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|b| b.get("median_ns").and_then(Json::as_f64))
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if medians.is_empty() {
        return None;
    }
    medians.sort_by(f64::total_cmp);
    Some(medians[medians.len() / 2])
}

/// One bench's numeric field, by bench id.
fn bench_field(doc: &Json, id: &str, field: &str) -> Option<f64> {
    doc.get("benches")
        .and_then(Json::as_array)?
        .iter()
        .find(|b| b.get("id").and_then(Json::as_str) == Some(id))?
        .get(field)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
}

/// Folds committed bench artifacts — `(group, parsed document)` pairs —
/// into scorecard metrics:
///
/// - `suite_<group>_median_ns` per artifact: the median of the group's
///   per-bench medians (the one-number health of that suite);
/// - `serve_p50_ns` / `serve_p99_ns` from the `serve_latency` group's
///   cache-hit bench, and `serve_cache_speedup` (cold ÷ cache-hit);
/// - `serve_saturation_rps` from the `serve_scaling` saturation object;
/// - `corpus_symbolic_hit_rate` from the `corpus` symbolic summary;
/// - `symbolic_speedup_depth3` / `symbolic_speedup_me_small` from the
///   `symbolic_vs_simulation` group (simulation ÷ symbolic medians).
///
/// Groups are folded in sorted order, so the metric list is stable for
/// a given artifact set. Artifacts missing a field simply contribute no
/// metric — the comparison side treats absence as "new metric".
pub fn fold_bench_artifacts(artifacts: &[(String, Json)]) -> Vec<Metric> {
    let mut sorted: Vec<&(String, Json)> = artifacts.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    for (group, doc) in &sorted {
        if let Some(median) = suite_median(doc) {
            out.push(Metric::new(
                format!("suite_{group}_median_ns"),
                median,
                NOISE_TIMING,
                Direction::LowerIsBetter,
            ));
        }
    }
    let by_group = |name: &str| sorted.iter().find(|(g, _)| g == name).map(|(_, d)| d);
    if let Some(doc) = by_group("serve_latency") {
        if let Some(p50) = bench_field(doc, "explore_cache_hit", "p50_ns") {
            out.push(Metric::new(
                "serve_p50_ns",
                p50,
                NOISE_TIMING,
                Direction::LowerIsBetter,
            ));
        }
        if let Some(p99) = bench_field(doc, "explore_cache_hit", "p99_ns") {
            out.push(Metric::new(
                "serve_p99_ns",
                p99,
                NOISE_TIMING,
                Direction::LowerIsBetter,
            ));
        }
        if let (Some(cold), Some(hit)) = (
            bench_field(doc, "explore_cold", "median_ns"),
            bench_field(doc, "explore_cache_hit", "median_ns"),
        ) {
            out.push(Metric::new(
                "serve_cache_speedup",
                cold / hit,
                NOISE_SPEEDUP,
                Direction::HigherIsBetter,
            ));
        }
    }
    if let Some(rps) = by_group("serve_scaling")
        .and_then(|d| d.get("saturation"))
        .and_then(|s| s.get("rps"))
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
    {
        out.push(Metric::new(
            "serve_saturation_rps",
            rps,
            NOISE_TIMING,
            Direction::HigherIsBetter,
        ));
    }
    if let Some(rate) = by_group("corpus")
        .and_then(|d| d.get("symbolic"))
        .and_then(|s| s.get("hit_rate"))
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
    {
        out.push(Metric::new(
            "corpus_symbolic_hit_rate",
            rate,
            NOISE_RATE,
            Direction::HigherIsBetter,
        ));
    }
    if let Some(doc) = by_group("symbolic_vs_simulation") {
        for (metric, fast, slow) in [
            (
                "symbolic_speedup_depth3",
                "symbolic_profile_depth3",
                "simulate_one_point_depth3",
            ),
            (
                "symbolic_speedup_me_small",
                "symbolic_profile_me_small",
                "simulate_one_point_me_small",
            ),
        ] {
            if let (Some(f), Some(s)) = (
                bench_field(doc, fast, "median_ns"),
                bench_field(doc, slow, "median_ns"),
            ) {
                out.push(Metric::new(
                    metric,
                    s / f,
                    NOISE_SPEEDUP,
                    Direction::HigherIsBetter,
                ));
            }
        }
    }
    out
}

/// Metrics recorded by the current process's smoke sweep, in recording
/// order. Process-global like the counter registry; cleared by
/// [`crate::reset_metrics`].
static SMOKE: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

/// Appends one smoke-sweep metric to the process-global scorecard state.
///
/// The CLI's `scorecard` subcommand times a fresh explore sweep and
/// records its latencies, hit rate, and model-agreement here before
/// assembling the final document, so the smoke results survive in one
/// place whether the caller wants JSON, text, or a baseline update.
pub fn record_smoke_metric(metric: Metric) {
    SMOKE
        .lock()
        .expect("scorecard smoke registry poisoned")
        .push(metric);
}

/// Copies the recorded smoke-sweep metrics.
pub fn smoke_metrics() -> Vec<Metric> {
    SMOKE
        .lock()
        .expect("scorecard smoke registry poisoned")
        .clone()
}

/// Clears the smoke-sweep state (part of [`crate::reset_metrics`]).
pub(crate) fn reset_scorecard_smoke() {
    SMOKE
        .lock()
        .expect("scorecard smoke registry poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(group: &str, text: &str) -> (String, Json) {
        (group.to_string(), Json::parse(text).expect("test artifact"))
    }

    fn fixture() -> Vec<(String, Json)> {
        vec![
            artifact(
                "serve_latency",
                r#"{"group":"serve_latency","benches":[
                    {"id":"explore_cold","median_ns":200000,"p50_ns":200000,"p99_ns":400000},
                    {"id":"explore_cache_hit","median_ns":10000,"p50_ns":10000,"p99_ns":50000}]}"#,
            ),
            artifact(
                "corpus",
                r#"{"group":"corpus","benches":[{"id":"gen-a","median_ns":5000}],
                    "symbolic":{"hits":36,"fallbacks":0,"hit_rate":1.0}}"#,
            ),
            artifact(
                "symbolic_vs_simulation",
                r#"{"group":"symbolic_vs_simulation","benches":[
                    {"id":"symbolic_profile_depth3","median_ns":2000},
                    {"id":"simulate_one_point_depth3","median_ns":6000000},
                    {"id":"symbolic_profile_me_small","median_ns":1000},
                    {"id":"simulate_one_point_me_small","median_ns":100000}]}"#,
            ),
            artifact(
                "serve_scaling",
                r#"{"group":"serve_scaling","benches":[{"id":"conns_00100","median_ns":9000}],
                    "saturation":{"connections":100,"rps":31500.0,"p99_ns":90000}}"#,
            ),
        ]
    }

    #[test]
    fn verdict_boundaries_both_directions() {
        use Direction::*;
        // Exactly on the band edge is within-noise, both sides.
        assert_eq!(
            Verdict::judge(150.0, 100.0, 0.5, LowerIsBetter),
            Verdict::WithinNoise
        );
        assert_eq!(
            Verdict::judge(50.0, 100.0, 0.5, LowerIsBetter),
            Verdict::WithinNoise
        );
        assert_eq!(
            Verdict::judge(150.1, 100.0, 0.5, LowerIsBetter),
            Verdict::Regressed
        );
        assert_eq!(
            Verdict::judge(49.9, 100.0, 0.5, LowerIsBetter),
            Verdict::Better
        );
        assert_eq!(
            Verdict::judge(150.1, 100.0, 0.5, HigherIsBetter),
            Verdict::Better
        );
        assert_eq!(
            Verdict::judge(49.9, 100.0, 0.5, HigherIsBetter),
            Verdict::Regressed
        );
        // Degenerate baselines never regress.
        assert_eq!(
            Verdict::judge(10.0, 0.0, 0.5, LowerIsBetter),
            Verdict::WithinNoise
        );
        assert_eq!(
            Verdict::judge(10.0, f64::NAN, 0.5, LowerIsBetter),
            Verdict::WithinNoise
        );
    }

    #[test]
    fn folding_extracts_suite_and_headline_metrics() {
        let metrics = fold_bench_artifacts(&fixture());
        let card = Scorecard { metrics };
        // One suite median per artifact, in sorted group order.
        assert_eq!(card.metrics[0].id, "suite_corpus_median_ns");
        // Even-length suites take the upper median (index len/2).
        assert_eq!(card.metric("suite_serve_latency_median_ns").unwrap().value, 200000.0);
        assert_eq!(card.metric("serve_p99_ns").unwrap().value, 50000.0);
        assert_eq!(card.metric("serve_cache_speedup").unwrap().value, 20.0);
        assert_eq!(card.metric("serve_saturation_rps").unwrap().value, 31500.0);
        assert_eq!(card.metric("corpus_symbolic_hit_rate").unwrap().value, 1.0);
        assert_eq!(card.metric("symbolic_speedup_depth3").unwrap().value, 3000.0);
        assert_eq!(card.metric("symbolic_speedup_me_small").unwrap().value, 100.0);
        assert_eq!(
            card.metric("corpus_symbolic_hit_rate").unwrap().direction,
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn scorecard_documents_round_trip() {
        let card = Scorecard {
            metrics: fold_bench_artifacts(&fixture()),
        };
        let doc = card.to_json();
        let back = Scorecard::from_json(&doc).expect("round trip");
        assert_eq!(card, back);
        // The compared form parses too (annotations are ignored).
        let compared = card.compare_json(&back);
        let reback = Scorecard::from_json(&compared).expect("compared form parses");
        assert_eq!(card, reback);
    }

    #[test]
    fn comparison_counts_verdicts_and_flags_regressions() {
        let baseline = Scorecard {
            metrics: fold_bench_artifacts(&fixture()),
        };
        let mut current = baseline.clone();
        // Blow the p99 past its 1.5x band and add a brand-new metric.
        current.metric("serve_p99_ns").unwrap();
        for m in &mut current.metrics {
            if m.id == "serve_p99_ns" {
                m.value *= 2.0;
            }
        }
        current
            .metrics
            .push(Metric::new("brand_new", 1.0, 0.1, Direction::LowerIsBetter));
        assert_eq!(current.regressions(&baseline), vec!["serve_p99_ns"]);
        let doc = current.compare_json(&baseline);
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("regressed").and_then(Json::as_u64), Some(1));
        // The new metric has no verdict and does not count anywhere.
        let total = summary.get("better").and_then(Json::as_u64).unwrap()
            + summary.get("within_noise").and_then(Json::as_u64).unwrap()
            + summary.get("regressed").and_then(Json::as_u64).unwrap();
        assert_eq!(total as usize, current.metrics.len() - 1);
    }

    #[test]
    fn smoke_state_records_and_resets() {
        let _guard = crate::metrics::test_lock::hold();
        crate::reset_metrics();
        record_smoke_metric(Metric::new(
            "smoke_explore_fir_ns",
            123.0,
            NOISE_SMOKE,
            Direction::LowerIsBetter,
        ));
        assert_eq!(smoke_metrics().len(), 1);
        crate::reset_metrics();
        assert!(smoke_metrics().is_empty());
    }

    #[test]
    fn malformed_documents_name_the_failure() {
        let missing = Json::parse(r#"{"schema":"datareuse-scorecard-v1"}"#).unwrap();
        assert!(Scorecard::from_json(&missing).unwrap_err().contains("metrics"));
        let wrong = Json::parse(r#"{"schema":"other","metrics":[]}"#).unwrap();
        assert!(Scorecard::from_json(&wrong).unwrap_err().contains("scorecard"));
        let bad_dir = Json::parse(
            r#"{"schema":"datareuse-scorecard-v1","metrics":[
                {"id":"x","value":1,"noise":0.1,"direction":"sideways"}]}"#,
        )
        .unwrap();
        assert!(Scorecard::from_json(&bad_dir).unwrap_err().contains("direction"));
    }
}
