//! Periodic stderr progress narration for long-running commands.
//!
//! [`Progress`] spawns a background thread that samples the live counter
//! registry every tick and prints a one-line status to stderr, so a
//! multi-minute exhaustive simulation shows signs of life. Dropping the
//! handle stops the thread and prints one final summary line — short runs
//! therefore always emit at least one line, which also makes the feature
//! testable from the CLI black-box tests.
//!
//! The narrator only *reads* the registry; the instrumented code's chunked
//! counter flushes (see [`crate::LocalCounter`]) are what keep the numbers
//! moving mid-simulation.

use std::io::Write as _;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::{counter_value, Counter};

/// The counters worth narrating, with short human labels.
const NARRATED: [(Counter, &str); 10] = [
    (Counter::ExploreCandidatesGenerated, "candidates"),
    (Counter::ChainsEvaluated, "chains"),
    (Counter::ParetoPointsKept, "pareto"),
    (Counter::BeladyAccesses, "belady-acc"),
    (Counter::StackDistSamples, "stackdist"),
    (Counter::WorkingSetWindows, "ws-windows"),
    (Counter::ServeRequests, "requests"),
    (Counter::ServeCacheHits, "cache-hits"),
    (Counter::ServeOverloaded, "overloaded"),
    (Counter::ServeTimeouts, "timeouts"),
];

fn status_line(elapsed: Duration) -> String {
    let mut line = format!("[datareuse {:6.1}s]", elapsed.as_secs_f64());
    for (counter, label) in NARRATED {
        let v = counter_value(counter);
        if v > 0 {
            line.push_str(&format!(" {label}={v}"));
        }
    }
    line
}

/// Handle for a running stderr progress narrator; stops on drop.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{Progress, set_metrics_enabled, reset_metrics};
/// reset_metrics();
/// set_metrics_enabled(true);
/// {
///     let _progress = Progress::start(std::time::Duration::from_millis(200));
///     // ... long-running work ...
/// } // final summary line printed here
/// set_metrics_enabled(false);
/// ```
#[derive(Debug)]
pub struct Progress {
    stop: mpsc::Sender<()>,
    worker: Option<JoinHandle<()>>,
}

impl Progress {
    /// Starts narrating to stderr every `tick`. Also enables metrics
    /// recording if it was off (the narrator is useless without it).
    pub fn start(tick: Duration) -> Self {
        crate::set_metrics_enabled(true);
        let (stop, stopped) = mpsc::channel();
        let started = Instant::now();
        let worker = std::thread::spawn(move || loop {
            match stopped.recv_timeout(tick) {
                Err(RecvTimeoutError::Timeout) => {
                    let _ = writeln!(std::io::stderr(), "{}", status_line(started.elapsed()));
                }
                // Stop requested or handle dropped: final summary line.
                Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                    let _ = writeln!(
                        std::io::stderr(),
                        "{} (done)",
                        status_line(started.elapsed())
                    );
                    break;
                }
            }
        });
        Self {
            stop,
            worker: Some(worker),
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_lock;
    use crate::{add, reset_metrics, set_metrics_enabled};

    #[test]
    fn status_line_includes_only_nonzero_counters() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        add(Counter::ChainsEvaluated, 9);
        let line = status_line(Duration::from_secs(2));
        set_metrics_enabled(false);
        assert!(line.contains("chains=9"), "line: {line}");
        assert!(!line.contains("belady-acc"), "line: {line}");
        reset_metrics();
    }

    #[test]
    fn progress_starts_and_stops_cleanly() {
        let _guard = test_lock::hold();
        reset_metrics();
        let progress = Progress::start(Duration::from_millis(5));
        assert!(crate::metrics_enabled());
        std::thread::sleep(Duration::from_millis(20));
        drop(progress); // must join without hanging
        reset_metrics();
    }
}
