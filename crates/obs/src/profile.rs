//! Span-derived self-time profiler.
//!
//! The span registry ([`crate::span`]) aggregates wall time by
//! `/`-joined hierarchical path (`explore/pairs`, `explore/chains`).
//! Those totals are *cumulative*: time spent in `explore/pairs` is also
//! inside `explore`. This module derives the classic profiler view from
//! them — per-path **self time** (cumulative minus the time attributed
//! to direct children) — and exports it in two shapes:
//!
//! - [`profile_rows`] / [`profile_json`]: structured rows (schema
//!   `datareuse-profile-v1`) for the `profile` serve op and for tests.
//! - [`collapsed_stacks`]: the collapsed-stack text format consumed by
//!   `flamegraph.pl` and compatible viewers — one line per path with
//!   positive self time, `a;b;c SELF_NS`.
//!
//! Self times partition cumulative time: for any span tree, the sum of
//! the self times of a root and all its descendants equals the root's
//! cumulative total, so summing every line of a collapsed-stack export
//! reconstructs total profiled wall time exactly. No extra accumulator
//! state lives here — the profile is a pure function of the span
//! registry, so [`crate::reset_metrics`] clearing the spans clears the
//! profile too.

use crate::json::Json;

/// One aggregated profile row: a span path with cumulative and self time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// `/`-joined span path, e.g. `explore/pairs`.
    pub path: String,
    /// Number of times a span completed at this path.
    pub calls: u64,
    /// Cumulative nanoseconds: all time with this path on the stack.
    pub total_ns: u64,
    /// Self nanoseconds: cumulative minus direct children's cumulative.
    pub self_ns: u64,
}

/// Derives profile rows from the live span registry, sorted by path.
///
/// Self time is `total_ns` minus the summed `total_ns` of *direct*
/// children (paths one `/` segment deeper). Clock jitter can make a
/// child's recorded total marginally exceed its parent's; self time
/// saturates at zero rather than going negative.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{profile_rows, reset_metrics, set_metrics_enabled, span};
/// reset_metrics();
/// set_metrics_enabled(true);
/// {
///     let _outer = span("outer");
///     let _inner = span("inner");
/// }
/// set_metrics_enabled(false);
/// let rows = profile_rows();
/// assert_eq!(rows.len(), 2);
/// let outer = &rows[0];
/// let inner = &rows[1];
/// assert_eq!(outer.path, "outer");
/// assert_eq!(inner.path, "outer/inner");
/// assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
/// assert_eq!(inner.self_ns, inner.total_ns);
/// reset_metrics();
/// ```
pub fn profile_rows() -> Vec<ProfileRow> {
    rows_from(&crate::span::span_rows())
}

/// Pure core of [`profile_rows`]: derives rows from `(path, calls,
/// total_ns)` tuples. Input order does not matter; output is sorted by
/// path.
fn rows_from(spans: &[(String, u64, u64)]) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = spans
        .iter()
        .map(|(path, calls, total_ns)| ProfileRow {
            path: path.clone(),
            calls: *calls,
            total_ns: *total_ns,
            self_ns: *total_ns,
        })
        .collect();
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    // Subtract each direct child's cumulative time from its parent's
    // self time. A direct child of `p` is `p/<segment>` with no further
    // separator.
    let totals: Vec<(String, u64)> = rows
        .iter()
        .map(|r| (r.path.clone(), r.total_ns))
        .collect();
    for row in &mut rows {
        let prefix = format!("{}/", row.path);
        let children: u64 = totals
            .iter()
            .filter(|(p, _)| {
                p.strip_prefix(&prefix)
                    .is_some_and(|rest| !rest.contains('/'))
            })
            .map(|&(_, ns)| ns)
            .sum();
        row.self_ns = row.total_ns.saturating_sub(children);
    }
    rows
}

/// Renders the profile in collapsed-stack format: one `a;b;c SELF_NS`
/// line per path with positive self time, sorted by path, ending in a
/// newline when non-empty. The output feeds `flamegraph.pl` directly
/// (sample unit: nanoseconds).
///
/// Because self times partition cumulative time, the values on all
/// emitted lines sum to the total profiled wall time (the sum of the
/// root spans' cumulative totals).
pub fn collapsed_stacks() -> String {
    let mut out = String::new();
    for row in profile_rows() {
        if row.self_ns == 0 {
            continue;
        }
        out.push_str(&row.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&row.self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Serializes the profile as a `datareuse-profile-v1` document:
/// `{"schema":"datareuse-profile-v1","rows":[{path,calls,total_ns,self_ns},…]}`.
///
/// Rows are sorted by path and every field is an unsigned integer, so
/// the document is canonical: re-parsing and re-serializing it is
/// byte-identical, which the `profile` serve op's round-trip test pins.
pub fn profile_json() -> Json {
    let rows = profile_rows()
        .into_iter()
        .map(|r| {
            Json::obj(vec![
                ("path", Json::str(&r.path)),
                ("calls", Json::UInt(r.calls)),
                ("total_ns", Json::UInt(r.total_ns)),
                ("self_ns", Json::UInt(r.self_ns)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str("datareuse-profile-v1")),
        ("rows", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed() -> Vec<(String, u64, u64)> {
        vec![
            ("explore".into(), 2, 1_000),
            ("explore/pairs".into(), 2, 300),
            ("explore/chains".into(), 2, 500),
            ("explore/chains/pareto".into(), 4, 200),
            ("serve".into(), 1, 50),
        ]
    }

    #[test]
    fn self_time_subtracts_only_direct_children() {
        let rows = rows_from(&fixed());
        let by_path: std::collections::HashMap<&str, u64> = rows
            .iter()
            .map(|r| (r.path.as_str(), r.self_ns))
            .collect();
        assert_eq!(by_path["explore"], 1_000 - 300 - 500);
        assert_eq!(by_path["explore/chains"], 500 - 200);
        assert_eq!(by_path["explore/chains/pareto"], 200);
        assert_eq!(by_path["explore/pairs"], 300);
        assert_eq!(by_path["serve"], 50);
    }

    #[test]
    fn self_times_partition_root_totals() {
        let rows = rows_from(&fixed());
        let self_sum: u64 = rows.iter().map(|r| r.self_ns).sum();
        let root_sum: u64 = rows
            .iter()
            .filter(|r| !r.path.contains('/'))
            .map(|r| r.total_ns)
            .sum();
        assert_eq!(self_sum, root_sum);
    }

    #[test]
    fn sibling_prefixes_are_not_mistaken_for_children() {
        // `explore2` shares a string prefix with `explore` but is not
        // its child; `a/bc` is not a child of `a/b`.
        let rows = rows_from(&[
            ("explore".into(), 1, 100),
            ("explore2".into(), 1, 40),
            ("a/b".into(), 1, 30),
            ("a/bc".into(), 1, 20),
            ("a".into(), 1, 60),
        ]);
        let by_path: std::collections::HashMap<&str, u64> = rows
            .iter()
            .map(|r| (r.path.as_str(), r.self_ns))
            .collect();
        assert_eq!(by_path["explore"], 100);
        assert_eq!(by_path["explore2"], 40);
        assert_eq!(by_path["a"], 60 - 30 - 20);
        assert_eq!(by_path["a/b"], 30);
        assert_eq!(by_path["a/bc"], 20);
    }

    #[test]
    fn grandchildren_do_not_double_subtract() {
        // Only `a/b` is subtracted from `a`; `a/b/c` charges to `a/b`.
        let rows = rows_from(&[
            ("a".into(), 1, 100),
            ("a/b".into(), 1, 80),
            ("a/b/c".into(), 1, 30),
        ]);
        assert_eq!(rows[0].self_ns, 20);
        assert_eq!(rows[1].self_ns, 50);
        assert_eq!(rows[2].self_ns, 30);
    }

    #[test]
    fn jitter_saturates_instead_of_underflowing() {
        let rows = rows_from(&[("a".into(), 1, 100), ("a/b".into(), 1, 120)]);
        assert_eq!(rows[0].self_ns, 0);
    }

    #[test]
    fn collapsed_format_replaces_separators_and_skips_zero_self() {
        use crate::metrics::test_lock;
        use crate::{reset_metrics, set_metrics_enabled, span};
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_metrics_enabled(false);
        let text = collapsed_stacks();
        for line in text.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("`stack VALUE` shape");
            assert!(!stack.contains('/'), "separator not collapsed: {line}");
            let v: u64 = value.parse().expect("numeric self time");
            assert!(v > 0, "zero-self line emitted: {line}");
        }
        assert!(text.lines().any(|l| l.starts_with("outer;inner ")));
        reset_metrics();
        assert!(collapsed_stacks().is_empty());
    }

    #[test]
    fn profile_json_is_canonical_under_reparse() {
        use crate::metrics::test_lock;
        use crate::{reset_metrics, set_metrics_enabled, span};
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_metrics_enabled(false);
        let text = profile_json().to_string();
        let reparsed = Json::parse(&text).expect("profile json parses");
        assert_eq!(text, reparsed.to_string());
        assert!(text.starts_with("{\"schema\":\"datareuse-profile-v1\""));
        reset_metrics();
    }
}
