//! Span-derived self-time and self-allocation profiler.
//!
//! The span registry ([`crate::span`]) aggregates wall time *and* bytes
//! allocated in scope by `/`-joined hierarchical path (`explore/pairs`,
//! `explore/chains`). Those totals are *cumulative*: time spent (and
//! bytes allocated) in `explore/pairs` are also inside `explore`. This
//! module derives the classic profiler view from them — per-path **self
//! time** and **self bytes** (cumulative minus the amount attributed to
//! direct children) — and exports it in three shapes:
//!
//! - [`profile_rows`] / [`profile_json`]: structured rows (schema
//!   `datareuse-profile-v1`, time columns only for byte-stability of the
//!   `profile` serve op) for tests and tooling.
//! - [`memprofile_json`]: the same tree with byte columns (schema
//!   `datareuse-memprofile-v1`), written by `--alloc-profile`.
//! - [`collapsed_stacks`] / [`collapsed_alloc_stacks`]: the
//!   collapsed-stack text format consumed by `flamegraph.pl` and
//!   compatible viewers — one line per path with positive self weight,
//!   `a;b;c SELF` (nanoseconds or bytes respectively).
//!
//! Self weights partition cumulative weights: for any span tree, the sum
//! of the self values of a root and all its descendants equals the
//! root's cumulative total — for nanoseconds and for bytes alike — so
//! summing every line of a collapsed export reconstructs the total
//! profiled wall time (or allocation) exactly. No extra accumulator
//! state lives here — the profile is a pure function of the span
//! registry, so [`crate::reset_metrics`] clearing the spans clears the
//! profile too.

use crate::json::Json;

/// One aggregated profile row: a span path with cumulative and self
/// weights for both wall time and allocated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// `/`-joined span path, e.g. `explore/pairs`.
    pub path: String,
    /// Number of times a span completed at this path.
    pub calls: u64,
    /// Cumulative nanoseconds: all time with this path on the stack.
    pub total_ns: u64,
    /// Self nanoseconds: cumulative minus direct children's cumulative.
    pub self_ns: u64,
    /// Cumulative bytes allocated with this path on the stack (by the
    /// opening thread).
    pub total_bytes: u64,
    /// Self bytes: cumulative minus direct children's cumulative.
    pub self_bytes: u64,
}

/// Derives profile rows from the live span registry, sorted by path.
///
/// Self time is `total_ns` minus the summed `total_ns` of *direct*
/// children (paths one `/` segment deeper), and self bytes likewise.
/// Clock jitter (or a guard dropped on a foreign thread) can make a
/// child's recorded total marginally exceed its parent's; self values
/// saturate at zero rather than going negative.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{profile_rows, reset_metrics, set_metrics_enabled, span};
/// reset_metrics();
/// set_metrics_enabled(true);
/// {
///     let _outer = span("outer");
///     let _inner = span("inner");
/// }
/// set_metrics_enabled(false);
/// let rows = profile_rows();
/// assert_eq!(rows.len(), 2);
/// let outer = &rows[0];
/// let inner = &rows[1];
/// assert_eq!(outer.path, "outer");
/// assert_eq!(inner.path, "outer/inner");
/// assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
/// assert_eq!(inner.self_ns, inner.total_ns);
/// reset_metrics();
/// ```
pub fn profile_rows() -> Vec<ProfileRow> {
    rows_from(&crate::span::span_rows())
}

/// Pure core of [`profile_rows`]: derives rows from `(path, calls,
/// total_ns, total_bytes)` tuples. Input order does not matter; output
/// is sorted by path.
fn rows_from(spans: &[(String, u64, u64, u64)]) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = spans
        .iter()
        .map(|(path, calls, total_ns, total_bytes)| ProfileRow {
            path: path.clone(),
            calls: *calls,
            total_ns: *total_ns,
            self_ns: *total_ns,
            total_bytes: *total_bytes,
            self_bytes: *total_bytes,
        })
        .collect();
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    // Subtract each direct child's cumulative weights from its parent's
    // self weights. A direct child of `p` is `p/<segment>` with no
    // further separator.
    let totals: Vec<(String, u64, u64)> = rows
        .iter()
        .map(|r| (r.path.clone(), r.total_ns, r.total_bytes))
        .collect();
    for row in &mut rows {
        let prefix = format!("{}/", row.path);
        let (mut child_ns, mut child_bytes) = (0u64, 0u64);
        for (p, ns, bytes) in &totals {
            if p.strip_prefix(&prefix)
                .is_some_and(|rest| !rest.contains('/'))
            {
                child_ns += ns;
                child_bytes += bytes;
            }
        }
        row.self_ns = row.total_ns.saturating_sub(child_ns);
        row.self_bytes = row.total_bytes.saturating_sub(child_bytes);
    }
    rows
}

/// Renders the profile in collapsed-stack format: one `a;b;c SELF_NS`
/// line per path with positive self time, sorted by path, ending in a
/// newline when non-empty. The output feeds `flamegraph.pl` directly
/// (sample unit: nanoseconds).
///
/// Because self times partition cumulative time, the values on all
/// emitted lines sum to the total profiled wall time (the sum of the
/// root spans' cumulative totals).
pub fn collapsed_stacks() -> String {
    collapsed(profile_rows(), |r| r.self_ns)
}

/// Renders the allocation profile in collapsed-stack format: one
/// `a;b;c SELF_BYTES` line per path with positive self-allocated bytes
/// (sample unit: bytes). The same partition identity holds: the emitted
/// values sum to the root spans' cumulative allocated bytes.
pub fn collapsed_alloc_stacks() -> String {
    collapsed(profile_rows(), |r| r.self_bytes)
}

fn collapsed(rows: Vec<ProfileRow>, weight: impl Fn(&ProfileRow) -> u64) -> String {
    let mut out = String::new();
    for row in rows {
        let w = weight(&row);
        if w == 0 {
            continue;
        }
        out.push_str(&row.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

/// Serializes the profile as a `datareuse-profile-v1` document:
/// `{"schema":"datareuse-profile-v1","rows":[{path,calls,total_ns,self_ns},…]}`.
///
/// Rows are sorted by path and every field is an unsigned integer, so
/// the document is canonical: re-parsing and re-serializing it is
/// byte-identical, which the `profile` serve op's round-trip test pins.
/// The byte columns deliberately stay out of this schema — they ship in
/// [`memprofile_json`] — so v1 consumers see the exact bytes they did
/// before allocation tracking existed.
pub fn profile_json() -> Json {
    let rows = profile_rows()
        .into_iter()
        .map(|r| {
            Json::obj(vec![
                ("path", Json::str(&r.path)),
                ("calls", Json::UInt(r.calls)),
                ("total_ns", Json::UInt(r.total_ns)),
                ("self_ns", Json::UInt(r.self_ns)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str("datareuse-profile-v1")),
        ("rows", Json::Arr(rows)),
    ])
}

/// Serializes the allocation profile as a `datareuse-memprofile-v1`
/// document:
/// `{"schema":"datareuse-memprofile-v1","rows":[{path,calls,total_bytes,self_bytes},…]}`.
///
/// Same canonical shape as [`profile_json`] — rows sorted by path, all
/// unsigned integers — with byte weights instead of nanoseconds. This is
/// what `--alloc-profile FILE` writes.
pub fn memprofile_json() -> Json {
    let rows = profile_rows()
        .into_iter()
        .map(|r| {
            Json::obj(vec![
                ("path", Json::str(&r.path)),
                ("calls", Json::UInt(r.calls)),
                ("total_bytes", Json::UInt(r.total_bytes)),
                ("self_bytes", Json::UInt(r.self_bytes)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str("datareuse-memprofile-v1")),
        ("rows", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed() -> Vec<(String, u64, u64, u64)> {
        vec![
            ("explore".into(), 2, 1_000, 10_000),
            ("explore/pairs".into(), 2, 300, 3_000),
            ("explore/chains".into(), 2, 500, 5_000),
            ("explore/chains/pareto".into(), 4, 200, 2_000),
            ("serve".into(), 1, 50, 500),
        ]
    }

    #[test]
    fn self_time_subtracts_only_direct_children() {
        let rows = rows_from(&fixed());
        let by_path: std::collections::HashMap<&str, u64> = rows
            .iter()
            .map(|r| (r.path.as_str(), r.self_ns))
            .collect();
        assert_eq!(by_path["explore"], 1_000 - 300 - 500);
        assert_eq!(by_path["explore/chains"], 500 - 200);
        assert_eq!(by_path["explore/chains/pareto"], 200);
        assert_eq!(by_path["explore/pairs"], 300);
        assert_eq!(by_path["serve"], 50);
    }

    #[test]
    fn self_bytes_subtract_only_direct_children() {
        let rows = rows_from(&fixed());
        let by_path: std::collections::HashMap<&str, u64> = rows
            .iter()
            .map(|r| (r.path.as_str(), r.self_bytes))
            .collect();
        assert_eq!(by_path["explore"], 10_000 - 3_000 - 5_000);
        assert_eq!(by_path["explore/chains"], 5_000 - 2_000);
        assert_eq!(by_path["explore/chains/pareto"], 2_000);
        assert_eq!(by_path["explore/pairs"], 3_000);
        assert_eq!(by_path["serve"], 500);
    }

    #[test]
    fn self_times_partition_root_totals() {
        let rows = rows_from(&fixed());
        let self_sum: u64 = rows.iter().map(|r| r.self_ns).sum();
        let root_sum: u64 = rows
            .iter()
            .filter(|r| !r.path.contains('/'))
            .map(|r| r.total_ns)
            .sum();
        assert_eq!(self_sum, root_sum);
    }

    #[test]
    fn self_bytes_partition_root_totals() {
        let rows = rows_from(&fixed());
        let self_sum: u64 = rows.iter().map(|r| r.self_bytes).sum();
        let root_sum: u64 = rows
            .iter()
            .filter(|r| !r.path.contains('/'))
            .map(|r| r.total_bytes)
            .sum();
        assert_eq!(self_sum, root_sum);
    }

    #[test]
    fn sibling_prefixes_are_not_mistaken_for_children() {
        // `explore2` shares a string prefix with `explore` but is not
        // its child; `a/bc` is not a child of `a/b`.
        let rows = rows_from(&[
            ("explore".into(), 1, 100, 100),
            ("explore2".into(), 1, 40, 40),
            ("a/b".into(), 1, 30, 30),
            ("a/bc".into(), 1, 20, 20),
            ("a".into(), 1, 60, 60),
        ]);
        let by_path: std::collections::HashMap<&str, (u64, u64)> = rows
            .iter()
            .map(|r| (r.path.as_str(), (r.self_ns, r.self_bytes)))
            .collect();
        assert_eq!(by_path["explore"], (100, 100));
        assert_eq!(by_path["explore2"], (40, 40));
        assert_eq!(by_path["a"], (60 - 30 - 20, 60 - 30 - 20));
        assert_eq!(by_path["a/b"], (30, 30));
        assert_eq!(by_path["a/bc"], (20, 20));
    }

    #[test]
    fn grandchildren_do_not_double_subtract() {
        // Only `a/b` is subtracted from `a`; `a/b/c` charges to `a/b`.
        let rows = rows_from(&[
            ("a".into(), 1, 100, 1_000),
            ("a/b".into(), 1, 80, 800),
            ("a/b/c".into(), 1, 30, 300),
        ]);
        assert_eq!(rows[0].self_ns, 20);
        assert_eq!(rows[1].self_ns, 50);
        assert_eq!(rows[2].self_ns, 30);
        assert_eq!(rows[0].self_bytes, 200);
        assert_eq!(rows[1].self_bytes, 500);
        assert_eq!(rows[2].self_bytes, 300);
    }

    #[test]
    fn jitter_saturates_instead_of_underflowing() {
        // Time: child clock total exceeds the parent's. Bytes: a guard
        // dropped on a foreign thread records more child bytes than its
        // parent saw. Both saturate per-column independently.
        let rows = rows_from(&[("a".into(), 1, 100, 500), ("a/b".into(), 1, 120, 700)]);
        assert_eq!(rows[0].self_ns, 0);
        assert_eq!(rows[0].self_bytes, 0);
    }

    #[test]
    fn collapsed_format_replaces_separators_and_skips_zero_self() {
        use crate::metrics::test_lock;
        use crate::{reset_metrics, set_metrics_enabled, span};
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_metrics_enabled(false);
        let text = collapsed_stacks();
        for line in text.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("`stack VALUE` shape");
            assert!(!stack.contains('/'), "separator not collapsed: {line}");
            let v: u64 = value.parse().expect("numeric self time");
            assert!(v > 0, "zero-self line emitted: {line}");
        }
        assert!(text.lines().any(|l| l.starts_with("outer;inner ")));
        reset_metrics();
        assert!(collapsed_stacks().is_empty());
    }

    #[test]
    fn collapsed_alloc_stacks_weighs_lines_by_self_bytes() {
        use crate::metrics::test_lock;
        use crate::{reset_metrics, set_metrics_enabled, span};
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                let _buf = vec![0u8; 1 << 20];
            }
        }
        set_metrics_enabled(false);
        let text = collapsed_alloc_stacks();
        let inner_line = text
            .lines()
            .find(|l| l.starts_with("outer;inner "))
            .expect("inner line present");
        let bytes: u64 = inner_line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(bytes >= 1 << 20, "inner self bytes below 1 MiB: {bytes}");
        // Partition identity on the live registry: self bytes across all
        // lines sum to the roots' cumulative bytes.
        let self_sum: u64 = profile_rows().iter().map(|r| r.self_bytes).sum();
        let root_sum: u64 = profile_rows()
            .iter()
            .filter(|r| !r.path.contains('/'))
            .map(|r| r.total_bytes)
            .sum();
        assert_eq!(self_sum, root_sum);
        reset_metrics();
        assert!(collapsed_alloc_stacks().is_empty());
    }

    #[test]
    fn profile_json_is_canonical_under_reparse() {
        use crate::metrics::test_lock;
        use crate::{reset_metrics, set_metrics_enabled, span};
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_metrics_enabled(false);
        let text = profile_json().to_string();
        let reparsed = Json::parse(&text).expect("profile json parses");
        assert_eq!(text, reparsed.to_string());
        assert!(text.starts_with("{\"schema\":\"datareuse-profile-v1\""));
        // v1 stays time-only: byte columns live in memprofile-v1.
        assert!(!text.contains("bytes"));
        reset_metrics();
    }

    #[test]
    fn memprofile_json_is_canonical_under_reparse() {
        use crate::metrics::test_lock;
        use crate::{reset_metrics, set_metrics_enabled, span};
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            let _buf = vec![0u8; 4096];
            let _inner = span("inner");
        }
        set_metrics_enabled(false);
        let text = memprofile_json().to_string();
        let reparsed = Json::parse(&text).expect("memprofile json parses");
        assert_eq!(text, reparsed.to_string());
        assert!(text.starts_with("{\"schema\":\"datareuse-memprofile-v1\""));
        assert!(text.contains("\"total_bytes\""));
        assert!(text.contains("\"self_bytes\""));
        reset_metrics();
    }
}
