//! A fixed-capacity metrics time-series ring (RRD-style).
//!
//! Prometheus-style pull scraping samples the registry every few
//! seconds; a burst that rises and falls *between* two scrapes is
//! invisible in the exported counters. This module keeps a bounded ring
//! of downsampled registry snapshots recorded by the server's own
//! scraper thread at a much shorter interval: counters are stored as
//! **deltas** since the previous scrape (so a point reads as "work done
//! in this window"), gauges as instantaneous levels, and each latency
//! histogram as the p50/p99 of the values recorded *within the window*.
//! When the ring is full the oldest point is dropped — memory stays
//! fixed no matter how long the server runs.
//!
//! Deltas are computed with `saturating_sub` against the last absolute
//! baseline, and [`reset_series`] (called from
//! [`crate::reset_metrics`]) clears both the ring and the baseline
//! under the same lock, so a scrape racing a registry reset can never
//! produce a negative (wrapped) delta — it degrades to a zero delta for
//! that window instead.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::hist::{hist_snapshot, Hist, HistSnapshot, Histogram};
use crate::json::Json;
use crate::metrics::{counter_value, gauge_value, Counter, Gauge};

/// Maximum number of points the ring retains; the oldest point is
/// evicted when a new scrape would exceed this.
pub const SERIES_CAPACITY: usize = 256;

/// One latency histogram's contribution to a series point: the activity
/// within the scrape window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesHist {
    /// Values recorded during the window (count delta).
    pub count: u64,
    /// Median of the window's values (0 when the window is empty).
    pub p50: u64,
    /// 99th percentile of the window's values (0 when empty).
    pub p99: u64,
}

/// One downsampled registry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Monotonic scrape sequence number (resets with [`reset_series`]).
    pub seq: u64,
    /// Wall-clock scrape time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Counter deltas since the previous scrape, in [`Counter::ALL`]
    /// order.
    pub counters: Vec<u64>,
    /// Instantaneous gauge levels, in [`Gauge::ALL`] order.
    pub gauges: Vec<u64>,
    /// Per-histogram window activity, in [`Hist::ALL`] order.
    pub hists: Vec<SeriesHist>,
}

impl SeriesPoint {
    /// Delta of one counter in this window.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Level of one gauge at scrape time.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize]
    }

    /// Window activity of one histogram.
    pub fn hist(&self, hist: Hist) -> &SeriesHist {
        &self.hists[hist as usize]
    }

    /// Serializes the point as one self-describing JSON object (the
    /// NDJSON record format of `serve --series-out`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("unix_ms", Json::UInt(self.unix_ms)),
            (
                "counters",
                Json::obj(
                    Counter::ALL
                        .iter()
                        .zip(&self.counters)
                        .map(|(c, &v)| (c.name(), Json::UInt(v))),
                ),
            ),
            (
                "gauges",
                Json::obj(
                    Gauge::ALL
                        .iter()
                        .zip(&self.gauges)
                        .map(|(g, &v)| (g.name(), Json::UInt(v))),
                ),
            ),
            (
                "hists",
                Json::obj(Hist::ALL.iter().zip(&self.hists).map(|(h, sh)| {
                    (
                        h.name(),
                        Json::obj([
                            ("count", Json::UInt(sh.count)),
                            ("p50", Json::UInt(sh.p50)),
                            ("p99", Json::UInt(sh.p99)),
                        ]),
                    )
                })),
            ),
        ])
    }
}

/// Baseline absolute values the next scrape diffs against, plus the ring
/// itself. One lock guards both so reset and scrape are atomic relative
/// to each other.
struct SeriesState {
    seq: u64,
    counters: [u64; Counter::ALL.len()],
    hists: Vec<HistSnapshot>,
    ring: VecDeque<SeriesPoint>,
}

impl SeriesState {
    const fn new() -> Self {
        Self {
            seq: 0,
            counters: [0; Counter::ALL.len()],
            hists: Vec::new(),
            ring: VecDeque::new(),
        }
    }
}

static SERIES: Mutex<SeriesState> = Mutex::new(SeriesState::new());

fn empty_hist_snapshot() -> HistSnapshot {
    Histogram::new().snapshot()
}

/// The p50/p99 of the values recorded between `prev` and `cur`:
/// bucket-wise count difference, percentiles extracted from the
/// difference histogram. Bounds are bucket upper bounds clamped to the
/// cumulative max (the window max is not tracked separately).
fn window_hist(prev: &HistSnapshot, cur: &HistSnapshot) -> SeriesHist {
    let mut counts = [0u64; Histogram::BUCKETS];
    for ((out, &c), &p) in counts.iter_mut().zip(&cur.counts).zip(&prev.counts) {
        *out = c.saturating_sub(p);
    }
    let window = HistSnapshot {
        counts,
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.wrapping_sub(prev.sum),
        min: cur.min,
        max: cur.max,
    };
    SeriesHist {
        count: window.count,
        p50: window.p50(),
        p99: window.p99(),
    }
}

/// Reads the registry, records one [`SeriesPoint`] into the ring, and
/// returns it. Unlike the hot-path recorders this is *not* gated on
/// [`crate::metrics_enabled`] — the caller (the serve scraper thread or
/// a test) decides when to sample.
pub fn scrape_series() -> SeriesPoint {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let cur_counters: Vec<u64> = Counter::ALL.iter().map(|&c| counter_value(c)).collect();
    let cur_hists: Vec<HistSnapshot> = Hist::ALL.iter().map(|&h| hist_snapshot(h)).collect();
    let gauges: Vec<u64> = Gauge::ALL.iter().map(|&g| gauge_value(g)).collect();

    let mut state = SERIES.lock().expect("series ring poisoned");
    if state.hists.is_empty() {
        state.hists = vec![empty_hist_snapshot(); Hist::ALL.len()];
    }
    let counters: Vec<u64> = cur_counters
        .iter()
        .zip(&state.counters)
        .map(|(&cur, &prev)| cur.saturating_sub(prev))
        .collect();
    let hists: Vec<SeriesHist> = cur_hists
        .iter()
        .zip(&state.hists)
        .map(|(cur, prev)| window_hist(prev, cur))
        .collect();
    let point = SeriesPoint {
        seq: state.seq,
        unix_ms,
        counters,
        gauges,
        hists,
    };
    state.seq += 1;
    state.counters.copy_from_slice(&cur_counters);
    state.hists = cur_hists;
    if state.ring.len() >= SERIES_CAPACITY {
        state.ring.pop_front();
    }
    state.ring.push_back(point.clone());
    point
}

/// A copy of the ring, oldest point first.
pub fn series_points() -> Vec<SeriesPoint> {
    SERIES
        .lock()
        .expect("series ring poisoned")
        .ring
        .iter()
        .cloned()
        .collect()
}

/// Number of points currently retained.
pub fn series_len() -> usize {
    SERIES.lock().expect("series ring poisoned").ring.len()
}

/// Serializes the ring as one JSON document (the `series` section of a
/// `stats {"series":true}` response).
pub fn series_json() -> Json {
    Json::obj([
        ("schema", Json::str("datareuse-series-v1")),
        ("capacity", Json::UInt(SERIES_CAPACITY as u64)),
        (
            "points",
            Json::arr(series_points().iter().map(SeriesPoint::to_json)),
        ),
    ])
}

/// Serializes the ring as NDJSON, one point per line (the
/// `serve --series-out` dump format).
pub fn series_ndjson() -> String {
    let mut out = String::new();
    for p in series_points() {
        out.push_str(&p.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Clears the ring, the delta baseline, and the sequence counter under
/// one lock. Called from [`crate::reset_metrics`] so counters and the
/// series reset together — a scrape landing right after a reset sees a
/// zero baseline, never a stale one that would make deltas go
/// "negative" (clamped to zero by `saturating_sub` regardless).
pub fn reset_series() {
    let mut state = SERIES.lock().expect("series ring poisoned");
    *state = SeriesState::new();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_lock;
    use crate::{add, record_hist, reset_metrics, set_metrics_enabled};

    #[test]
    fn scrapes_record_deltas_not_absolutes() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        add(Counter::ServeRequests, 5);
        let p0 = scrape_series();
        assert_eq!(p0.seq, 0);
        assert_eq!(p0.counter(Counter::ServeRequests), 5);
        add(Counter::ServeRequests, 2);
        let p1 = scrape_series();
        assert_eq!(p1.seq, 1);
        assert_eq!(p1.counter(Counter::ServeRequests), 2);
        // Quiet window: delta is zero even though the absolute is 7.
        let p2 = scrape_series();
        assert_eq!(p2.counter(Counter::ServeRequests), 0);
        assert_eq!(series_len(), 3);
        set_metrics_enabled(false);
        reset_metrics();
        assert_eq!(series_len(), 0);
    }

    #[test]
    fn hist_points_reflect_only_the_window() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        record_hist(Hist::ServeLatencyCold, 1_000);
        scrape_series();
        // Second window records much slower requests; its p50 must
        // reflect the new values, not the cumulative distribution.
        for _ in 0..10 {
            record_hist(Hist::ServeLatencyCold, 1_000_000);
        }
        let p = scrape_series();
        let h = p.hist(Hist::ServeLatencyCold);
        assert_eq!(h.count, 10);
        assert!(h.p50 >= 1_000_000, "window p50 {} pulled down", h.p50);
        set_metrics_enabled(false);
        reset_metrics();
    }

    #[test]
    fn reset_between_scrapes_cannot_go_negative() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        add(Counter::ServeRequests, 100);
        record_hist(Hist::ServeLatencyCold, 50);
        scrape_series();
        // Counters drop to zero but the series baseline is cleared with
        // them, so the next scrape starts a fresh sequence at delta 0
        // instead of wrapping 0 - 100.
        reset_metrics();
        set_metrics_enabled(true);
        let p = scrape_series();
        assert_eq!(p.seq, 0, "reset must restart the sequence");
        assert_eq!(p.counter(Counter::ServeRequests), 0);
        assert_eq!(p.hist(Hist::ServeLatencyCold).count, 0);
        assert_eq!(series_len(), 1);
        set_metrics_enabled(false);
        reset_metrics();
    }

    #[test]
    fn wraparound_keeps_newest_points_and_conserves_deltas() {
        use datareuse_proptest::{check, prop_assert_eq, Config};
        let _guard = test_lock::hold();
        // Property: after N > SERIES_CAPACITY scrapes the ring holds
        // exactly the newest 256 points with contiguous sequence
        // numbers, each point's delta matches the work done in its
        // window, and retained + evicted deltas recompose the absolute
        // counter — eviction loses history, never accounting.
        check(
            "series_wraparound_conserves_deltas",
            &Config::with_cases(6),
            |rng| {
                rng.vec(SERIES_CAPACITY + 1, SERIES_CAPACITY + 32, |r| {
                    r.u64_in(0, 1_000)
                })
            },
            |increments| {
                reset_metrics();
                set_metrics_enabled(true);
                let mut total = 0u64;
                for &n in increments {
                    add(Counter::ServeRequests, n);
                    total += n;
                    scrape_series();
                }
                set_metrics_enabled(false);
                let points = series_points();
                prop_assert_eq!(points.len(), SERIES_CAPACITY);
                let first = increments.len() - SERIES_CAPACITY;
                for (i, p) in points.iter().enumerate() {
                    prop_assert_eq!(p.seq, (first + i) as u64);
                    prop_assert_eq!(
                        p.counter(Counter::ServeRequests),
                        increments[first + i],
                        "window {} delta",
                        first + i
                    );
                }
                let evicted: u64 = increments[..first].iter().sum();
                let kept: u64 = points
                    .iter()
                    .map(|p| p.counter(Counter::ServeRequests))
                    .sum();
                prop_assert_eq!(kept + evicted, total);
                reset_metrics();
                Ok(())
            },
        );
    }

    #[test]
    fn window_hists_recompose_the_cumulative_count() {
        use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config};
        let _guard = test_lock::hold();
        // Property: each point's window histogram counts exactly the
        // values recorded in that window (the bucket-difference merge is
        // lossless), window percentiles stay ordered, and the windows
        // sum back to the cumulative histogram count.
        check(
            "series_window_hists_recompose",
            &Config::with_cases(16),
            |rng| {
                rng.vec(1, 8, |r| {
                    r.vec(0, 12, |v| v.u64_in(1, 10_000_000))
                })
            },
            |windows| {
                reset_metrics();
                set_metrics_enabled(true);
                let mut per_window = Vec::new();
                for batch in windows {
                    for &v in batch {
                        record_hist(Hist::ServeQueueWait, v);
                    }
                    per_window.push(scrape_series());
                }
                set_metrics_enabled(false);
                let mut windowed = 0u64;
                for (point, batch) in per_window.iter().zip(windows) {
                    let h = point.hist(Hist::ServeQueueWait);
                    prop_assert_eq!(h.count, batch.len() as u64);
                    prop_assert!(h.p50 <= h.p99, "window p50 {} > p99 {}", h.p50, h.p99);
                    windowed += h.count;
                }
                prop_assert_eq!(windowed, hist_snapshot(Hist::ServeQueueWait).count);
                reset_metrics();
                Ok(())
            },
        );
    }

    #[test]
    fn ring_is_bounded_and_json_parses() {
        let _guard = test_lock::hold();
        reset_metrics();
        for _ in 0..(SERIES_CAPACITY + 10) {
            scrape_series();
        }
        assert_eq!(series_len(), SERIES_CAPACITY);
        let points = series_points();
        // Oldest points were evicted: the ring starts at seq 10.
        assert_eq!(points[0].seq, 10);
        assert_eq!(points.last().unwrap().seq, (SERIES_CAPACITY + 9) as u64);

        let doc = series_json().to_string();
        let parsed = Json::parse(&doc).expect("series JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("datareuse-series-v1")
        );
        assert_eq!(
            parsed.get("points").and_then(Json::as_array).unwrap().len(),
            SERIES_CAPACITY
        );
        let ndjson = series_ndjson();
        assert_eq!(ndjson.lines().count(), SERIES_CAPACITY);
        for line in ndjson.lines() {
            Json::parse(line).expect("each NDJSON line parses");
        }
        reset_metrics();
    }
}
