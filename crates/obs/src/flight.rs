//! Flight recorder: a fixed-size lock-free ring buffer of the most
//! recent structured events on the serving path.
//!
//! Counters tell you *how many* requests timed out; the flight recorder
//! tells you *what happened just before* one did. Every noteworthy
//! moment (request start/end, cache hit/miss, queue rejection, deadline
//! expiry) appends a small packed record; readers take the tail on
//! demand (`stats {"flight": true}`) and error envelopes for
//! `timeout`/`overloaded` attach the last ~32 events automatically.
//!
//! The buffer is an array of atomics written with a single
//! `fetch_add`-claimed cursor, so writers never block each other or any
//! reader. The price is that a reader racing a writer can observe a
//! *torn* record (slot fields from two different writes). That is
//! acceptable here — the recorder is a diagnostic aid, not an audit
//! log — and torn reads are bounded to the records still being written
//! while the tail is taken.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;
use crate::tracing::trace_now_ns;

/// Number of events retained; older events are overwritten.
pub const FLIGHT_CAPACITY: usize = 4096;

/// How many trailing events error envelopes attach.
pub const FLIGHT_ERROR_TAIL: usize = 32;

/// What happened. Packed into the top byte of a slot word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A request was accepted for processing; detail = op tag.
    RequestStart = 1,
    /// A request completed (ok or err); detail = duration in µs.
    RequestEnd = 2,
    /// The result cache served a hit; detail = cache key.
    CacheHit = 3,
    /// The result cache missed; detail = cache key.
    CacheMiss = 4,
    /// The worker pool refused a job; detail = queue length at refusal.
    QueueReject = 5,
    /// A request's deadline expired; detail = deadline in ms.
    DeadlineExpiry = 6,
    /// A request coalesced onto an identical in-flight computation
    /// (singleflight follower); detail = cache key.
    Coalesced = 7,
}

impl FlightKind {
    /// Stable lowercase tag used in JSON output.
    pub const fn name(self) -> &'static str {
        match self {
            FlightKind::RequestStart => "request_start",
            FlightKind::RequestEnd => "request_end",
            FlightKind::CacheHit => "cache_hit",
            FlightKind::CacheMiss => "cache_miss",
            FlightKind::QueueReject => "queue_reject",
            FlightKind::DeadlineExpiry => "deadline_expiry",
            FlightKind::Coalesced => "coalesced",
        }
    }

    fn from_u8(byte: u8) -> Option<FlightKind> {
        Some(match byte {
            1 => FlightKind::RequestStart,
            2 => FlightKind::RequestEnd,
            3 => FlightKind::CacheHit,
            4 => FlightKind::CacheMiss,
            5 => FlightKind::QueueReject,
            6 => FlightKind::DeadlineExpiry,
            7 => FlightKind::Coalesced,
            _ => return None,
        })
    }
}

/// Words per event: packed kind+timestamp, trace id, detail.
const WORDS: usize = 3;
const TS_MASK: u64 = (1 << 56) - 1;

static CURSOR: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
static SLOTS: [AtomicU64; FLIGHT_CAPACITY * WORDS] = {
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; FLIGHT_CAPACITY * WORDS]
};

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the process trace epoch (low 56 bits).
    pub ts_us: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Trace id of the request this event belongs to (0 = none).
    pub trace_id: u64,
    /// Kind-specific payload (op tag hash / duration / key / depth).
    pub detail: u64,
}

impl FlightEvent {
    /// Renders the event as a small JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ts_us", Json::UInt(self.ts_us)),
            ("event", Json::str(self.kind.name())),
            ("trace", Json::str(format!("{:016x}", self.trace_id))),
            ("detail", Json::UInt(self.detail)),
        ])
    }
}

/// Appends an event to the ring. Gated on the metrics registry flag;
/// never blocks.
pub fn flight_record(kind: FlightKind, trace_id: u64, detail: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    let ts_us = (trace_now_ns() / 1_000) & TS_MASK;
    let packed = ((kind as u64) << 56) | ts_us;
    let seq = CURSOR.fetch_add(1, Ordering::Relaxed);
    let base = (seq as usize % FLIGHT_CAPACITY) * WORDS;
    SLOTS[base].store(packed, Ordering::Relaxed);
    SLOTS[base + 1].store(trace_id, Ordering::Relaxed);
    SLOTS[base + 2].store(detail, Ordering::Relaxed);
}

/// Returns up to `last` most recent events, oldest first. Events still
/// being written concurrently may decode torn or not at all; such slots
/// are skipped.
pub fn flight_tail(last: usize) -> Vec<FlightEvent> {
    let cursor = CURSOR.load(Ordering::Relaxed);
    let available = cursor.min(FLIGHT_CAPACITY as u64) as usize;
    let take = last.min(available);
    let mut out = Vec::with_capacity(take);
    for back in (1..=take).rev() {
        let seq = cursor - back as u64;
        let base = (seq as usize % FLIGHT_CAPACITY) * WORDS;
        let packed = SLOTS[base].load(Ordering::Relaxed);
        let Some(kind) = FlightKind::from_u8((packed >> 56) as u8) else {
            continue;
        };
        out.push(FlightEvent {
            ts_us: packed & TS_MASK,
            kind,
            trace_id: SLOTS[base + 1].load(Ordering::Relaxed),
            detail: SLOTS[base + 2].load(Ordering::Relaxed),
        });
    }
    out
}

/// Renders the last `last` events as a JSON array, oldest first.
pub fn flight_tail_json(last: usize) -> Json {
    Json::arr(flight_tail(last).iter().map(FlightEvent::to_json))
}

/// Clears the recorder (zeroes the cursor and all slots).
pub(crate) fn reset_flight() {
    CURSOR.store(0, Ordering::Relaxed);
    for slot in SLOTS.iter() {
        slot.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_lock;

    #[test]
    fn records_and_reads_back_in_order() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        crate::set_metrics_enabled(true);
        flight_record(FlightKind::RequestStart, 0xaa, 1);
        flight_record(FlightKind::CacheMiss, 0xaa, 2);
        flight_record(FlightKind::RequestEnd, 0xaa, 3);
        let tail = flight_tail(16);
        crate::reset_metrics();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].kind, FlightKind::RequestStart);
        assert_eq!(tail[2].kind, FlightKind::RequestEnd);
        assert_eq!(tail[1].detail, 2);
        assert!(tail.iter().all(|e| e.trace_id == 0xaa));
        assert!(tail[0].ts_us <= tail[2].ts_us);
    }

    #[test]
    fn tail_is_bounded_and_keeps_newest() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        crate::set_metrics_enabled(true);
        for i in 0..(FLIGHT_CAPACITY as u64 + 50) {
            flight_record(FlightKind::RequestEnd, 0, i);
        }
        let all = flight_tail(usize::MAX);
        let short = flight_tail(8);
        crate::reset_metrics();
        assert_eq!(all.len(), FLIGHT_CAPACITY);
        assert_eq!(all.last().unwrap().detail, FLIGHT_CAPACITY as u64 + 49);
        assert_eq!(short.len(), 8);
        assert_eq!(short[0].detail, FLIGHT_CAPACITY as u64 + 42);
    }

    #[test]
    fn disabled_registry_drops_events_and_json_shape_holds() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        flight_record(FlightKind::QueueReject, 1, 9);
        assert!(flight_tail(4).is_empty());

        crate::set_metrics_enabled(true);
        flight_record(FlightKind::DeadlineExpiry, 0x10, 250);
        let json = flight_tail_json(4).to_string();
        crate::reset_metrics();
        let doc = Json::parse(&json).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("event").and_then(Json::as_str), Some("deadline_expiry"));
        assert_eq!(arr[0].get("detail").and_then(Json::as_u64), Some(250));
    }
}
