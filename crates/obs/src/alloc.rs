//! A tracking global allocator: process-wide allocation accounting.
//!
//! Closed-form reuse analysis is only cheap if it stays allocation-lean,
//! so allocation traffic belongs in the same registry as wall time. This
//! module installs a [`GlobalAlloc`] wrapper over [`System`] that keeps
//! sharded atomic tallies of every heap operation — alloc/dealloc/realloc
//! counts, bytes allocated and freed, the current live-byte level, and
//! its high-water peak — plus a per-thread cumulative bytes-allocated
//! counter ([`thread_alloc_bytes`]) that the span layer samples to
//! attribute allocation to `/`-joined span paths, exactly like wall time.
//!
//! Tracking is always on: the accounting per operation is a handful of
//! `Relaxed` atomic adds and one thread-local `Cell` bump (no locks, no
//! allocation, no syscalls), so the wrapper stays invisible next to the
//! cost of the underlying `malloc` — `scripts/verify.sh` gates that the
//! fir explore latency with tracking enabled holds the scorecard's noise
//! band. The monotone tallies shard across [`AllocTally::SHARDS`]
//! cache-line-padded slots keyed by a per-thread value, so parallel
//! sweeps do not serialize on one hot line; the live level and peak are
//! single atomics because the peak must observe every level change.
//!
//! [`reset_alloc`] (called from [`crate::reset_metrics`]) zeroes the
//! monotone accumulators and resets the peak to the *current live level*
//! — not to zero: memory allocated before the reset is still resident,
//! and a peak below the live level would be a lie. The live level itself
//! is never reset; it tracks reality, not a measurement window.
//!
//! The `unsafe` here is the [`GlobalAlloc`] impl the trait requires; it
//! forwards every pointer contract verbatim to [`System`] and only adds
//! lock-free arithmetic around the calls.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Cumulative bytes allocated by this thread (monotone). Const-
    /// initialized so the very first access from inside the allocator
    /// cannot itself allocate.
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bytes this thread has allocated so far (monotone, never reset).
///
/// Span guards sample this at open and close; the difference is the
/// allocation attributed to the span's path. Per-thread deltas make
/// concurrent spans on different threads independent — a worker's
/// allocations never bleed into a span open on the event loop.
pub fn thread_alloc_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Bumps the thread counter and derives this thread's shard index from
/// the thread-local's address (stable per thread, free to compute).
/// During thread teardown the TLS slot may be gone; fall back to shard 0
/// rather than losing the event.
fn note_thread(bytes: u64) -> usize {
    THREAD_BYTES
        .try_with(|c| {
            c.set(c.get().wrapping_add(bytes));
            (std::ptr::from_ref(c) as usize >> 7) % AllocTally::SHARDS
        })
        .unwrap_or(0)
}

/// One shard of the monotone tallies, padded to its own cache line so
/// threads hashing to different shards never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Shard {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    reallocs: AtomicU64,
    bytes_allocated: AtomicU64,
    bytes_freed: AtomicU64,
}

impl Shard {
    const fn new() -> Self {
        Self {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
            bytes_freed: AtomicU64::new(0),
        }
    }
}

/// The allocator's accounting state, factored out of the global so the
/// invariants are testable against a shadow model on a private instance
/// (the global allocator's tallies see every allocation in the process,
/// including the test harness's own, so exact assertions belong here).
#[derive(Debug)]
pub(crate) struct AllocTally {
    shards: [Shard; AllocTally::SHARDS],
    live: AtomicU64,
    peak: AtomicU64,
}

impl AllocTally {
    /// Number of monotone-tally shards.
    pub(crate) const SHARDS: usize = 16;

    pub(crate) const fn new() -> Self {
        Self {
            shards: [const { Shard::new() }; AllocTally::SHARDS],
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Records one allocation of `bytes` on `shard`.
    pub(crate) fn on_alloc(&self, bytes: u64, shard: usize) {
        let s = &self.shards[shard % Self::SHARDS];
        s.allocs.fetch_add(1, Ordering::Relaxed);
        s.bytes_allocated.fetch_add(bytes, Ordering::Relaxed);
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Records one deallocation of `bytes` on `shard`.
    pub(crate) fn on_dealloc(&self, bytes: u64, shard: usize) {
        let s = &self.shards[shard % Self::SHARDS];
        s.deallocs.fetch_add(1, Ordering::Relaxed);
        s.bytes_freed.fetch_add(bytes, Ordering::Relaxed);
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Records one reallocation `old` → `new` bytes on `shard`: the new
    /// block counts as allocated traffic, the old as freed, and the live
    /// level moves by the difference.
    pub(crate) fn on_realloc(&self, old: u64, new: u64, shard: usize) {
        let s = &self.shards[shard % Self::SHARDS];
        s.reallocs.fetch_add(1, Ordering::Relaxed);
        s.bytes_allocated.fetch_add(new, Ordering::Relaxed);
        s.bytes_freed.fetch_add(old, Ordering::Relaxed);
        if new >= old {
            let live = self.live.fetch_add(new - old, Ordering::Relaxed) + (new - old);
            self.peak.fetch_max(live, Ordering::Relaxed);
        } else {
            self.live.fetch_sub(old - new, Ordering::Relaxed);
        }
    }

    /// Sums the shards into one point-in-time [`AllocSnapshot`].
    pub(crate) fn snapshot(&self) -> AllocSnapshot {
        let mut snap = AllocSnapshot {
            allocs: 0,
            deallocs: 0,
            reallocs: 0,
            bytes_allocated: 0,
            bytes_freed: 0,
            live_bytes: self.live.load(Ordering::Relaxed),
            peak_bytes: self.peak.load(Ordering::Relaxed),
        };
        for s in &self.shards {
            snap.allocs += s.allocs.load(Ordering::Relaxed);
            snap.deallocs += s.deallocs.load(Ordering::Relaxed);
            snap.reallocs += s.reallocs.load(Ordering::Relaxed);
            snap.bytes_allocated += s.bytes_allocated.load(Ordering::Relaxed);
            snap.bytes_freed += s.bytes_freed.load(Ordering::Relaxed);
        }
        snap
    }

    /// Zeroes the monotone accumulators and resets the peak to the
    /// current live level. The live level is untouched: it reflects
    /// memory that is genuinely still resident.
    pub(crate) fn reset(&self) {
        for s in &self.shards {
            s.allocs.store(0, Ordering::Relaxed);
            s.deallocs.store(0, Ordering::Relaxed);
            s.reallocs.store(0, Ordering::Relaxed);
            s.bytes_allocated.store(0, Ordering::Relaxed);
            s.bytes_freed.store(0, Ordering::Relaxed);
        }
        self.peak.store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// The process-global tally behind [`alloc_snapshot`].
static TALLY: AllocTally = AllocTally::new();

/// A point-in-time copy of the allocator tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations served (`alloc` + `alloc_zeroed` calls that succeeded).
    pub allocs: u64,
    /// Deallocations.
    pub deallocs: u64,
    /// Reallocations (counted separately from allocs/deallocs).
    pub reallocs: u64,
    /// Total bytes ever allocated (realloc counts its new size).
    pub bytes_allocated: u64,
    /// Total bytes ever freed (realloc counts its old size).
    pub bytes_freed: u64,
    /// Bytes currently live on the heap.
    pub live_bytes: u64,
    /// High-water live-byte mark since process start or the last
    /// [`crate::reset_metrics`].
    pub peak_bytes: u64,
}

/// Reads the process-wide allocator tallies.
///
/// Always available — allocation tracking is not gated on
/// [`crate::metrics_enabled`], because the wrapper's cost is a few
/// relaxed atomic adds per heap call and a toggle would leave the live
/// level meaningless.
pub fn alloc_snapshot() -> AllocSnapshot {
    TALLY.snapshot()
}

/// Resets the global tally: accumulators to zero, peak to the current
/// live level (see [`AllocTally::reset`]). Called from
/// [`crate::reset_metrics`].
pub(crate) fn reset_alloc() {
    TALLY.reset();
}

/// The tracking wrapper installed as the `#[global_allocator]` for every
/// binary linking this crate.
#[derive(Debug)]
pub struct TrackingAllocator;

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

// SAFETY: every method forwards the exact layout/pointer arguments to
// `System`, which upholds the `GlobalAlloc` contract; the added
// accounting performs no allocation (const-initialized thread-local,
// relaxed atomics only), so the allocator cannot re-enter itself.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let shard = note_thread(layout.size() as u64);
            TALLY.on_alloc(layout.size() as u64, shard);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            let shard = note_thread(layout.size() as u64);
            TALLY.on_alloc(layout.size() as u64, shard);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        let shard = note_thread(0);
        TALLY.on_dealloc(layout.size() as u64, shard);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let shard = note_thread(new_size as u64);
            TALLY.on_realloc(layout.size() as u64, new_size as u64, shard);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_global_tally_sees_a_big_allocation() {
        let before = alloc_snapshot();
        let buf = vec![7u8; 4 << 20];
        let after = alloc_snapshot();
        assert!(
            after.bytes_allocated >= before.bytes_allocated + (4 << 20),
            "4 MiB allocation not tallied: before {before:?}, after {after:?}"
        );
        assert!(after.allocs > before.allocs);
        assert!(after.peak_bytes >= after.live_bytes.min(4 << 20));
        drop(buf);
        let freed = alloc_snapshot();
        assert!(
            freed.bytes_freed >= before.bytes_freed + (4 << 20),
            "free not tallied: {freed:?}"
        );
    }

    #[test]
    fn thread_bytes_are_per_thread_and_monotone() {
        let a = thread_alloc_bytes();
        let v = vec![0u8; 1 << 20];
        let b = thread_alloc_bytes();
        assert!(b >= a + (1 << 20), "thread counter missed 1 MiB: {a} -> {b}");
        drop(v);
        // Monotone: frees do not decrease the allocated-bytes counter.
        assert!(thread_alloc_bytes() >= b);
        // A fresh thread starts its own counter near zero, independent of
        // this thread's traffic.
        let other = std::thread::spawn(|| {
            let base = thread_alloc_bytes();
            let v = vec![0u8; 1 << 16];
            let grown = thread_alloc_bytes();
            drop(v);
            grown - base
        })
        .join()
        .unwrap();
        assert!(other >= 1 << 16);
        assert!(thread_alloc_bytes() < b + (1 << 19), "cross-thread bleed");
    }

    #[test]
    fn reset_zeroes_accumulators_and_pins_peak_to_live() {
        // Exact semantics on a private instance (the global races other
        // test threads): after reset the monotone tallies are zero and
        // the peak equals the live level — not zero.
        let t = AllocTally::new();
        t.on_alloc(1_000, 0);
        t.on_alloc(500, 3);
        t.on_dealloc(200, 1);
        t.on_realloc(300, 700, 2);
        let s = t.snapshot();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.deallocs, 1);
        assert_eq!(s.reallocs, 1);
        assert_eq!(s.bytes_allocated, 1_000 + 500 + 700);
        assert_eq!(s.bytes_freed, 200 + 300);
        assert_eq!(s.live_bytes, 1_000 + 500 - 200 + 400);
        assert!(s.peak_bytes >= s.live_bytes);
        t.reset();
        let r = t.snapshot();
        assert_eq!(r.allocs, 0);
        assert_eq!(r.deallocs, 0);
        assert_eq!(r.reallocs, 0);
        assert_eq!(r.bytes_allocated, 0);
        assert_eq!(r.bytes_freed, 0);
        assert_eq!(r.live_bytes, s.live_bytes, "live survives a reset");
        assert_eq!(r.peak_bytes, s.live_bytes, "peak resets to live, not zero");
    }

    #[test]
    fn tally_matches_a_shadow_model_under_random_interleavings() {
        use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config};
        // Property: driving a fresh tally with a random alloc/free/realloc
        // sequence, the counters match an exact shadow model at every
        // step, the live level never underflows, and the peak is the
        // running maximum of the live level.
        check(
            "alloc_tally_shadow_model",
            &Config::with_cases(64),
            |rng| {
                rng.vec(1, 120, |r| {
                    (r.u64_in(0, 2), r.u64_in(0, 1 << 20), r.u64_in(0, 1 << 20))
                })
            },
            |ops| {
                let t = AllocTally::new();
                let mut blocks: Vec<u64> = Vec::new();
                let mut shadow = AllocSnapshot {
                    allocs: 0,
                    deallocs: 0,
                    reallocs: 0,
                    bytes_allocated: 0,
                    bytes_freed: 0,
                    live_bytes: 0,
                    peak_bytes: 0,
                };
                for (i, &(kind, a, b)) in ops.iter().enumerate() {
                    match kind {
                        0 => {
                            t.on_alloc(a, i);
                            blocks.push(a);
                            shadow.allocs += 1;
                            shadow.bytes_allocated += a;
                            shadow.live_bytes += a;
                        }
                        1 if !blocks.is_empty() => {
                            let old = blocks.swap_remove((b as usize) % blocks.len());
                            t.on_dealloc(old, i);
                            shadow.deallocs += 1;
                            shadow.bytes_freed += old;
                            shadow.live_bytes -= old;
                        }
                        2 if !blocks.is_empty() => {
                            let idx = (a as usize) % blocks.len();
                            let old = blocks[idx];
                            blocks[idx] = b;
                            t.on_realloc(old, b, i);
                            shadow.reallocs += 1;
                            shadow.bytes_allocated += b;
                            shadow.bytes_freed += old;
                            shadow.live_bytes = shadow.live_bytes - old + b;
                        }
                        _ => continue,
                    }
                    shadow.peak_bytes = shadow.peak_bytes.max(shadow.live_bytes);
                    let s = t.snapshot();
                    prop_assert_eq!(s.allocs, shadow.allocs);
                    prop_assert_eq!(s.deallocs, shadow.deallocs);
                    prop_assert_eq!(s.reallocs, shadow.reallocs);
                    prop_assert_eq!(s.bytes_allocated, shadow.bytes_allocated);
                    prop_assert_eq!(s.bytes_freed, shadow.bytes_freed);
                    prop_assert_eq!(s.live_bytes, shadow.live_bytes, "live at step {}", i);
                    prop_assert_eq!(s.peak_bytes, shadow.peak_bytes, "peak at step {}", i);
                    prop_assert!(s.peak_bytes >= s.live_bytes);
                    prop_assert_eq!(
                        s.live_bytes,
                        s.bytes_allocated - s.bytes_freed,
                        "live is the alloc/free difference"
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn sharded_counters_sum_consistently_across_threads() {
        // 8 threads hammer one tally with balanced alloc/free pairs on
        // their own shard lanes; afterwards the shard sums must agree
        // exactly with the aggregate arithmetic.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        let t = AllocTally::new();
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let size = 64 + (i % 7) * 8;
                        t.on_alloc(size, (thread as usize) + (i as usize));
                        t.on_dealloc(size, (thread as usize) + (i as usize) + 1);
                    }
                });
            }
        });
        let s = t.snapshot();
        assert_eq!(s.allocs, THREADS * PER_THREAD);
        assert_eq!(s.deallocs, THREADS * PER_THREAD);
        assert_eq!(s.bytes_allocated, s.bytes_freed, "balanced traffic");
        assert_eq!(s.live_bytes, 0, "everything allocated was freed");
        assert!(s.peak_bytes <= s.bytes_allocated);
    }
}
