//! Global metrics registry: named atomic counters, monotonic gauges, and
//! per-worker load tracking.
//!
//! The registry is process-global and **off by default**. Every recording
//! entry point first does one `Relaxed` load of the enabled flag and
//! returns immediately when metrics are off — no allocation, no locks, no
//! clock reads — so instrumented hot loops cost a single predictable
//! branch when nobody is watching. Hot simulators batch their updates
//! locally (see [`LocalCounter`]) so even the enabled path touches the
//! shared atomics only once per [`LocalCounter::FLUSH_EVERY`] events.
//!
//! Counters are a closed enum rather than a string-keyed map: the set of
//! interesting events in this workspace is small and known, and a fixed
//! `[AtomicU64; N]` array keeps recording allocation-free and snapshots
//! deterministic (fixed iteration order).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::{hist_snapshot, Hist, HistSnapshot};
use crate::json::Json;
use crate::span::span_rows;

/// Every counter the pipeline records. The `name` strings are the keys in
/// the `counters` object of [`snapshot`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)] // Variant names mirror their snapshot keys below.
pub enum Counter {
    ExploreGroups,
    ExplorePairsSwept,
    ExploreCandidatesGenerated,
    ExploreCandidatesPruned,
    SymbolicHits,
    SimFallbacks,
    SimFallbackGuarded,
    SimFallbackSharedIterators,
    SimFallbackSparseDim,
    SimFallbackUnalignedUnion,
    SimFallbackNotTranslated,
    SimFallbackOverflow,
    SimFallbackBadAccess,
    ExprKernelsLowered,
    CorpusKernelsLoaded,
    ChainsEnumerated,
    ChainsEvaluated,
    ParetoPointsKept,
    ParetoPointsDropped,
    BeladyAccesses,
    BeladyHits,
    BeladyEvictions,
    BeladyBypasses,
    StackDistSamples,
    WorkingSetWindows,
    CurvePoints,
    ParSweeps,
    ParItems,
    ServeRequests,
    ServeCacheHits,
    ServeCacheMisses,
    ServeCacheEvictions,
    ServeCoalesced,
    ServeBatchRequests,
    ServeSnapshotLoaded,
    ServeSnapshotSaved,
    ServeOverloaded,
    ServeTimeouts,
    ServeErrors,
}

impl Counter {
    /// All counters, in snapshot order.
    pub const ALL: [Counter; 39] = [
        Counter::ExploreGroups,
        Counter::ExplorePairsSwept,
        Counter::ExploreCandidatesGenerated,
        Counter::ExploreCandidatesPruned,
        Counter::SymbolicHits,
        Counter::SimFallbacks,
        Counter::SimFallbackGuarded,
        Counter::SimFallbackSharedIterators,
        Counter::SimFallbackSparseDim,
        Counter::SimFallbackUnalignedUnion,
        Counter::SimFallbackNotTranslated,
        Counter::SimFallbackOverflow,
        Counter::SimFallbackBadAccess,
        Counter::ExprKernelsLowered,
        Counter::CorpusKernelsLoaded,
        Counter::ChainsEnumerated,
        Counter::ChainsEvaluated,
        Counter::ParetoPointsKept,
        Counter::ParetoPointsDropped,
        Counter::BeladyAccesses,
        Counter::BeladyHits,
        Counter::BeladyEvictions,
        Counter::BeladyBypasses,
        Counter::StackDistSamples,
        Counter::WorkingSetWindows,
        Counter::CurvePoints,
        Counter::ParSweeps,
        Counter::ParItems,
        Counter::ServeRequests,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeCacheEvictions,
        Counter::ServeCoalesced,
        Counter::ServeBatchRequests,
        Counter::ServeSnapshotLoaded,
        Counter::ServeSnapshotSaved,
        Counter::ServeOverloaded,
        Counter::ServeTimeouts,
        Counter::ServeErrors,
    ];

    /// The counter's stable snapshot key.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::ExploreGroups => "explore_groups",
            Counter::ExplorePairsSwept => "explore_pairs_swept",
            Counter::ExploreCandidatesGenerated => "explore_candidates_generated",
            Counter::ExploreCandidatesPruned => "explore_candidates_pruned",
            Counter::SymbolicHits => "symbolic_hits",
            Counter::SimFallbacks => "sim_fallbacks",
            Counter::SimFallbackGuarded => "sim_fallbacks_guarded",
            Counter::SimFallbackSharedIterators => "sim_fallbacks_shared_iterators",
            Counter::SimFallbackSparseDim => "sim_fallbacks_sparse_dim",
            Counter::SimFallbackUnalignedUnion => "sim_fallbacks_unaligned_union",
            Counter::SimFallbackNotTranslated => "sim_fallbacks_not_translated",
            Counter::SimFallbackOverflow => "sim_fallbacks_overflow",
            Counter::SimFallbackBadAccess => "sim_fallbacks_bad_access",
            Counter::ExprKernelsLowered => "expr_kernels_lowered",
            Counter::CorpusKernelsLoaded => "corpus_kernels_loaded",
            Counter::ChainsEnumerated => "chains_enumerated",
            Counter::ChainsEvaluated => "chains_evaluated",
            Counter::ParetoPointsKept => "pareto_points_kept",
            Counter::ParetoPointsDropped => "pareto_points_dropped",
            Counter::BeladyAccesses => "belady_accesses",
            Counter::BeladyHits => "belady_hits",
            Counter::BeladyEvictions => "belady_evictions",
            Counter::BeladyBypasses => "belady_bypasses",
            Counter::StackDistSamples => "stackdist_samples",
            Counter::WorkingSetWindows => "workingset_windows",
            Counter::CurvePoints => "curve_points",
            Counter::ParSweeps => "par_sweeps",
            Counter::ParItems => "par_items",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
            Counter::ServeCacheEvictions => "serve_cache_evictions",
            Counter::ServeCoalesced => "serve_coalesced",
            Counter::ServeBatchRequests => "serve_batch_requests",
            Counter::ServeSnapshotLoaded => "serve_snapshot_loaded",
            Counter::ServeSnapshotSaved => "serve_snapshot_saved",
            Counter::ServeOverloaded => "serve_overloaded",
            Counter::ServeTimeouts => "serve_timeouts",
            Counter::ServeErrors => "serve_errors",
        }
    }
}

/// Gauges: instantaneous levels ([`gauge_add`] / [`gauge_sub`]) and
/// high-water marks ([`gauge_max`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)] // Variant names mirror their snapshot keys below.
pub enum Gauge {
    ThreadsMax,
    ServeQueueDepth,
    ServeQueueDepthMax,
    ServeOpenConnections,
    AllocLiveBytes,
    AllocPeakBytes,
    AllocBytesTotal,
}

impl Gauge {
    /// All gauges, in snapshot order.
    pub const ALL: [Gauge; 7] = [
        Gauge::ThreadsMax,
        Gauge::ServeQueueDepth,
        Gauge::ServeQueueDepthMax,
        Gauge::ServeOpenConnections,
        Gauge::AllocLiveBytes,
        Gauge::AllocPeakBytes,
        Gauge::AllocBytesTotal,
    ];

    /// The gauge's stable snapshot key.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::ThreadsMax => "threads_max",
            Gauge::ServeQueueDepth => "serve_queue_depth",
            Gauge::ServeQueueDepthMax => "serve_queue_depth_max",
            Gauge::ServeOpenConnections => "serve_open_connections",
            Gauge::AllocLiveBytes => "alloc_live_bytes",
            Gauge::AllocPeakBytes => "alloc_peak_bytes",
            Gauge::AllocBytesTotal => "alloc_bytes_total",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTERS: [AtomicU64; Counter::ALL.len()] =
    [const { AtomicU64::new(0) }; Counter::ALL.len()];
static GAUGES: [AtomicU64; Gauge::ALL.len()] = [const { AtomicU64::new(0) }; Gauge::ALL.len()];
static WORKER_ITEMS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Turns metrics recording on or off for the whole process.
///
/// Off (the default) makes every recording call a single relaxed atomic
/// load; on makes counters accumulate and spans record wall time.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metrics recording is currently on.
#[inline]
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to `counter`. No-op (one relaxed load) when metrics are off.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{add, snapshot, set_metrics_enabled, reset_metrics, Counter};
/// reset_metrics();
/// add(Counter::ChainsEvaluated, 5); // off: ignored
/// set_metrics_enabled(true);
/// add(Counter::ChainsEvaluated, 5);
/// set_metrics_enabled(false);
/// assert_eq!(snapshot().counter(Counter::ChainsEvaluated), 5);
/// ```
#[inline]
pub fn add(counter: Counter, n: u64) {
    if metrics_enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises `gauge` to at least `value` (monotonic max). No-op when off.
#[inline]
pub fn gauge_max(gauge: Gauge, value: u64) {
    if metrics_enabled() {
        GAUGES[gauge as usize].fetch_max(value, Ordering::Relaxed);
    }
}

/// Increments a level gauge by `n`. No-op when off.
#[inline]
pub fn gauge_add(gauge: Gauge, n: u64) {
    if metrics_enabled() {
        GAUGES[gauge as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Decrements a level gauge by `n`, saturating at zero. Saturation (not
/// wrapping) matters because recording can be toggled between the
/// matching increment and decrement — e.g. a job enqueued before
/// `reset_metrics` and dequeued after it must not wrap the gauge to
/// 2^64-1. No-op when off.
#[inline]
pub fn gauge_sub(gauge: Gauge, n: u64) {
    if metrics_enabled() {
        let _ = GAUGES[gauge as usize].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }
}

/// Reads the live value of a gauge (0 when never recorded).
///
/// The three `alloc_*` gauges are backed by the tracking allocator, not
/// the gauge array: they read live from [`crate::alloc_snapshot`] so
/// every snapshot, Prometheus scrape, and time-series point sees the
/// current heap state without anything having to "record" it.
pub fn gauge_value(gauge: Gauge) -> u64 {
    match gauge {
        Gauge::AllocLiveBytes => crate::alloc_snapshot().live_bytes,
        Gauge::AllocPeakBytes => crate::alloc_snapshot().peak_bytes,
        Gauge::AllocBytesTotal => crate::alloc_snapshot().bytes_allocated,
        _ => GAUGES[gauge as usize].load(Ordering::Relaxed),
    }
}

/// Reads the live value of a counter (0 when never recorded).
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Records that one parallel worker processed `items` work items.
///
/// Feeds the `load` section of the snapshot, which is how a skewed
/// `parallel_map` fan-out shows up (one worker with most of the items).
/// The per-worker distribution depends on scheduling, so it is reported
/// separately from the deterministic `counters`.
pub fn record_worker_items(items: u64) {
    if !metrics_enabled() {
        return;
    }
    WORKER_ITEMS
        .lock()
        .expect("worker-load registry poisoned")
        .push(items);
}

/// Clears the entire registry — counters, gauges, spans, worker-load
/// records, latency histograms, the flight recorder, buffered trace
/// events, scorecard smoke-run state, and the allocator's monotone
/// accumulators (the live-byte level survives, since that memory is
/// still resident, and the peak resets to the current live level) — and
/// turns recording (metrics *and* tracing) off. Clearing the spans also empties the derived
/// profile ([`crate::profile_rows`] is a pure function of the span
/// registry). Intended for tests and for reusing a process across
/// independent runs.
pub fn reset_metrics() {
    set_metrics_enabled(false);
    crate::tracing::set_tracing_enabled(false);
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    WORKER_ITEMS
        .lock()
        .expect("worker-load registry poisoned")
        .clear();
    crate::span::reset_spans();
    crate::alloc::reset_alloc();
    crate::hist::reset_hists();
    crate::flight::reset_flight();
    crate::tracing::reset_tracing();
    crate::scorecard::reset_scorecard_smoke();
    // Under the same call as the counter wipe so a scraper thread racing
    // this reset sees either (old counters, old baseline) or (zeroed
    // counters, zeroed baseline) — never a stale baseline above fresh
    // counters, which would read as a negative delta.
    crate::timeseries::reset_series();
}

/// A point-in-time copy of the registry, convertible to JSON.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(path, calls, total_ns, total_bytes)` per span path, sorted by
    /// path.
    pub spans: Vec<(String, u64, u64, u64)>,
    /// Items processed per parallel worker, in completion order.
    pub worker_items: Vec<u64>,
    /// `(name, snapshot)` for every latency histogram, in
    /// [`Hist::ALL`] order.
    pub hists: Vec<(&'static str, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up one counter's value in the snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(name, _)| *name == counter.name())
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Looks up one histogram's snapshot by [`Hist`].
    pub fn hist(&self, hist: Hist) -> Option<&HistSnapshot> {
        self.hists
            .iter()
            .find(|(name, _)| *name == hist.name())
            .map(|(_, snap)| snap)
    }

    /// Serializes the snapshot as the `datareuse-metrics-v2` JSON object.
    ///
    /// v2 extends v1 with a `hists` section: one object per latency
    /// histogram carrying count/min/max/mean, p50/p90/p99/p999, and the
    /// non-empty `[upper_bound_ns, count]` bucket pairs.
    ///
    /// The `counters` section is deterministic for a given workload (it
    /// counts work, not time); `gauges`, `spans`, `load`, and `hists`
    /// report scheduling- and clock-dependent data and vary run to run.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("datareuse-metrics-v2")),
            (
                "counters",
                Json::obj(
                    self.counters
                        .iter()
                        .map(|&(name, v)| (name, Json::UInt(v))),
                ),
            ),
            (
                "gauges",
                Json::obj(self.gauges.iter().map(|&(name, v)| (name, Json::UInt(v)))),
            ),
            (
                "spans",
                Json::arr(self.spans.iter().map(|(path, calls, ns, bytes)| {
                    Json::obj([
                        ("path", Json::str(path.clone())),
                        ("calls", Json::UInt(*calls)),
                        ("ns", Json::UInt(*ns)),
                        ("bytes", Json::UInt(*bytes)),
                    ])
                })),
            ),
            (
                "load",
                Json::obj([(
                    "worker_items",
                    Json::arr(self.worker_items.iter().map(|&n| Json::UInt(n))),
                )]),
            ),
            (
                "hists",
                Json::obj(self.hists.iter().map(|(name, snap)| (*name, snap.to_json()))),
            ),
        ])
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// Copies the current registry state into a [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: Counter::ALL
            .iter()
            .map(|&c| (c.name(), counter_value(c)))
            .collect(),
        gauges: Gauge::ALL
            .iter()
            .map(|&g| (g.name(), gauge_value(g)))
            .collect(),
        spans: span_rows(),
        worker_items: WORKER_ITEMS
            .lock()
            .expect("worker-load registry poisoned")
            .clone(),
        hists: Hist::ALL
            .iter()
            .map(|&h| (h.name(), hist_snapshot(h)))
            .collect(),
    }
}

/// A thread-local accumulator that batches counter updates from per-item
/// hot loops, flushing to the shared atomic every
/// [`LocalCounter::FLUSH_EVERY`] increments (and on drop).
///
/// Per-access simulators (Belady, working sets) record millions of events
/// per run; hitting the shared cache line for each one would both cost
/// time and defeat the disabled fast path's purpose. Batching keeps the
/// shared counter fresh enough for live progress narration while making
/// the per-event cost one local integer add.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{Counter, LocalCounter, set_metrics_enabled, reset_metrics, snapshot};
/// reset_metrics();
/// set_metrics_enabled(true);
/// {
///     let mut hits = LocalCounter::new(Counter::BeladyHits);
///     for _ in 0..100_000 { hits.incr(); }
/// } // drop flushes the remainder
/// set_metrics_enabled(false);
/// assert_eq!(snapshot().counter(Counter::BeladyHits), 100_000);
/// ```
#[derive(Debug)]
pub struct LocalCounter {
    counter: Counter,
    pending: u64,
}

impl LocalCounter {
    /// How many locally-buffered increments trigger a flush to the
    /// shared atomic.
    pub const FLUSH_EVERY: u64 = 65_536;

    /// Creates an accumulator feeding `counter`.
    pub fn new(counter: Counter) -> Self {
        Self {
            counter,
            pending: 0,
        }
    }

    /// Records one event.
    #[inline]
    pub fn incr(&mut self) {
        self.pending += 1;
        if self.pending >= Self::FLUSH_EVERY {
            self.flush();
        }
    }

    /// Records `n` events at once.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.pending += n;
        if self.pending >= Self::FLUSH_EVERY {
            self.flush();
        }
    }

    /// Pushes buffered events to the shared counter immediately.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            add(self.counter, self.pending);
            self.pending = 0;
        }
    }
}

impl Drop for LocalCounter {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that enable the global registry serialize through this lock
    /// so their counts don't interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = test_lock::hold();
        reset_metrics();
        add(Counter::ParItems, 10);
        gauge_max(Gauge::ThreadsMax, 8);
        record_worker_items(42);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::ParItems), 0);
        assert_eq!(snap.gauges[0].1, 0);
        assert!(snap.worker_items.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate_when_enabled() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        add(Counter::ParetoPointsKept, 3);
        add(Counter::ParetoPointsKept, 4);
        gauge_max(Gauge::ThreadsMax, 2);
        gauge_max(Gauge::ThreadsMax, 8);
        gauge_max(Gauge::ThreadsMax, 4);
        record_worker_items(10);
        record_worker_items(20);
        set_metrics_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::ParetoPointsKept), 7);
        assert_eq!(snap.gauges[0], ("threads_max", 8));
        assert_eq!(snap.worker_items, vec![10, 20]);
        reset_metrics();
        assert_eq!(snapshot().counter(Counter::ParetoPointsKept), 0);
    }

    #[test]
    fn local_counter_flushes_in_chunks_and_on_drop() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        let mut local = LocalCounter::new(Counter::BeladyAccesses);
        for _ in 0..LocalCounter::FLUSH_EVERY {
            local.incr();
        }
        // A full chunk flushed eagerly; live value is already visible.
        assert_eq!(counter_value(Counter::BeladyAccesses), LocalCounter::FLUSH_EVERY);
        local.add(3);
        assert_eq!(counter_value(Counter::BeladyAccesses), LocalCounter::FLUSH_EVERY);
        drop(local);
        set_metrics_enabled(false);
        assert_eq!(
            snapshot().counter(Counter::BeladyAccesses),
            LocalCounter::FLUSH_EVERY + 3
        );
        reset_metrics();
    }

    #[test]
    fn snapshot_json_has_all_sections_and_parses() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        add(Counter::ChainsEnumerated, 12);
        record_worker_items(5);
        set_metrics_enabled(false);
        let text = snapshot().to_json().to_string();
        let parsed = Json::parse(&text).expect("snapshot JSON must parse");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("datareuse-metrics-v2")
        );
        let counters = parsed.get("counters").expect("counters section");
        assert_eq!(counters.entries().unwrap().len(), Counter::ALL.len());
        assert_eq!(
            counters.get("chains_enumerated").and_then(Json::as_u64),
            Some(12)
        );
        assert!(parsed.get("gauges").is_some());
        assert!(parsed.get("spans").is_some());
        let load = parsed.get("load").unwrap().get("worker_items").unwrap();
        assert_eq!(load.at(0).and_then(Json::as_u64), Some(5));
        let hists = parsed.get("hists").expect("hists section");
        assert_eq!(hists.entries().unwrap().len(), Hist::ALL.len());
        reset_metrics();
    }

    #[test]
    fn level_gauges_add_sub_and_saturate() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        gauge_add(Gauge::ServeQueueDepth, 3);
        gauge_sub(Gauge::ServeQueueDepth, 1);
        assert_eq!(gauge_value(Gauge::ServeQueueDepth), 2);
        // Saturates at zero instead of wrapping when decrements outpace
        // increments (possible across a reset).
        gauge_sub(Gauge::ServeQueueDepth, 10);
        assert_eq!(gauge_value(Gauge::ServeQueueDepth), 0);
        reset_metrics();
    }

    #[test]
    fn reset_clears_hists_and_flight_recorder() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        crate::record_hist(Hist::ServeLatencyCold, 100);
        crate::flight_record(crate::FlightKind::RequestStart, 1, 1);
        gauge_add(Gauge::ServeQueueDepth, 5);
        {
            let _span = crate::span("reset_probe");
        }
        crate::record_smoke_metric(crate::Metric::new(
            "smoke_probe",
            1.0,
            0.1,
            crate::Direction::LowerIsBetter,
        ));
        assert!(!crate::profile_rows().is_empty());
        reset_metrics();
        assert_eq!(snapshot().hist(Hist::ServeLatencyCold).unwrap().count, 0);
        assert!(crate::flight_tail(16).is_empty());
        assert_eq!(gauge_value(Gauge::ServeQueueDepth), 0);
        // The derived profiler view and the scorecard's smoke-run state
        // are wiped too: a reused process starts from a clean slate.
        assert!(crate::profile_rows().is_empty());
        assert!(crate::collapsed_stacks().is_empty());
        assert!(crate::smoke_metrics().is_empty());
    }

    #[test]
    fn reset_rebases_alloc_peak_to_live_not_zero() {
        let _guard = test_lock::hold();
        // Push the high-water mark well above the steady live level,
        // release it, then reset: the accumulators restart but the peak
        // must come back as the (nonzero) live level — the memory that
        // was resident before the reset is still resident after it.
        let spike = vec![0u8; 32 << 20];
        let peak_with_spike = crate::alloc_snapshot().peak_bytes;
        drop(spike);
        reset_metrics();
        let after = crate::alloc_snapshot();
        assert!(
            after.peak_bytes < peak_with_spike,
            "reset must drop the 32 MiB spike from the peak: {} -> {}",
            peak_with_spike,
            after.peak_bytes
        );
        assert!(after.peak_bytes > 0, "peak rebases to live, not zero");
        assert!(after.peak_bytes >= after.live_bytes);
        assert!(after.live_bytes > 0, "the test harness itself has a live heap");
        // Snapshot gauges read through to the allocator.
        let snap = snapshot();
        let gauge = |wanted: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| *name == wanted)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("no gauge {wanted}"))
        };
        assert!(gauge("alloc_live_bytes") > 0);
        assert!(gauge("alloc_peak_bytes") >= gauge("alloc_live_bytes"));
    }
}
