//! The workspace's hand-rolled JSON value: writer and reader.
//!
//! The workspace is hermetic (standard library only, no crates.io), so
//! every machine-readable artifact — exploration reports, `BENCH_*.json`
//! timings, `METRICS_*.json` snapshots — goes through this one small
//! [`Json`] type instead of a serde derive. It lives in `datareuse-obs`
//! (the dependency-free leaf crate) so both the observability registry and
//! the model crates can use it; `datareuse_core::Json` re-exports it
//! unchanged.
//!
//! The writer covers exactly what the tools need: objects, arrays,
//! strings with escaping, integers, and floats. [`Json::parse`] is the
//! matching reader, used by tests and scripts to consume the artifacts
//! the tools emit.

use std::fmt;

/// A JSON value, written out via `Display` and read back via
/// [`Json::parse`].
///
/// # Examples
///
/// ```
/// use datareuse_obs::Json;
/// let v = Json::obj([
///     ("name", Json::str("A")),
///     ("sizes", Json::arr([Json::UInt(8), Json::UInt(56)])),
/// ]);
/// assert_eq!(v.to_string(), r#"{"name":"A","sizes":[8,56]}"#);
/// assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact — no f64 round-trip).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Self::Str(s.into())
    }

    /// Convenience array constructor.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Self::Arr(items.into_iter().collect())
    }

    /// Convenience object constructor.
    pub fn obj<K: Into<String>>(entries: impl IntoIterator<Item = (K, Json)>) -> Self {
        Self::Obj(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up `key` in an object (first occurrence); `None` for other
    /// variants or missing keys.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_obs::Json;
    /// let v = Json::parse(r#"{"a":{"b":7}}"#).unwrap();
    /// assert_eq!(v.get("a").and_then(|a| a.get("b")).and_then(Json::as_u64), Some(7));
    /// assert!(v.get("missing").is_none());
    /// ```
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array; `None` for other variants or out of range.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Self::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a `u64` (from `UInt`, or a non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Self::UInt(n) => Some(n),
            Self::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Self::UInt(n) => Some(n as f64),
            Self::Int(n) => Some(n as f64),
            Self::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Self::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array items, when the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, when the value is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Maximum container nesting depth accepted by [`Json::parse`].
    ///
    /// The parser is recursive, and once the server feeds it bytes from
    /// the network a document like `[[[[…` becomes an attacker-controlled
    /// stack depth. 128 is far deeper than any artifact this workspace
    /// emits while keeping the worst-case stack usage small and
    /// platform-independent.
    pub const MAX_DEPTH: usize = 128;

    /// Parses a JSON document (the reader matching the `Display` writer).
    ///
    /// Integers without fraction/exponent parse as [`Json::UInt`] /
    /// [`Json::Int`]; everything else numeric parses as [`Json::Num`].
    /// `-0` parses as [`Json::Num`]`(-0.0)` so the sign survives a
    /// round-trip, integers beyond the 64-bit ranges fall back to `f64`
    /// (53-bit precision), and numbers whose nearest `f64` is not finite
    /// (e.g. `1e400`) are rejected rather than clamped to a value the
    /// writer would re-serialize as `null`. Trailing non-whitespace input
    /// is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with the byte offset of the first
    /// offending character.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_obs::Json;
    /// let v = Json::parse(r#"{"xs":[1,-2,3.5],"ok":true,"s":"a\nb"}"#).unwrap();
    /// assert_eq!(v.get("xs").and_then(|x| x.at(0)).and_then(Json::as_u64), Some(1));
    /// assert_eq!(v.get("s").and_then(Json::as_str), Some("a\nb"));
    /// assert!(Json::parse("{oops").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Currently open containers (objects + arrays); bounded by
    /// [`Json::MAX_DEPTH`] so hostile input cannot overflow the stack.
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        if self.depth >= Json::MAX_DEPTH {
            return Err(self.err("nesting deeper than Json::MAX_DEPTH"));
        }
        self.depth += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00)
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction from &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                // `-0` (only reachable here: plain `0` parses as u64)
                // must stay a float — `Int(0)` would render back as `0`,
                // silently dropping the sign on a round-trip.
                if n == 0 {
                    return Ok(Json::Num(-0.0));
                }
                return Ok(Json::Int(n));
            }
            // Integral but outside u64/i64: fall through to f64, keeping
            // the magnitude to 53 bits of precision (same policy as
            // serde_json's arbitrary-precision-off mode).
        }
        let x = text.parse::<f64>().map_err(|_| JsonParseError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        if !x.is_finite() {
            // `1e400` would otherwise become `Num(inf)`, which the
            // writer renders as `null` — a silent type change the first
            // time the value passes back through the server protocol.
            return Err(JsonParseError {
                offset: start,
                message: format!("number out of range `{text}`"),
            });
        }
        Ok(Json::Num(x))
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Null => f.write_str("null"),
            Self::Bool(b) => write!(f, "{b}"),
            Self::UInt(n) => write!(f, "{n}"),
            Self::Int(n) => write!(f, "{n}"),
            Self::Num(x) if x.is_finite() => write!(f, "{x}"),
            Self::Num(_) => f.write_str("null"),
            Self::Str(s) => write_escaped(f, s),
            Self::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Self::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_writer_escapes_and_nests() {
        let v = Json::obj([
            ("s", Json::str("a\"b\\c\nd\u{1}")),
            ("n", Json::Num(2.5)),
            ("i", Json::Int(-3)),
            ("u", Json::UInt(u64::MAX)),
            ("inf", Json::Num(f64::INFINITY)),
            ("none", Json::Null),
            ("flag", Json::Bool(true)),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"n\":2.5,\"i\":-3,\
             \"u\":18446744073709551615,\"inf\":null,\"none\":null,\
             \"flag\":true,\"empty\":[]}"
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("s", Json::str("a\"b\\c\nd\u{1}π")),
            ("n", Json::Num(2.5)),
            ("i", Json::Int(-3)),
            ("u", Json::UInt(u64::MAX)),
            ("none", Json::Null),
            ("flag", Json::Bool(false)),
            (
                "nested",
                Json::arr([Json::UInt(1), Json::obj([("k", Json::arr([]))])]),
            ),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse(" {\n\t\"a\" : [ 1 , 2.0 ,\r \"\\u0041\\ud83d\\ude00\" ] } ")
            .unwrap();
        let arr = v.get("a").unwrap();
        assert_eq!(arr.at(0).unwrap().as_u64(), Some(1));
        assert_eq!(arr.at(1).unwrap().as_f64(), Some(2.0));
        assert_eq!(arr.at(2).unwrap().as_str(), Some("A😀"));
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("4.5e2").unwrap(), Json::Num(450.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
    }

    #[test]
    fn regression_minus_zero_survives_a_round_trip() {
        // Fuzz seed: `-0` used to parse as `Int(0)` and re-serialize as
        // `0`, so a cost term that was exactly negative zero changed text
        // on every server/explain hop.
        let v = Json::parse("-0").unwrap();
        match v {
            Json::Num(x) => {
                assert_eq!(x, 0.0);
                assert!(x.is_sign_negative(), "sign dropped");
            }
            other => panic!("-0 parsed as {other:?}"),
        }
        assert_eq!(v.to_string(), "-0");
        assert_eq!(Json::parse(&v.to_string()).unwrap().to_string(), "-0");
    }

    #[test]
    fn regression_huge_exponents_are_rejected_not_nulled() {
        // Fuzz seed: `1e400` used to parse as `Num(inf)`, which the
        // writer renders as `null` — a silent type change through the
        // server protocol.
        for bad in ["1e400", "-1e400", "1e99999", "-2.5E+308000"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.message.contains("out of range"), "{bad}: {e}");
        }
        // The finite extremes and underflow-to-zero still parse.
        assert_eq!(
            Json::parse("1.7976931348623157e308").unwrap(),
            Json::Num(f64::MAX)
        );
        assert_eq!(Json::parse("1e-400").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn regression_integer_overflow_is_value_stable() {
        // Fuzz seeds: one past u64::MAX and one below i64::MIN. The
        // magnitude survives to f64 precision and one render/parse cycle
        // reaches a fixpoint instead of drifting every hop.
        let v = Json::parse("18446744073709551616").unwrap();
        assert_eq!(v, Json::Num(18446744073709551616.0));
        let once = v.to_string();
        assert_eq!(Json::parse(&once).unwrap().to_string(), once);

        let v = Json::parse("-9223372036854775809").unwrap();
        assert_eq!(v.as_f64(), Some(-9223372036854775808.0)); // nearest f64
        let once = v.to_string();
        assert_eq!(Json::parse(&once).unwrap().as_f64(), v.as_f64());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"\\x\"", "\"unterminated",
            "{\"a\":1,}",
            "[1]]",
            "\"\\ud800\"",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "no error for {bad:?}");
        }
    }

    #[test]
    fn parse_enforces_the_depth_limit() {
        // MAX_DEPTH containers parse; one more is an error, not a stack
        // overflow — this is the server's first line of defense against
        // hostile request bodies.
        let ok = format!(
            "{}1{}",
            "[".repeat(Json::MAX_DEPTH),
            "]".repeat(Json::MAX_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(Json::MAX_DEPTH + 1),
            "]".repeat(Json::MAX_DEPTH + 1)
        );
        let e = Json::parse(&too_deep).unwrap_err();
        assert!(e.message.contains("MAX_DEPTH"), "{e}");
        // Mixed objects/arrays count against the same budget, and a huge
        // hostile prefix must not crash even without closers.
        let hostile = "[{\"k\":".repeat(100_000);
        assert!(Json::parse(&hostile).is_err());
    }

    #[test]
    fn accessors_are_typed_and_total() {
        let v = Json::parse(r#"{"u":3,"i":-3,"f":1.5,"s":"x","b":true,"a":[9]}"#).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("i").unwrap().as_u64(), None);
        assert_eq!(v.get("i").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.entries().unwrap().len(), 6);
        assert!(v.get("u").unwrap().get("nope").is_none());
        assert!(v.at(0).is_none());
    }
}
