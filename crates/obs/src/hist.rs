//! Log-bucketed latency histograms: atomic, mergeable, std-only.
//!
//! Means hide tails; a production serving path is judged by its p99
//! ("The Tail at Scale", Dean & Barroso). This module provides the
//! percentile substrate for the workspace: a fixed array of
//! [`Histogram::BUCKETS`] power-of-√2 buckets (two buckets per power of
//! two) covering `0..2³²` nanoseconds exactly, with one saturating
//! catch-all bucket above — a recorded value is **never dropped**, even
//! at `u64::MAX`. Recording is one atomic add per field with `Relaxed`
//! ordering, so concurrent recorders never lock and never lose counts.
//!
//! Percentiles are extracted from a [`HistSnapshot`] by walking the
//! cumulative bucket counts; the reported value is the bucket's upper
//! bound clamped to the observed maximum, so `p50 ≤ p90 ≤ p99 ≤ p999 ≤
//! max` holds by construction. Snapshots merge losslessly: merging two
//! snapshots yields exactly the snapshot of recording both value
//! sequences into one histogram (bucket counts, min, max, count, and
//! wrapping sum are all commutative).
//!
//! Like the counters, the *global* registry ([`Hist`], [`record_hist`])
//! is gated on [`crate::metrics_enabled`]; standalone [`Histogram`]
//! values (used by the bench harness) record unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Every latency histogram the pipeline records. The `name` strings are
/// the keys of the `hists` object in a `datareuse-metrics-v2` snapshot
/// and the Prometheus metric suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)] // Variant names mirror their snapshot keys below.
pub enum Hist {
    ServeLatencyCold,
    ServeLatencyCacheHit,
    ServeQueueWait,
    ExploreChunk,
    TraceSimRun,
}

impl Hist {
    /// All histograms, in snapshot order.
    pub const ALL: [Hist; 5] = [
        Hist::ServeLatencyCold,
        Hist::ServeLatencyCacheHit,
        Hist::ServeQueueWait,
        Hist::ExploreChunk,
        Hist::TraceSimRun,
    ];

    /// The histogram's stable snapshot key. All values are nanoseconds.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::ServeLatencyCold => "serve_latency_cold_ns",
            Hist::ServeLatencyCacheHit => "serve_latency_cache_hit_ns",
            Hist::ServeQueueWait => "serve_queue_wait_ns",
            Hist::ExploreChunk => "explore_chunk_ns",
            Hist::TraceSimRun => "trace_sim_run_ns",
        }
    }
}

/// An atomic log-bucketed histogram of `u64` values.
///
/// Buckets follow a power-of-√2 progression: each power-of-two octave
/// `[2ᵉ, 2ᵉ⁺¹)` is split at `1.5·2ᵉ` into a lower and an upper
/// half-bucket, giving a worst-case relative quantization error of ~33%
/// of the value — tight enough to separate a 10µs cache hit from a 10ms
/// cold request, coarse enough that 64 buckets span `0..2³²` ns (~4.3s)
/// before the final bucket saturates.
///
/// # Examples
///
/// ```
/// use datareuse_obs::Histogram;
/// let h = Histogram::new();
/// for v in [10, 20, 30, 40, 1_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert_eq!(snap.min, 10);
/// assert_eq!(snap.max, 1_000);
/// assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
/// ```
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; Histogram::BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Number of buckets: two per power-of-two octave over `0..2³²`,
    /// with the last bucket absorbing everything larger (up to
    /// `u64::MAX`).
    pub const BUCKETS: usize = 64;

    /// Creates an empty histogram. `const` so histograms can live in
    /// `static` registries.
    pub const fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; Histogram::BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index holding `value`. Total over all of `u64`: no
    /// value is ever out of range.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let e = 63 - value.leading_zeros() as usize;
        let upper = e > 0 && (value >> (e - 1)) & 1 == 1;
        (2 * e + usize::from(upper)).min(Self::BUCKETS - 1)
    }

    /// The largest value stored in bucket `index` (inclusive). The last
    /// bucket's bound is `u64::MAX` — it saturates rather than loses.
    pub fn bucket_bound(index: usize) -> u64 {
        assert!(index < Self::BUCKETS, "bucket index out of range");
        if index >= Self::BUCKETS - 1 {
            return u64::MAX;
        }
        let e = index / 2;
        if index % 2 == 0 {
            // Lower half-bucket [2^e, 1.5·2^e); for e = 0 this is {0, 1}.
            if e == 0 {
                1
            } else {
                (1u64 << e) + (1u64 << (e - 1)) - 1
            }
        } else {
            // Upper half-bucket [1.5·2^e, 2^(e+1)).
            (1u64 << (e + 1)) - 1
        }
    }

    /// Records one value. Lock-free; safe from any number of threads.
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping by design: 2⁶⁴ ns of cumulative latency is ~584 years,
        // and a wrapped sum still merges commutatively.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copies the current state into an immutable [`HistSnapshot`].
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = [0u64; Self::BUCKETS];
        for (out, c) in counts.iter_mut().zip(&self.counts) {
            *out = c.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Clears all buckets and statistics.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`]: percentile extraction,
/// merging, and JSON serialization happen here, off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`Histogram::bucket_bound`]).
    pub counts: [u64; Histogram::BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Wrapping sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// The value at quantile `q` in `(0, 1]`: the upper bound of the
    /// bucket containing the rank-`⌈q·count⌉` value, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Histogram::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Arithmetic mean of the recorded values (0 when empty). Only
    /// meaningful while the wrapping `sum` has not overflowed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combines two snapshots into the snapshot that recording both
    /// underlying value sequences would have produced: bucket-wise count
    /// sums, min of mins, max of maxes, wrapping sum of sums.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut counts = self.counts;
        for (a, b) in counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        let count = self.count + other.count;
        HistSnapshot {
            counts,
            count,
            sum: self.sum.wrapping_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
        }
    }

    /// Serializes the snapshot as the `hists` entry of a
    /// `datareuse-metrics-v2` document: summary statistics followed by
    /// the non-empty buckets as `[upper_bound, count]` pairs.
    ///
    /// An empty histogram has no percentiles, so a zero-count snapshot
    /// serializes them as `null` and the mean as `0` — never `NaN` or
    /// `inf`, which are not JSON and would poison any consumer doing
    /// arithmetic on the document.
    pub fn to_json(&self) -> Json {
        let pct = |v: u64| {
            if self.count == 0 {
                Json::Null
            } else {
                Json::UInt(v)
            }
        };
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("mean", Json::Num(self.mean())),
            ("p50", pct(self.p50())),
            ("p90", pct(self.p90())),
            ("p99", pct(self.p99())),
            ("p999", pct(self.p999())),
            (
                "buckets",
                Json::arr(self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(
                    |(i, &c)| {
                        Json::arr([Json::UInt(Histogram::bucket_bound(i)), Json::UInt(c)])
                    },
                )),
            ),
        ])
    }
}

/// The global histogram registry, indexed by [`Hist`].
static HISTS: [Histogram; Hist::ALL.len()] =
    [const { Histogram::new() }; Hist::ALL.len()];

/// Records `value` (nanoseconds) into the global histogram `hist`.
/// No-op (one relaxed load) when metrics are off.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{record_hist, hist_snapshot, set_metrics_enabled, reset_metrics, Hist};
/// reset_metrics();
/// set_metrics_enabled(true);
/// record_hist(Hist::ServeQueueWait, 1_500);
/// set_metrics_enabled(false);
/// assert_eq!(hist_snapshot(Hist::ServeQueueWait).count, 1);
/// reset_metrics();
/// ```
#[inline]
pub fn record_hist(hist: Hist, value: u64) {
    if crate::metrics_enabled() {
        HISTS[hist as usize].record(value);
    }
}

/// Snapshots one global histogram.
pub fn hist_snapshot(hist: Hist) -> HistSnapshot {
    HISTS[hist as usize].snapshot()
}

/// Clears every global histogram.
pub(crate) fn reset_hists() {
    for h in &HISTS {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_lands_in_exactly_one_bucket() {
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 95, 96, 97, u64::MAX - 1, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i), "v={v} bucket={i}");
            if i > 0 {
                assert!(v > Histogram::bucket_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn bucket_bounds_are_non_decreasing() {
        for i in 1..Histogram::BUCKETS {
            assert!(
                Histogram::bucket_bound(i) >= Histogram::bucket_bound(i - 1),
                "bucket {i}"
            );
        }
        assert_eq!(Histogram::bucket_bound(Histogram::BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Bucket bounds quantize upward, but never past the max.
        assert!(s.p50() >= 50 && s.p50() <= 63, "p50 = {}", s.p50());
        assert!(s.p99() >= 99 && s.p99() <= 100, "p99 = {}", s.p99());
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99() && s.p99() <= s.p999());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50(), s.p999()), (0, 0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_commutative_and_lossless() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [3u64, 9, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, u64::MAX, 17] {
            b.record(v);
            both.record(v);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.merge(&sb), both.snapshot());
        assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn empty_snapshot_json_has_null_percentiles_and_zero_mean() {
        // Regression: a zero-count histogram must serialize to clean
        // JSON — percentiles null, mean 0 — never NaN/inf tokens that
        // would make the whole metrics document unparseable.
        let text = Histogram::new().snapshot().to_json().to_string();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let parsed = Json::parse(&text).expect("empty-hist JSON must parse");
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(0));
        assert_eq!(parsed.get("mean").and_then(Json::as_f64), Some(0.0));
        for key in ["p50", "p90", "p99", "p999"] {
            assert!(
                matches!(parsed.get(key), Some(Json::Null)),
                "{key} of an empty histogram must be null, got {:?}",
                parsed.get(key)
            );
        }
        assert_eq!(
            parsed.get("buckets").and_then(Json::as_array).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn snapshot_json_has_stats_and_nonempty_buckets() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        let doc = h.snapshot().to_json();
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(2));
        let buckets = parsed.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].at(1).and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn global_registry_is_gated_on_the_metrics_flag() {
        let _guard = crate::metrics::test_lock::hold();
        crate::reset_metrics();
        record_hist(Hist::ExploreChunk, 42);
        assert_eq!(hist_snapshot(Hist::ExploreChunk).count, 0);
        crate::set_metrics_enabled(true);
        record_hist(Hist::ExploreChunk, 42);
        crate::set_metrics_enabled(false);
        assert_eq!(hist_snapshot(Hist::ExploreChunk).count, 1);
        crate::reset_metrics();
        assert_eq!(hist_snapshot(Hist::ExploreChunk).count, 0);
    }
}
