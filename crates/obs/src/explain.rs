//! The exploration audit log: a thread-safe NDJSON record sink.
//!
//! The eq. 12–22 cost model evaluates thousands of copy candidates and
//! keeps a handful; everything else is silently dominated or pruned.
//! [`Explain`] is the sink those decisions are written into when the user
//! passes `--explain FILE`: one structured JSON record per decision,
//! appended in deterministic generation order, serialized to NDJSON
//! (one object per line).
//!
//! The sink is threaded through the exploration as an `Option<&Explain>`
//! so the disabled path stays zero-cost: callers guard record
//! *construction* behind the option, and `None` means no allocation and
//! no locking on the hot path. The sink itself is a mutex around a
//! vector of pre-serialized lines — `Sync`, so the order-preserving
//! parallel pair sweep can hand records back from worker closures and
//! the caller can append them in pair order, keeping the log
//! byte-identical regardless of thread count.

use std::sync::Mutex;

use crate::json::Json;

/// An append-only sink of exploration decision records.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{Explain, Json};
///
/// let sink = Explain::new();
/// sink.emit(&Json::obj([("record", Json::str("candidate")), ("id", Json::UInt(0))]));
/// assert_eq!(sink.len(), 1);
/// assert!(sink.to_ndjson().starts_with("{\"record\":\"candidate\""));
/// ```
#[derive(Debug, Default)]
pub struct Explain {
    lines: Mutex<Vec<String>>,
}

impl Explain {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record, serialized immediately to its NDJSON line.
    pub fn emit(&self, record: &Json) {
        self.lines
            .lock()
            .expect("explain sink poisoned")
            .push(record.to_string());
    }

    /// Appends a batch of pre-serialized lines in order. Used by the
    /// parallel sweep to splice per-pair record batches back in
    /// deterministic pair order.
    pub fn emit_lines(&self, lines: impl IntoIterator<Item = String>) {
        self.lines
            .lock()
            .expect("explain sink poisoned")
            .extend(lines);
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("explain sink poisoned").len()
    }

    /// Whether no record has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every record line, in emission order.
    pub fn records(&self) -> Vec<String> {
        self.lines.lock().expect("explain sink poisoned").clone()
    }

    /// The whole log as NDJSON: one record per line, trailing newline.
    /// Empty string when no records were emitted.
    pub fn to_ndjson(&self) -> String {
        let lines = self.lines.lock().expect("explain sink poisoned");
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_keep_emission_order() {
        let sink = Explain::new();
        assert!(sink.is_empty());
        sink.emit(&Json::obj([("id", Json::UInt(0))]));
        sink.emit_lines(["{\"id\":1}".to_string(), "{\"id\":2}".to_string()]);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.to_ndjson(), "{\"id\":0}\n{\"id\":1}\n{\"id\":2}\n");
        for (i, line) in sink.records().iter().enumerate() {
            let parsed = Json::parse(line).expect("each record is one JSON object");
            assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(i as u64));
        }
    }

    #[test]
    fn empty_sink_serializes_to_empty_string() {
        assert_eq!(Explain::new().to_ndjson(), "");
    }
}
