//! End-to-end request tracing: trace ids, span contexts, and Chrome
//! trace-event export.
//!
//! The aggregated spans of [`crate::span`] answer "where does time go
//! on average"; this module answers "where did *this request* spend its
//! time". A [`TraceCtx`] carries a 64-bit trace id (minted by SplitMix64
//! from a process-seeded counter — no wall-clock reads, so tests stay
//! deterministic-ish and hermetic) plus the id of the current span.
//! Contexts are propagated **explicitly** across thread hops: the server
//! captures a request's ctx into the worker-pool job, the parallel sweep
//! captures the caller's ctx into its scoped workers, and each side
//! re-installs it with [`TraceCtx::attach`].
//!
//! Completed spans are buffered in a bounded queue (oldest dropped) and
//! exported as Chrome trace-event JSON ([`chrome_trace_json`]) — the
//! format `chrome://tracing` and <https://ui.perfetto.dev> load
//! directly. Recording is gated on its own flag
//! ([`set_tracing_enabled`]), independent of the metrics registry, so a
//! server can run with counters on and tracing off.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

static TRACING: AtomicBool = AtomicBool::new(false);
/// Completed spans awaiting export, oldest first.
static EVENTS: Mutex<VecDeque<TraceEvent>> = Mutex::new(VecDeque::new());
/// Monotonic span-id allocator (0 means "no span" / root).
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
/// Monotonic trace-id counter, mixed with the process seed.
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Bound on buffered completed spans; beyond it the oldest are dropped
/// so an unscraped long-running server cannot grow without limit.
pub const MAX_TRACE_EVENTS: usize = 65_536;

thread_local! {
    /// Stack of contexts installed on this thread (attach guards and
    /// open trace spans), innermost last.
    static CTX_STACK: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
    /// Small dense per-thread id for trace export (ThreadId's integer
    /// form is unstable).
    static TID: u64 = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        NEXT_TID.fetch_add(1, Ordering::Relaxed)
    };
}

/// SplitMix64 output function — the same mixer `datareuse-proptest`
/// uses, re-declared here to keep `obs` a leaf crate.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The process-wide trace epoch: all event timestamps are nanoseconds
/// since the first call. Monotonic, no wall clock involved.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch. Use this (not `Instant`
/// arithmetic of your own) when feeding [`record_span_at`] so all spans
/// share one timeline.
pub fn trace_now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turns trace-event recording on or off for the whole process.
pub fn set_tracing_enabled(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether trace-event recording is currently on.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// A trace context: which trace this work belongs to and which span is
/// its parent. `Copy`, 16 bytes — made to be captured into closures
/// that hop threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The 64-bit trace id shared by every span of one request.
    pub trace_id: u64,
    /// The span new children should report as their parent (0 = root).
    pub span_id: u64,
}

impl TraceCtx {
    /// Mints a context with a fresh trace id and no parent span.
    ///
    /// Ids come from SplitMix64 over a process-seeded counter (seeded
    /// with the process id), so they are unique within a process,
    /// collision-resistant across concurrent processes, and involve no
    /// wall-clock read.
    pub fn root() -> TraceCtx {
        static SEED: OnceLock<u64> = OnceLock::new();
        let seed = *SEED.get_or_init(|| splitmix64(u64::from(std::process::id())));
        let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        TraceCtx {
            trace_id: splitmix64(seed ^ n),
            span_id: 0,
        }
    }

    /// The context currently installed on this thread (by
    /// [`TraceCtx::attach`] or an open [`TraceSpan`]), if any.
    pub fn current() -> Option<TraceCtx> {
        CTX_STACK.with(|stack| stack.borrow().last().copied())
    }

    /// Installs this context as the thread's current one until the
    /// returned guard drops. This is the explicit propagation primitive:
    /// capture a ctx into a closure, attach it on the thread that runs
    /// the closure, and spans opened there nest under the right parent.
    pub fn attach(self) -> AttachGuard {
        CTX_STACK.with(|stack| stack.borrow_mut().push(self));
        AttachGuard(())
    }
}

/// RAII guard from [`TraceCtx::attach`]; restores the previous context
/// on drop.
#[derive(Debug)]
pub struct AttachGuard(());

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CTX_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// One completed span, ready for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a code location, like [`crate::span`] names).
    pub name: &'static str,
    /// Free-form detail (op name, kernel) shown in the trace viewer.
    pub detail: String,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's own id.
    pub span_id: u64,
    /// Parent span id (0 = root span of its trace).
    pub parent_span: u64,
    /// Dense per-thread id of the recording thread.
    pub tid: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

fn push_event(event: TraceEvent) {
    let mut events = EVENTS.lock().expect("trace event buffer poisoned");
    if events.len() >= MAX_TRACE_EVENTS {
        events.pop_front();
    }
    events.push_back(event);
}

/// An open traced region; records a [`TraceEvent`] on drop. Created by
/// [`trace_span`] / [`trace_span_with`].
#[derive(Debug)]
pub struct TraceSpan {
    /// `None` when tracing was disabled at creation — drop is a no-op.
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    detail: String,
    ctx: TraceCtx,
    parent_span: u64,
    started: Instant,
    ts_ns: u64,
}

impl TraceSpan {
    /// The context children of this span should inherit (this span as
    /// parent). `None` when tracing is disabled.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.live.as_ref().map(|l| l.ctx)
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        CTX_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        push_event(TraceEvent {
            name: live.name,
            detail: live.detail,
            trace_id: live.ctx.trace_id,
            span_id: live.ctx.span_id,
            parent_span: live.parent_span,
            tid: TID.with(|t| *t),
            ts_ns: live.ts_ns,
            dur_ns: live.started.elapsed().as_nanos() as u64,
        });
    }
}

/// Opens a traced span named `name` under the thread's current context
/// (a fresh root trace if none is installed). Inert when tracing is
/// disabled.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{trace_span, take_trace_events, set_tracing_enabled};
/// set_tracing_enabled(true);
/// {
///     let _outer = trace_span("request");
///     let _inner = trace_span("execute");
/// }
/// set_tracing_enabled(false);
/// let events = take_trace_events();
/// assert_eq!(events.len(), 2);
/// // Inner completes first and points at the outer span.
/// assert_eq!(events[0].parent_span, events[1].span_id);
/// assert_eq!(events[0].trace_id, events[1].trace_id);
/// ```
pub fn trace_span(name: &'static str) -> TraceSpan {
    trace_span_with(name, String::new())
}

/// Like [`trace_span`], with a free-form `detail` string exported in the
/// event's `args` (op name, kernel, …).
pub fn trace_span_with(name: &'static str, detail: impl Into<String>) -> TraceSpan {
    if !tracing_enabled() {
        return TraceSpan { live: None };
    }
    let parent = TraceCtx::current().unwrap_or_else(TraceCtx::root);
    let ctx = TraceCtx {
        trace_id: parent.trace_id,
        span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
    };
    CTX_STACK.with(|stack| stack.borrow_mut().push(ctx));
    TraceSpan {
        live: Some(LiveSpan {
            name,
            detail: detail.into(),
            ctx,
            parent_span: parent.span_id,
            started: Instant::now(),
            ts_ns: trace_now_ns(),
        }),
    }
}

/// Records a completed span directly, for intervals whose start and end
/// live on different threads (queue wait: submitted on the connection
/// thread, picked up on a worker). `ts_ns` must come from
/// [`trace_now_ns`]. No-op when tracing is disabled.
pub fn record_span_at(name: &'static str, ctx: TraceCtx, ts_ns: u64, dur_ns: u64) {
    if !tracing_enabled() {
        return;
    }
    push_event(TraceEvent {
        name,
        detail: String::new(),
        trace_id: ctx.trace_id,
        span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
        parent_span: ctx.span_id,
        tid: TID.with(|t| *t),
        ts_ns,
        dur_ns,
    });
}

/// Drains and returns all buffered completed spans, oldest first.
pub fn take_trace_events() -> Vec<TraceEvent> {
    EVENTS
        .lock()
        .expect("trace event buffer poisoned")
        .drain(..)
        .collect()
}

/// Clears the event buffer without returning it.
pub(crate) fn reset_tracing() {
    EVENTS.lock().expect("trace event buffer poisoned").clear();
}

/// Renders completed spans as a Chrome trace-event document
/// (`{"traceEvents": [...]}` with `ph: "X"` duration events), loadable
/// in `chrome://tracing` and Perfetto. Timestamps are microseconds with
/// sub-µs fractions preserved; trace and span ids ride in `args`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    Json::obj([
        ("displayTimeUnit", Json::str("ns")),
        (
            "traceEvents",
            Json::arr(events.iter().map(|e| {
                let mut args = vec![
                    ("trace_id".to_string(), Json::str(format!("{:016x}", e.trace_id))),
                    ("span_id".to_string(), Json::UInt(e.span_id)),
                    ("parent_span".to_string(), Json::UInt(e.parent_span)),
                ];
                if !e.detail.is_empty() {
                    args.push(("detail".to_string(), Json::str(e.detail.clone())));
                }
                Json::obj([
                    ("name", Json::str(e.name)),
                    ("ph", Json::str("X")),
                    ("pid", Json::UInt(1)),
                    ("tid", Json::UInt(e.tid)),
                    ("ts", Json::Num(e.ts_ns as f64 / 1_000.0)),
                    ("dur", Json::Num((e.dur_ns.max(1)) as f64 / 1_000.0)),
                    ("args", Json::Obj(args)),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_lock;

    #[test]
    fn root_ids_are_distinct_and_nonzero() {
        let a = TraceCtx::root();
        let b = TraceCtx::root();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id, 0);
        assert_eq!(a.span_id, 0);
    }

    #[test]
    fn disabled_tracing_records_nothing_and_has_no_ctx() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        {
            let s = trace_span("ghost");
            assert!(s.ctx().is_none());
        }
        assert!(take_trace_events().is_empty());
    }

    #[test]
    fn spans_nest_across_an_explicit_thread_hop() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        set_tracing_enabled(true);
        let child_ctx;
        {
            let request = trace_span_with("request", "explore");
            child_ctx = request.ctx().expect("tracing on");
            let handle = std::thread::spawn(move || {
                let _attach = child_ctx.attach();
                let _exec = trace_span("execute");
            });
            handle.join().unwrap();
        }
        set_tracing_enabled(false);
        let events = take_trace_events();
        assert_eq!(events.len(), 2);
        let exec = events.iter().find(|e| e.name == "execute").unwrap();
        let request = events.iter().find(|e| e.name == "request").unwrap();
        assert_eq!(exec.trace_id, request.trace_id);
        assert_eq!(exec.parent_span, request.span_id);
        assert_eq!(request.parent_span, 0);
        assert_eq!(request.detail, "explore");
        crate::reset_metrics();
    }

    #[test]
    fn chrome_export_parses_and_carries_ids() {
        let events = vec![TraceEvent {
            name: "request",
            detail: "explore".to_string(),
            trace_id: 0xabcd,
            span_id: 7,
            parent_span: 0,
            tid: 3,
            ts_ns: 2_500,
            dur_ns: 1_000,
        }];
        let text = chrome_trace_json(&events).to_string();
        let doc = Json::parse(&text).unwrap();
        let items = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(items[0].get("ts").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            items[0]
                .get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str),
            Some("000000000000abcd")
        );
    }

    #[test]
    fn event_buffer_is_bounded() {
        let _guard = test_lock::hold();
        crate::reset_metrics();
        set_tracing_enabled(true);
        let ctx = TraceCtx::root();
        for _ in 0..(MAX_TRACE_EVENTS + 10) {
            record_span_at("tick", ctx, 0, 1);
        }
        set_tracing_enabled(false);
        assert_eq!(take_trace_events().len(), MAX_TRACE_EVENTS);
        crate::reset_metrics();
    }
}
