//! Hierarchical timed spans.
//!
//! A [`SpanGuard`] times the region between its creation and drop and
//! charges the elapsed nanoseconds to a `/`-joined path built from the
//! stack of open spans on the current thread (`explore/pairs`,
//! `explore/chains/pareto`, …). Aggregation is by path: each path gets a
//! call count and a total duration, which [`crate::snapshot`] reports in
//! the `spans` section.
//!
//! When metrics are disabled ([`crate::metrics_enabled`] is false) the
//! guard is inert: no clock read, no thread-local push, no lock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated span data: path → (calls, total nanoseconds).
static SPANS: Mutex<BTreeMap<String, (u64, u64)>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; charges elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when metrics were disabled at creation — drop is a no-op.
    started: Option<Instant>,
}

/// Opens a timed span named `name`, nested under any spans already open
/// on this thread. Returns a guard that records on drop.
///
/// `name` is `&'static str` by design: span names are code locations, not
/// data, and static names keep the disabled path allocation-free.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{span, snapshot, set_metrics_enabled, reset_metrics};
/// reset_metrics();
/// set_metrics_enabled(true);
/// {
///     let _outer = span("outer");
///     let _inner = span("inner");
/// }
/// set_metrics_enabled(false);
/// let spans = snapshot().spans;
/// let paths: Vec<&str> = spans.iter().map(|(p, _, _)| p.as_str()).collect();
/// assert_eq!(paths, ["outer", "outer/inner"]);
/// assert!(spans.iter().all(|&(_, calls, _)| calls == 1));
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::metrics_enabled() {
        return SpanGuard { started: None };
    }
    STACK.with(|stack| stack.borrow_mut().push(name));
    SpanGuard {
        started: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let elapsed = started.elapsed().as_nanos() as u64;
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut spans = SPANS.lock().expect("span registry poisoned");
        let entry = spans.entry(path).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += elapsed;
    }
}

/// Copies the aggregated spans as `(path, calls, total_ns)` rows, sorted
/// by path (the `BTreeMap` order).
pub(crate) fn span_rows() -> Vec<(String, u64, u64)> {
    SPANS
        .lock()
        .expect("span registry poisoned")
        .iter()
        .map(|(path, &(calls, ns))| (path.clone(), calls, ns))
        .collect()
}

/// Clears all aggregated span data.
pub(crate) fn reset_spans() {
    SPANS.lock().expect("span registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_lock;
    use crate::{reset_metrics, set_metrics_enabled, snapshot};

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock::hold();
        reset_metrics();
        {
            let _s = span("ghost");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn nested_spans_aggregate_by_path() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        for _ in 0..3 {
            let _outer = span("explore");
            {
                let _inner = span("pairs");
            }
            {
                let _inner = span("chains");
            }
        }
        set_metrics_enabled(false);
        let rows = snapshot().spans;
        let by_path: std::collections::HashMap<&str, u64> = rows
            .iter()
            .map(|(path, calls, _)| (path.as_str(), *calls))
            .collect();
        assert_eq!(by_path["explore"], 3);
        assert_eq!(by_path["explore/pairs"], 3);
        assert_eq!(by_path["explore/chains"], 3);
        reset_metrics();
    }

    #[test]
    fn span_opened_while_disabled_stays_inert_if_enabled_later() {
        let _guard = test_lock::hold();
        reset_metrics();
        let guard = span("late");
        set_metrics_enabled(true);
        drop(guard); // must not pop a stack entry it never pushed
        set_metrics_enabled(false);
        assert!(snapshot().spans.is_empty());
        reset_metrics();
    }
}
