//! Hierarchical timed spans.
//!
//! A [`SpanGuard`] times the region between its creation and drop and
//! charges the elapsed nanoseconds — and the bytes this thread allocated
//! in between, sampled from [`crate::thread_alloc_bytes`] — to a
//! `/`-joined path built from the stack of open spans on the current
//! thread (`explore/pairs`, `explore/chains/pareto`, …). Aggregation is
//! by path: each path gets a call count, a total duration, and a total
//! byte count, which [`crate::snapshot`] reports in the `spans` section.
//! Bytes are cumulative exactly like time: a parent span's bytes include
//! its same-thread children's, so the profiler can subtract direct
//! children to obtain self-allocation. Allocations made by *other*
//! threads (e.g. a parallel sweep's workers) are not charged to the
//! opening thread's span — they show up in the process-wide
//! [`crate::alloc_snapshot`] tallies instead.
//!
//! When metrics are disabled ([`crate::metrics_enabled`] is false) the
//! guard is inert: no clock read, no thread-local push, no lock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated span data: path → (calls, total nanoseconds, total bytes
/// allocated in scope by the opening thread).
static SPANS: Mutex<BTreeMap<String, (u64, u64, u64)>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; charges elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when metrics were disabled at creation — drop is a no-op.
    started: Option<Instant>,
    /// This thread's cumulative allocated bytes when the span opened.
    bytes_at_open: u64,
}

/// Opens a timed span named `name`, nested under any spans already open
/// on this thread. Returns a guard that records on drop.
///
/// `name` is `&'static str` by design: span names are code locations, not
/// data, and static names keep the disabled path allocation-free.
///
/// # Examples
///
/// ```
/// use datareuse_obs::{span, snapshot, set_metrics_enabled, reset_metrics};
/// reset_metrics();
/// set_metrics_enabled(true);
/// {
///     let _outer = span("outer");
///     let _inner = span("inner");
/// }
/// set_metrics_enabled(false);
/// let spans = snapshot().spans;
/// let paths: Vec<&str> = spans.iter().map(|(p, ..)| p.as_str()).collect();
/// assert_eq!(paths, ["outer", "outer/inner"]);
/// assert!(spans.iter().all(|&(_, calls, ..)| calls == 1));
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::metrics_enabled() {
        return SpanGuard {
            started: None,
            bytes_at_open: 0,
        };
    }
    STACK.with(|stack| stack.borrow_mut().push(name));
    SpanGuard {
        started: Some(Instant::now()),
        bytes_at_open: crate::thread_alloc_bytes(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let elapsed = started.elapsed().as_nanos() as u64;
        // Saturating: the thread counter is monotone, but guards can be
        // dropped on a different thread than they were created on.
        let bytes = crate::thread_alloc_bytes().saturating_sub(self.bytes_at_open);
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut spans = SPANS.lock().expect("span registry poisoned");
        let entry = spans.entry(path).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += elapsed;
        entry.2 += bytes;
    }
}

/// Copies the aggregated spans as `(path, calls, total_ns, total_bytes)`
/// rows, sorted by path (the `BTreeMap` order).
pub(crate) fn span_rows() -> Vec<(String, u64, u64, u64)> {
    SPANS
        .lock()
        .expect("span registry poisoned")
        .iter()
        .map(|(path, &(calls, ns, bytes))| (path.clone(), calls, ns, bytes))
        .collect()
}

/// Clears all aggregated span data.
pub(crate) fn reset_spans() {
    SPANS.lock().expect("span registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_lock;
    use crate::{reset_metrics, set_metrics_enabled, snapshot};

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock::hold();
        reset_metrics();
        {
            let _s = span("ghost");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn nested_spans_aggregate_by_path() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        for _ in 0..3 {
            let _outer = span("explore");
            {
                let _inner = span("pairs");
            }
            {
                let _inner = span("chains");
            }
        }
        set_metrics_enabled(false);
        let rows = snapshot().spans;
        let by_path: std::collections::HashMap<&str, u64> = rows
            .iter()
            .map(|(path, calls, ..)| (path.as_str(), *calls))
            .collect();
        assert_eq!(by_path["explore"], 3);
        assert_eq!(by_path["explore/pairs"], 3);
        assert_eq!(by_path["explore/chains"], 3);
        reset_metrics();
    }

    #[test]
    fn spans_charge_bytes_allocated_in_scope_cumulatively() {
        let _guard = test_lock::hold();
        reset_metrics();
        set_metrics_enabled(true);
        {
            let _outer = span("outer");
            let _held = vec![1u8; 1 << 20]; // charged to "outer" only
            {
                let _inner = span("inner");
                let _tmp = vec![2u8; 1 << 20]; // charged to both paths
            }
        }
        set_metrics_enabled(false);
        let rows = snapshot().spans;
        let bytes_of = |wanted: &str| {
            rows.iter()
                .find(|(path, ..)| path == wanted)
                .map(|&(_, _, _, bytes)| bytes)
                .unwrap_or_else(|| panic!("no span row for {wanted}"))
        };
        let outer = bytes_of("outer");
        let inner = bytes_of("outer/inner");
        assert!(inner >= 1 << 20, "inner missed its 1 MiB: {inner}");
        assert!(
            outer >= inner + (1 << 20),
            "outer ({outer}) must include inner ({inner}) plus its own MiB"
        );
        reset_metrics();
    }

    #[test]
    fn span_opened_while_disabled_stays_inert_if_enabled_later() {
        let _guard = test_lock::hold();
        reset_metrics();
        let guard = span("late");
        set_metrics_enabled(true);
        drop(guard); // must not pop a stack entry it never pushed
        set_metrics_enabled(false);
        assert!(snapshot().spans.is_empty());
        reset_metrics();
    }
}
