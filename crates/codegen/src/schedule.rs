//! Executable transfer schedules — the semantics of the Fig. 8 template.
//!
//! Emitting C text is not a proof of correctness. This module *executes*
//! the copy-candidate discipline the template encodes — fill on first
//! access, retain along the reuse dependency, bypass or stream not-reused
//! data, free at last use — against a reference array, checking that every
//! buffered read returns the right element and counting the per-level
//! traffic. The tests then assert the counts coincide exactly with the
//! closed forms of `datareuse-core`, which is how this project validates
//! that the paper's generated code achieves the paper's predicted
//! `F_R`/`A` numbers.

use std::collections::HashMap;
use std::fmt;

use datareuse_core::{AnalyzeError, PairGeometry, ReuseClass};
use datareuse_loopir::{AccessKind, IterSpace, Program};

/// The copy strategy to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Maximum reuse in the pair iteration space (Section 6.1).
    MaxReuse,
    /// Partial reuse without bypass (eq. 16–18).
    Partial {
        /// The γ split parameter.
        gamma: i64,
    },
    /// Partial reuse with bypass (eq. 19–22).
    PartialBypass {
        /// The γ split parameter.
        gamma: i64,
    },
}

/// Outcome of executing a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Total accesses executed.
    pub accesses: u64,
    /// Reads served by the copy-candidate.
    pub hits: u64,
    /// Elements written into the copy-candidate.
    pub fills: u64,
    /// Accesses served directly from the level above.
    pub bypasses: u64,
    /// Peak number of simultaneously live elements — must stay within the
    /// analytical copy-candidate size `A`.
    pub max_occupancy: u64,
    /// Buffered reads returning the wrong element (0 for a correct
    /// template).
    pub value_errors: u64,
    /// Largest number of fills issued within a single innermost iteration
    /// (burst width the memory ports must sustain without buffering).
    pub max_fills_per_iteration: u64,
    /// Largest number of fills issued within one iteration of the pair's
    /// outer loop `j` — the burst the single-assignment variant may spread
    /// over the whole `j`-iteration (SCBD freedom, Section 6.1).
    pub max_fills_per_outer_iteration: u64,
}

impl ScheduleReport {
    /// The reuse factor realized by the executed schedule.
    pub fn reuse_factor(&self) -> f64 {
        let copied = self.accesses - self.bypasses;
        if self.fills == 0 {
            copied as f64
        } else {
            copied as f64 / self.fills as f64
        }
    }
}

/// Errors from schedule construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// Geometry extraction failed.
    Analyze(AnalyzeError),
    /// The pair carries no reuse; there is nothing to copy.
    NoReuse,
    /// The γ parameter is outside the validity interval.
    BadGamma {
        /// The offending γ.
        gamma: i64,
    },
    /// The program does not contain the requested nest.
    NoSuchNest {
        /// The offending nest index.
        nest: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Analyze(e) => write!(f, "analysis failed: {e}"),
            Self::NoReuse => write!(f, "the loop pair carries no reuse"),
            Self::BadGamma { gamma } => write!(f, "γ = {gamma} outside the validity interval"),
            Self::NoSuchNest { nest } => write!(f, "nest index {nest} does not exist"),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Analyze(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalyzeError> for ScheduleError {
    fn from(e: AnalyzeError) -> Self {
        Self::Analyze(e)
    }
}

/// Reference value stored at an address — a non-trivial mixing so slot
/// confusion in the schedule cannot return accidentally-right data.
fn reference_value(addr: u64) -> u64 {
    addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (addr >> 7)
}

struct PairFlags {
    bp: i64,
    cp: i64,
    anti: bool,
    same_element: bool,
    j_range: i64,
    k_range: i64,
    gamma: Option<i64>,
}

impl PairFlags {
    /// True when iteration `(j, k)` (0-based) lies in the reuse region.
    fn in_region(&self, k: i64) -> bool {
        match self.gamma {
            None => true,
            Some(g) => {
                if self.anti {
                    k < g + self.bp
                } else {
                    k > self.k_range - 1 - g - self.bp
                }
            }
        }
    }

    /// True when the element accessed at `(j, k)` has a future access
    /// inside the (region-restricted) pair space.
    fn keep_after(&self, j: i64, k: i64) -> bool {
        if self.same_element {
            // rank(B) = 0: the single element is live until the very last
            // iteration of the pair space.
            return j < self.j_range - 1 || k < self.k_range - 1;
        }
        if self.cp == 0 {
            // c' = 0: the index is independent of k — the element repeats
            // for every k of the current j-iteration and dies with it.
            return k < self.k_range - 1;
        }
        if j >= self.j_range - self.cp {
            return false;
        }
        match (self.gamma, self.anti) {
            (None, false) => k >= self.bp,
            (None, true) => k <= self.k_range - 1 - self.bp,
            (Some(g), false) => k > self.k_range - 1 - g,
            (Some(g), true) => k < g,
        }
    }
}

/// Executes the copy-candidate schedule for `program.nests()[nest]`,
/// access `access`, over the loop pair `(outer, inner)` with `strategy`.
///
/// # Errors
///
/// Fails when the geometry cannot be extracted, when the pair carries no
/// reuse, or when a partial strategy uses an invalid γ.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::{run_schedule, Strategy};
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let report = run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse)?;
/// assert_eq!(report.value_errors, 0);
/// assert_eq!(report.fills, 23);       // one fill per distinct element
/// assert!(report.max_occupancy <= 7); // A_Max = c'(kRANGE − b') = 7
/// # Ok(())
/// # }
/// ```
pub fn run_schedule(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    strategy: Strategy,
) -> Result<ScheduleReport, ScheduleError> {
    let raw_nest = program
        .nests()
        .get(nest)
        .ok_or(ScheduleError::NoSuchNest { nest })?;
    let geom = PairGeometry::from_access(raw_nest, access, outer, inner)?;
    let (bp, cp, anti) = match geom.class {
        ReuseClass::NoReuse => return Err(ScheduleError::NoReuse),
        ReuseClass::SameElement => (0, 0, false),
        ReuseClass::Vector { bp, cp, anti } => (bp, cp, anti),
    };
    let gamma = match strategy {
        Strategy::MaxReuse => None,
        Strategy::Partial { gamma } | Strategy::PartialBypass { gamma } => {
            if gamma < bp || gamma >= geom.k_range - bp || cp == 0 {
                return Err(ScheduleError::BadGamma { gamma });
            }
            Some(gamma)
        }
    };
    let bypassing = matches!(strategy, Strategy::PartialBypass { .. });
    let flags = PairFlags {
        bp,
        cp,
        anti,
        same_element: matches!(geom.class, ReuseClass::SameElement),
        j_range: geom.j_range,
        k_range: geom.k_range,
        gamma,
    };

    let norm = raw_nest.normalized();
    let loops = norm.loops();
    let decl = program
        .array(norm.accesses()[access].array())
        .expect("validated program");
    // All accesses merged into the group execute through the buffer.
    let signature = norm.accesses()[access].indices();
    let member_ids: Vec<usize> = norm
        .accesses()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.indices() == signature && a.kind() == AccessKind::Read)
        .map(|(i, _)| i)
        .collect();
    // Iterators that repeat the same data (repeat_same loops): freeing is
    // deferred until they sit at their upper bound.
    let rs_loops: Vec<usize> = (0..loops.len())
        .filter(|&d| {
            d > outer
                && d != inner
                && signature.iter().all(|e| e.coeff(loops[d].name()) == 0)
        })
        .collect();

    let mut buffer: HashMap<u64, u64> = HashMap::new();
    let mut report = ScheduleReport {
        accesses: 0,
        hits: 0,
        fills: 0,
        bypasses: 0,
        max_occupancy: 0,
        value_errors: 0,
        max_fills_per_iteration: 0,
        max_fills_per_outer_iteration: 0,
    };
    let mut fills_this_j = 0u64;
    let mut last_j = i64::MIN;

    let members = member_ids.len() as u64;
    for point in IterSpace::over(loops) {
        let j = point[outer];
        let k = point[inner];
        if j != last_j {
            report.max_fills_per_outer_iteration =
                report.max_fills_per_outer_iteration.max(fills_this_j);
            fills_this_j = 0;
            last_j = j;
        }
        let rs_at_max = rs_loops.iter().all(|&d| point[d] == loops[d].upper());
        // All group members share the index expression, hence the address.
        let acc = &norm.accesses()[access];
        let idx: Vec<i64> = acc
            .indices()
            .iter()
            .map(|e| e.eval(|n| norm.loop_index(n).map(|d| point[d])))
            .collect();
        let addr = decl.linearize(&idx);
        let expected = reference_value(addr);
        report.accesses += members;
        if bypassing && !flags.in_region(k) {
            report.bypasses += members;
            continue;
        }
        match buffer.get(&addr) {
            Some(&stored) => {
                report.hits += members;
                if stored != expected {
                    report.value_errors += 1;
                }
            }
            None => {
                // First member fills; the rest hit the fresh copy.
                report.fills += 1;
                report.hits += members - 1;
                fills_this_j += 1;
                report.max_fills_per_iteration = report.max_fills_per_iteration.max(1);
                buffer.insert(addr, expected);
            }
        }
        report.max_occupancy = report.max_occupancy.max(buffer.len() as u64);
        let keep = if flags.in_region(k) {
            !rs_at_max || flags.keep_after(j, k)
        } else {
            false // streamed-through, freed immediately
        };
        if !keep {
            buffer.remove(&addr);
        }
    }
    report.max_fills_per_outer_iteration =
        report.max_fills_per_outer_iteration.max(fills_this_j);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_core::{max_reuse, partial_reuse};
    use datareuse_loopir::parse_program;

    fn check_max(src: &str, outer: usize, inner: usize) -> ScheduleReport {
        let p = parse_program(src).unwrap();
        let geom = PairGeometry::from_access(&p.nests()[0], 0, outer, inner).unwrap();
        let point = max_reuse(&geom).expect("reuse exists");
        let report = run_schedule(&p, 0, 0, outer, inner, Strategy::MaxReuse).unwrap();
        assert_eq!(report.value_errors, 0, "wrong data read");
        assert_eq!(report.fills, point.fills, "fills != closed form");
        assert_eq!(report.accesses, point.c_tot);
        assert!(
            report.max_occupancy <= point.size,
            "occupancy {} exceeds A = {} ({src})",
            report.max_occupancy,
            point.size
        );
        report
    }

    #[test]
    fn max_reuse_canonical_window() {
        let r = check_max(
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
            0,
            1,
        );
        assert_eq!(r.max_occupancy, 7); // A_Max is tight
    }

    #[test]
    fn max_reuse_motion_estimation_inner_nest() {
        let r = check_max(
            "array Old[8][23];
             for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[i5][i4 + i6];
             } } }",
            0,
            2,
        );
        assert_eq!(r.max_occupancy, 56); // n·(n−1), §6.3
    }

    #[test]
    fn max_reuse_coprime_and_gcd_patterns() {
        check_max(
            "array A[60]; for j in 0..12 { for k in 0..10 { read A[2*j + 3*k]; } }",
            0,
            1,
        );
        check_max(
            "array A[70]; for j in 0..12 { for k in 0..10 { read A[2*j + 4*k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn max_reuse_anti_diagonal_occupancy() {
        let r = check_max(
            "array A[30]; for j in 0..12 { for k in 0..10 { read A[12 + k - j]; } }",
            0,
            1,
        );
        // A_Max(anti) = c'(kR − b') + b' = 10, and it is tight.
        assert_eq!(r.max_occupancy, 10);
    }

    #[test]
    fn max_reuse_same_element() {
        let p = parse_program("array A[4]; for j in 0..5 { for k in 0..6 { read A[2]; } }")
            .unwrap();
        let r = run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse).unwrap();
        assert_eq!(r.fills, 1);
        assert_eq!(r.hits, 29);
        assert_eq!(r.max_occupancy, 1);
        assert_eq!(r.value_errors, 0);
    }

    #[test]
    fn max_reuse_repeat_same_sweeps() {
        let src = "array A[23]; for j in 0..16 { for m in 0..4 { for k in 0..8 {
                     read A[j + k]; } } }";
        let p = parse_program(src).unwrap();
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 2).unwrap();
        let point = max_reuse(&geom).unwrap();
        let r = run_schedule(&p, 0, 0, 0, 2, Strategy::MaxReuse).unwrap();
        assert_eq!(r.value_errors, 0);
        assert_eq!(r.fills, point.fills);
        assert!(r.max_occupancy <= point.size);
    }

    #[test]
    fn partial_matches_closed_forms() {
        let src = "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }";
        let p = parse_program(src).unwrap();
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        for gamma in 1..7i64 {
            let point = partial_reuse(&geom, gamma, false).unwrap();
            let r = run_schedule(&p, 0, 0, 0, 1, Strategy::Partial { gamma }).unwrap();
            assert_eq!(r.value_errors, 0);
            assert_eq!(r.fills, point.fills, "γ={gamma}");
            assert!(
                r.max_occupancy <= point.size,
                "γ={gamma}: occupancy {} > A(γ) {}",
                r.max_occupancy,
                point.size
            );
        }
    }

    #[test]
    fn partial_bypass_matches_closed_forms() {
        let src = "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }";
        let p = parse_program(src).unwrap();
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        for gamma in 1..7i64 {
            let point = partial_reuse(&geom, gamma, true).unwrap();
            let r = run_schedule(&p, 0, 0, 0, 1, Strategy::PartialBypass { gamma }).unwrap();
            assert_eq!(r.value_errors, 0);
            assert_eq!(r.fills, point.fills, "γ={gamma}");
            assert_eq!(r.bypasses, point.bypasses, "γ={gamma}");
            assert!(r.max_occupancy <= point.size, "γ={gamma}");
        }
    }

    #[test]
    fn partial_bypass_me_inner_nest() {
        let src = "array Old[8][23];
                   for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
                     read Old[i5][i4 + i6]; } } }";
        let p = parse_program(src).unwrap();
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 2).unwrap();
        for gamma in [1i64, 3, 6] {
            let point = partial_reuse(&geom, gamma, true).unwrap();
            let r = run_schedule(&p, 0, 0, 0, 2, Strategy::PartialBypass { gamma }).unwrap();
            assert_eq!(r.value_errors, 0);
            assert_eq!(r.fills, point.fills, "γ={gamma}");
            assert_eq!(r.bypasses, point.bypasses, "γ={gamma}");
            assert!(r.max_occupancy <= point.size, "γ={gamma}");
        }
    }

    #[test]
    fn errors_on_no_reuse_and_bad_gamma() {
        let p = parse_program(
            "array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }",
        )
        .unwrap();
        assert!(matches!(
            run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse),
            Err(ScheduleError::NoReuse)
        ));
        let q = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        assert!(matches!(
            run_schedule(&q, 0, 0, 0, 1, Strategy::Partial { gamma: 0 }),
            Err(ScheduleError::BadGamma { gamma: 0 })
        ));
        assert!(matches!(
            run_schedule(&q, 0, 0, 0, 1, Strategy::Partial { gamma: 9 }),
            Err(ScheduleError::BadGamma { .. })
        ));
        assert!(matches!(
            run_schedule(&q, 3, 0, 0, 1, Strategy::MaxReuse),
            Err(ScheduleError::NoSuchNest { nest: 3 })
        ));
    }

    #[test]
    fn merged_group_members_hit_after_first() {
        let src = "array A[23]; for j in 0..16 { for k in 0..8 {
                     read A[j + k]; read A[j + k]; } }";
        let p = parse_program(src).unwrap();
        let r = run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse).unwrap();
        assert_eq!(r.accesses, 256);
        assert_eq!(r.fills, 23);
        assert_eq!(r.value_errors, 0);
    }

    #[test]
    fn realized_reuse_factor_matches_point() {
        let src = "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }";
        let p = parse_program(src).unwrap();
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        let point = max_reuse(&geom).unwrap();
        let r = run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse).unwrap();
        assert!((r.reuse_factor() - point.reuse_factor()).abs() < 1e-12);
    }
}
