//! ADOPT-style address optimization of the generated templates.
//!
//! The paper hands its Fig. 8 output to the next stage: "The addressing
//! looks rather complicated, but can be linearized and greatly simplified
//! by the ADOPT tools for address optimization". This module is that
//! stage for the copy-buffer addressing: the `(j % c')` row and
//! `((k + (j/c')·b') % span)` column computations — a divide, a multiply
//! and two modulos per access — are strength-reduced into induction
//! variables maintained by increment-and-wrap updates, one comparison per
//! loop iteration and no multiplicative operators at all.

use datareuse_loopir::Program;

use crate::ctext::{c_type, CWriter};
use crate::schedule::ScheduleError;
use crate::template::{resolve_geometry, TemplateOptions};

/// Emits the transformed code with ADOPT-style strength-reduced copy
/// addressing.
///
/// Semantically identical to [`crate::emit_transformed`] (the integration
/// tests compile both against the original stream and compare checksums);
/// the single-assignment variant is not applicable here — its whole point
/// is to *avoid* address folding — and is rejected.
///
/// # Errors
///
/// Fails like [`crate::emit_transformed`], plus `BadGamma` is reused to
/// reject `single_assignment: true` options.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::{emit_transformed_adopt, TemplateOptions};
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let c = emit_transformed_adopt(&p, 0, 0, 0, 1, TemplateOptions::default())?;
/// assert!(c.contains("col++;")); // induction variable instead of `%`
/// assert!(c.contains("A_sub[row][col]"));
/// # Ok(())
/// # }
/// ```
pub fn emit_transformed_adopt(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    opts: TemplateOptions,
) -> Result<String, ScheduleError> {
    if opts.single_assignment {
        return Err(ScheduleError::NoReuse);
    }
    let (pair, tg) = resolve_geometry(program, nest, access, outer, inner, opts.strategy)?;
    let norm = program.nests()[nest].normalized();
    let loops = norm.loops();
    let acc = &norm.accesses()[access];
    let decl = program.array(acc.array()).expect("validated program");
    let bits = decl.elem_bits();

    let span = if tg.k_invariant {
        1
    } else {
        match tg.gamma {
            None => pair.k_range - tg.bp,
            Some(g) => g + i64::from(!tg.bypass),
        }
        .max(1)
    };
    let slice_loops: Vec<usize> = (0..loops.len())
        .filter(|&d| {
            d > tg.j_depth
                && d != tg.k_depth
                && acc.indices().iter().any(|e| e.coeff(loops[d].name()) != 0)
        })
        .collect();

    let j = loops[tg.j_depth].name();
    let k = loops[tg.k_depth].name();
    let sub = format!("{}_sub", acc.array());
    let mut dims = format!("[{}]", tg.cp);
    for &d in &slice_loops {
        dims.push_str(&format!("[{}]", loops[d].trip_count()));
    }
    dims.push_str(&format!("[{span}]"));

    // `row`/`colb` replace (j % c') and ((j / c') * b') % span; `col` walks
    // the k loop from colb with wrap-around — re-entering the k loop (next
    // slice iteration) restarts the walk.
    let mut w = CWriter::new();
    w.line(format!(
        "/* ADOPT-optimized copy-candidate for {} over pair ({j}, {k}) */",
        acc.array()
    ));
    w.line(format!("{} {sub}{dims};", c_type(bits)));
    if tg.gamma.is_some() && !tg.bypass {
        w.line(format!("{} {sub}_stream;", c_type(bits)));
    }
    w.line("int row = 0;  /* j % c' */");
    w.line("int colb = 0; /* ((j / c') * b') % span */");
    w.line("");
    for (d, l) in loops.iter().enumerate() {
        if d == tg.k_depth {
            w.line("int col = colb;");
        }
        w.open(format!(
            "for (int {n} = {lo}; {n} <= {hi}; {n}++) {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    let mut slot = format!("{sub}[row]");
    for &d in &slice_loops {
        slot.push_str(&format!("[{}]", loops[d].name()));
    }
    slot.push_str("[col]");
    let orig = {
        let subs: String = acc.indices().iter().map(|e| format!("[{e}]")).collect();
        format!("{}{subs}", acc.array())
    };
    let first = if tg.k_invariant {
        format!("({k} == 0)")
    } else {
        format!(
            "({j} < {cp} || {k} > {kfirst})",
            cp = tg.cp,
            kfirst = pair.k_range - 1 - tg.bp
        )
    };
    let body = |w: &mut CWriter| {
        w.open(format!("if ({first}) {{"));
        w.line(format!("{slot} = {orig}; /* copy from next level */"));
        w.close();
        w.line(format!("sink = {slot};"));
    };
    if let Some(g) = tg.gamma {
        let region = format!("{k} > {}", pair.k_range - 1 - g - tg.bp);
        w.open(format!("if ({region}) {{"));
        body(&mut w);
        w.open_else();
        if tg.bypass {
            w.line(format!("sink = {orig}; /* bypass */"));
        } else {
            w.line(format!("{sub}_stream = {orig};"));
            w.line(format!("sink = {sub}_stream;"));
        }
        w.close();
    } else {
        body(&mut w);
    }
    // Close loops innermost-out, emitting induction updates as the last
    // statements of their owning loop bodies.
    for d in (0..loops.len()).rev() {
        if d == tg.k_depth {
            // Per k iteration: advance the column with wrap.
            w.line("col++;");
            w.open(format!("if (col == {span}) {{"));
            w.line("col = 0;");
            w.close();
        }
        if d == tg.j_depth {
            // Per j iteration: advance row; every c' rows shift colb by b'.
            w.line("row++;");
            w.open(format!("if (row == {}) {{", tg.cp));
            w.line("row = 0;");
            w.line(format!("colb += {};", tg.bp));
            w.open(format!("if (colb >= {span}) {{"));
            w.line(format!("colb -= {span};"));
            w.close();
            w.close();
        }
        w.close();
    }
    Ok(w.into_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Strategy;
    use datareuse_loopir::parse_program;

    fn window() -> Program {
        parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }").unwrap()
    }

    /// Strips `/* … */` comments so operator checks see only code.
    fn strip_comments(c: &str) -> String {
        let mut out = String::new();
        let mut rest = c;
        while let Some(start) = rest.find("/*") {
            out.push_str(&rest[..start]);
            match rest[start..].find("*/") {
                Some(end) => rest = &rest[start + end + 2..],
                None => return out,
            }
        }
        out.push_str(rest);
        out
    }

    #[test]
    fn no_divides_multiplies_or_modulos_remain() {
        let c = emit_transformed_adopt(&window(), 0, 0, 0, 1, TemplateOptions::default()).unwrap();
        let code = strip_comments(&c);
        assert!(!code.contains('%'), "{c}");
        assert!(!code.contains('*'), "{c}");
        assert!(!code.contains('/'), "{c}");
        assert!(code.contains("col++;"));
        assert!(code.contains("row++;"));
        assert_eq!(c.matches('{').count(), c.matches('}').count());
        // The induction updates sit inside their loops.
        let row_pos = c.find("row++;").unwrap();
        let last_close = c.rfind('}').unwrap();
        assert!(row_pos < last_close);
    }

    #[test]
    fn partial_variants_keep_their_region_conditionals() {
        for strategy in [
            Strategy::Partial { gamma: 3 },
            Strategy::PartialBypass { gamma: 3 },
        ] {
            let c = emit_transformed_adopt(
                &window(),
                0,
                0,
                0,
                1,
                TemplateOptions {
                    strategy,
                    single_assignment: false,
                },
            )
            .unwrap();
            assert!(c.contains("if (k > 3) {"));
            assert_eq!(c.matches('{').count(), c.matches('}').count());
        }
    }

    #[test]
    fn slice_dimensions_survive() {
        let p = parse_program(
            "array Old[8][23];
             for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[i5][i4 + i6]; } } }",
        )
        .unwrap();
        let c = emit_transformed_adopt(&p, 0, 0, 0, 2, TemplateOptions::default()).unwrap();
        assert!(c.contains("Old_sub[1][8][7];"));
        assert!(c.contains("Old_sub[row][i5][col]"));
    }

    #[test]
    fn single_assignment_is_rejected() {
        let opts = TemplateOptions {
            strategy: Strategy::MaxReuse,
            single_assignment: true,
        };
        assert!(emit_transformed_adopt(&window(), 0, 0, 0, 1, opts).is_err());
    }
}
