//! The Fig. 8 code template and its variants.
//!
//! The paper's generic code introduces a copy `A_sub` of size
//! `c' × (kRANGE − b')` with a modulo replacement policy: the elements of
//! the previous `(c'−1)` j-iterations are kept, and within the current
//! j-iteration "the first b' elements … can be overwritten by the last b'
//! elements which are accessed for the first time". [`emit_transformed`]
//! renders that template (plus the partial/bypass and single-assignment
//! variants of Sections 6.2/6.1), and [`verify_fig8_addressing`] executes
//! the modulo addressing to prove no live element is ever overwritten.

use std::collections::{HashMap, HashSet};

use datareuse_core::{PairGeometry, ReuseClass};
use datareuse_loopir::{IterSpace, Program};

use crate::ctext::{c_type, CWriter};
use crate::schedule::{ScheduleError, Strategy};

/// Options for the transformed-code emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateOptions {
    /// Copy strategy to implement.
    pub strategy: Strategy,
    /// Emit the single-assignment variant: the copy dimensions are
    /// enlarged to `A_sub[c'][((jU−jL)/c')·b' + kU + 1]` and the modulo on
    /// the column index disappears, giving the SCBD step "the full freedom
    /// to schedule the updates at earlier time instances" (Section 6.1).
    pub single_assignment: bool,
}

impl Default for TemplateOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::MaxReuse,
            single_assignment: false,
        }
    }
}

pub(crate) struct TemplateGeom {
    pub(crate) bp: i64,
    pub(crate) cp: i64,
    /// True for `c' = 0`: the index does not depend on `k`, so the copy is
    /// a scalar refreshed at the first `k` iteration of every `j` (the
    /// paper's template assumes `c > 0`; this is its natural degenerate
    /// form).
    pub(crate) k_invariant: bool,
    pub(crate) j_depth: usize,
    pub(crate) k_depth: usize,
    pub(crate) gamma: Option<i64>,
    pub(crate) bypass: bool,
}

pub(crate) fn resolve_geometry(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    strategy: Strategy,
) -> Result<(PairGeometry, TemplateGeom), ScheduleError> {
    let raw_nest = program
        .nests()
        .get(nest)
        .ok_or(ScheduleError::NoSuchNest { nest })?;
    let geom = PairGeometry::from_access(raw_nest, access, outer, inner)?;
    let (bp, cp, k_invariant) = match geom.class {
        ReuseClass::NoReuse => return Err(ScheduleError::NoReuse),
        ReuseClass::SameElement => (0, 1, false),
        ReuseClass::Vector { bp, cp, .. } => (bp, cp.max(1), cp == 0),
    };
    let (gamma, bypass) = match strategy {
        Strategy::MaxReuse => (None, false),
        Strategy::Partial { gamma } => (Some(gamma), false),
        Strategy::PartialBypass { gamma } => (Some(gamma), true),
    };
    if let Some(g) = gamma {
        if k_invariant || g < bp || g >= geom.k_range - bp {
            return Err(ScheduleError::BadGamma { gamma: g });
        }
    }
    Ok((
        geom,
        TemplateGeom {
            bp,
            cp,
            k_invariant,
            j_depth: outer,
            k_depth: inner,
            gamma,
            bypass,
        },
    ))
}

/// Emits the transformed C code for one access following the paper's
/// template, with the copy-candidate introduced over the loop pair
/// `(outer, inner)`.
///
/// The emitted addressing "looks rather complicated, but can be linearized
/// and greatly simplified by the ADOPT tools for address optimization"
/// (the paper's own caveat) — it is meant as the input to those subsequent
/// steps, not as hand-polished code.
///
/// # Errors
///
/// Fails for missing nests/accesses, reuse-free pairs, or invalid γ.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::{emit_transformed, TemplateOptions};
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let c = emit_transformed(&p, 0, 0, 0, 1, TemplateOptions::default())?;
/// assert!(c.contains("A_sub"));
/// # Ok(())
/// # }
/// ```
pub fn emit_transformed(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    opts: TemplateOptions,
) -> Result<String, ScheduleError> {
    let (pair, tg) = resolve_geometry(program, nest, access, outer, inner, opts.strategy)?;
    let norm = program.nests()[nest].normalized();
    let loops = norm.loops();
    let acc = &norm.accesses()[access];
    let decl = program.array(acc.array()).expect("validated program");
    let bits = decl.elem_bits();

    let k_span = if tg.k_invariant {
        1
    } else {
        match tg.gamma {
            None => pair.k_range - tg.bp,
            Some(g) => g + i64::from(!tg.bypass),
        }
        .max(1)
    };
    let col_span = if opts.single_assignment {
        ((pair.j_range - 1) / tg.cp) * tg.bp + pair.k_range
    } else {
        k_span
    };
    // One buffer dimension per repeat-distinct loop inside the sub-nest.
    let slice_loops: Vec<usize> = (0..loops.len())
        .filter(|&d| {
            d > tg.j_depth
                && d != tg.k_depth
                && acc.indices().iter().any(|e| e.coeff(loops[d].name()) != 0)
        })
        .collect();

    let j = loops[tg.j_depth].name();
    let k = loops[tg.k_depth].name();
    let sub = format!("{}_sub", acc.array());
    let mut w = CWriter::new();
    w.line(format!(
        "/* copy-candidate for {} over pair ({j}, {k}): b'={}, c'={}, {} */",
        acc.array(),
        tg.bp,
        tg.cp,
        match tg.gamma {
            None => "maximum reuse".to_string(),
            Some(g) if tg.bypass => format!("partial reuse with bypass, gamma={g}"),
            Some(g) => format!("partial reuse, gamma={g}"),
        }
    ));
    let mut dims = format!("[{}]", tg.cp);
    for &d in &slice_loops {
        dims.push_str(&format!("[{}]", loops[d].trip_count()));
    }
    dims.push_str(&format!("[{col_span}]"));
    w.line(format!("{} {sub}{dims};", c_type(bits)));
    if tg.gamma.is_some() && !tg.bypass {
        // The +1 transient element of A(γ) = c'·γ + 1 (eq. 18).
        w.line(format!("{} {sub}_stream;", c_type(bits)));
    }
    w.line("");
    for l in loops {
        w.open(format!(
            "for (int {n} = {lo}; {n} <= {hi}; {n}++) {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    let row = format!("({j} % {})", tg.cp);
    let col_base = format!("({k} + ({j} / {}) * {})", tg.cp, tg.bp);
    let col = if opts.single_assignment {
        col_base
    } else {
        format!("({col_base} % {col_span})")
    };
    let mut slot = format!("{sub}[{row}]");
    for &d in &slice_loops {
        slot.push_str(&format!("[{}]", loops[d].name()));
    }
    slot.push_str(&format!("[{col}]"));
    let orig = {
        let subs: String = acc
            .indices()
            .iter()
            .map(|e| format!("[{e}]"))
            .collect();
        format!("{}{subs}", acc.array())
    };
    let first = if tg.k_invariant {
        format!("({k} == 0)")
    } else {
        format!(
            "({j} < {cp} || {k} > {ku} - {bp})",
            cp = tg.cp,
            ku = pair.k_range - 1,
            bp = tg.bp
        )
    };
    if let Some(g) = tg.gamma {
        let region = format!("{k} > {}", pair.k_range - 1 - g - tg.bp);
        w.open(format!("if ({region}) {{"));
        w.open(format!("if ({first}) {{"));
        w.line(format!("{slot} = {orig}; /* copy from next level */"));
        w.close();
        w.line(format!("sink = {slot};"));
        w.open_else();
        if tg.bypass {
            w.line(format!("sink = {orig}; /* bypass: no reuse here */"));
        } else {
            w.line(format!("{sub}_stream = {orig}; /* streamed through */"));
            w.line(format!("sink = {sub}_stream;"));
        }
        w.close();
    } else {
        w.open(format!("if ({first}) {{"));
        w.line(format!("{slot} = {orig}; /* copy from next level */"));
        w.close();
        w.line(format!("sink = {slot};"));
    }
    for _ in loops {
        w.close();
    }
    Ok(w.into_string())
}

/// Result of executing the Fig. 8 modulo addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig8Report {
    /// Buffered reads whose slot held the expected element.
    pub reads_checked: u64,
    /// Fills that overwrote a still-live different element — 0 proves the
    /// addressing sound.
    pub collisions: u64,
}

/// Executes the maximum-reuse modulo addressing of Fig. 8 (canonical
/// orientation, single sweep) and verifies no live element is overwritten
/// and every read finds its element in the computed slot.
///
/// # Errors
///
/// Fails like [`emit_transformed`]; additionally refuses anti-diagonal
/// and re-swept geometries, which the Fig. 8 template does not cover.
pub fn verify_fig8_addressing(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
) -> Result<Fig8Report, ScheduleError> {
    let (pair, tg) = resolve_geometry(program, nest, access, outer, inner, Strategy::MaxReuse)?;
    if matches!(pair.class, ReuseClass::Vector { anti: true, .. }) || pair.repeat_same != 1 {
        return Err(ScheduleError::NoReuse);
    }
    let norm = program.nests()[nest].normalized();
    let loops = norm.loops();
    let acc = &norm.accesses()[access];
    let decl = program.array(acc.array()).expect("validated program");
    let col_span = if tg.k_invariant {
        1
    } else {
        (pair.k_range - tg.bp).max(1)
    };
    let slice_loops: Vec<usize> = (0..loops.len())
        .filter(|&d| {
            d > tg.j_depth
                && d != tg.k_depth
                && acc.indices().iter().any(|e| e.coeff(loops[d].name()) != 0)
        })
        .collect();

    let mut slots: HashMap<(i64, Vec<i64>, i64), u64> = HashMap::new();
    let mut live: HashSet<u64> = HashSet::new();
    let mut report = Fig8Report {
        reads_checked: 0,
        collisions: 0,
    };
    for point in IterSpace::over(loops) {
        let j = point[tg.j_depth];
        let k = point[tg.k_depth];
        let idx: Vec<i64> = acc
            .indices()
            .iter()
            .map(|e| e.eval(|n| norm.loop_index(n).map(|d| point[d])))
            .collect();
        let addr = decl.linearize(&idx);
        let slice: Vec<i64> = slice_loops.iter().map(|&d| point[d]).collect();
        let row = j % tg.cp;
        let col = if tg.k_invariant {
            0
        } else {
            (k + (j / tg.cp) * tg.bp) % col_span
        };
        let key = (row, slice, col);
        let first = if tg.k_invariant {
            k == 0
        } else {
            j < tg.cp || k > pair.k_range - 1 - tg.bp
        };
        if first {
            if let Some(&old) = slots.get(&key) {
                if old != addr && live.contains(&old) {
                    report.collisions += 1;
                }
            }
            slots.insert(key, addr);
            live.insert(addr);
        } else {
            match slots.get(&key) {
                Some(&stored) if stored == addr => report.reads_checked += 1,
                _ => report.collisions += 1,
            }
        }
        // Liveness: drop after the last use in the pair space.
        let keep = if tg.k_invariant {
            k < pair.k_range - 1
        } else {
            j < pair.j_range - tg.cp && k >= tg.bp
        };
        if !keep {
            live.remove(&addr);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::parse_program;

    fn window() -> Program {
        parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }").unwrap()
    }

    #[test]
    fn max_template_structure() {
        let c = emit_transformed(&window(), 0, 0, 0, 1, TemplateOptions::default()).unwrap();
        assert!(c.contains("uint8_t A_sub[1][7];"));
        assert!(c.contains("if ((j < 1 || k > 7 - 1)) {"));
        assert!(c.contains("A_sub[(j % 1)][((k + (j / 1) * 1) % 7)] = A[j + k];"));
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn partial_template_has_region_conditional() {
        let opts = TemplateOptions {
            strategy: Strategy::Partial { gamma: 3 },
            single_assignment: false,
        };
        let c = emit_transformed(&window(), 0, 0, 0, 1, opts).unwrap();
        assert!(c.contains("if (k > 3) {")); // kU − γ − b' = 7 − 3 − 1
        assert!(c.contains("A_sub[1][4];")); // γ + 1 columns
        assert!(c.contains("streamed through"));
    }

    #[test]
    fn bypass_template_reads_origin_directly() {
        let opts = TemplateOptions {
            strategy: Strategy::PartialBypass { gamma: 3 },
            single_assignment: false,
        };
        let c = emit_transformed(&window(), 0, 0, 0, 1, opts).unwrap();
        assert!(c.contains("A_sub[1][3];")); // γ columns, no +1
        assert!(c.contains("sink = A[j + k]; /* bypass: no reuse here */"));
    }

    #[test]
    fn single_assignment_variant_drops_modulo() {
        let opts = TemplateOptions {
            strategy: Strategy::MaxReuse,
            single_assignment: true,
        };
        let c = emit_transformed(&window(), 0, 0, 0, 1, opts).unwrap();
        // ((jU−jL)/c')·b' + kU + 1 = 15·1 + 8 = 23 columns.
        assert!(c.contains("A_sub[1][23];"));
        assert!(!c.contains("% 23"));
    }

    #[test]
    fn me_inner_nest_gets_slice_dimension() {
        let p = parse_program(
            "array Old[8][23];
             for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[i5][i4 + i6]; } } }",
        )
        .unwrap();
        let c = emit_transformed(&p, 0, 0, 0, 2, TemplateOptions::default()).unwrap();
        // c' × n × (kRANGE − b') = 1 × 8 × 7 — the §6.3 A_Max = 56.
        assert!(c.contains("Old_sub[1][8][7];"), "{c}");
        assert!(c.contains("[i5]"));
    }

    #[test]
    fn fig8_addressing_is_collision_free() {
        for src in [
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
            "array A[60]; for j in 0..12 { for k in 0..10 { read A[2*j + 3*k]; } }",
            "array A[70]; for j in 0..12 { for k in 0..10 { read A[2*j + 4*k]; } }",
            "array A[95]; for j in 0..30 { for k in 0..8 { read A[3*j + 1*k]; } }",
        ] {
            let p = parse_program(src).unwrap();
            let r = verify_fig8_addressing(&p, 0, 0, 0, 1).unwrap();
            assert_eq!(r.collisions, 0, "collisions in {src}");
            assert!(r.reads_checked > 0);
        }
    }

    #[test]
    fn fig8_addressing_covers_me_inner_nest() {
        let p = parse_program(
            "array Old[8][23];
             for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[i5][i4 + i6]; } } }",
        )
        .unwrap();
        let r = verify_fig8_addressing(&p, 0, 0, 0, 2).unwrap();
        assert_eq!(r.collisions, 0);
        // Every non-first access reads from the copy: C_tot − fills.
        assert_eq!(r.reads_checked, 1024 - 184);
    }

    #[test]
    fn fig8_rejects_uncovered_geometries() {
        let anti =
            parse_program("array A[30]; for j in 0..12 { for k in 0..10 { read A[12 + k - j]; } }")
                .unwrap();
        assert!(verify_fig8_addressing(&anti, 0, 0, 0, 1).is_err());
        let norense =
            parse_program("array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }")
                .unwrap();
        assert!(verify_fig8_addressing(&norense, 0, 0, 0, 1).is_err());
    }

    #[test]
    fn errors_propagate() {
        let p = window();
        assert!(matches!(
            emit_transformed(&p, 2, 0, 0, 1, TemplateOptions::default()),
            Err(ScheduleError::NoSuchNest { .. })
        ));
        let opts = TemplateOptions {
            strategy: Strategy::Partial { gamma: 0 },
            single_assignment: false,
        };
        assert!(matches!(
            emit_transformed(&p, 0, 0, 0, 1, opts),
            Err(ScheduleError::BadGamma { .. })
        ));
    }
}
