//! Code generation for footprint-level copy-candidates.
//!
//! The pairwise template (Fig. 8) covers the innermost candidates; the
//! larger discontinuities of Fig. 4a (`A₁ … A₃`) hold the *footprint* of a
//! sub-nest and are refreshed incrementally as the carrier loop steps —
//! e.g. the 23-row band of the motion-estimation reference frame that
//! slides down by `n` rows per block row. [`emit_band_copy`] generates
//! that buffer: explicit copy loops fetch the newly exposed slab at each
//! carrier iteration, modulo folding keeps the buffer at exactly the
//! window size, and the original access is rewritten to read the band.
//!
//! Supported shape (everything the paper's kernels need): dense
//! per-dimension windows over disjoint inner-iterator sets with
//! non-negative coefficients, and at most one dimension shifting per
//! carrier step.

use datareuse_core::{footprint_levels, PairGeometry};
use datareuse_loopir::{AffineExpr, Program};

use crate::ctext::{c_type, CWriter};
use crate::schedule::ScheduleError;

/// Geometry of one band dimension, language-neutral: the C emitter in
/// this module and the Rust emitter in [`crate::rustgen`] both render
/// from it.
pub(crate) struct BandDim {
    /// Window width (dense value count of the inner-restricted index).
    pub width: i64,
    /// Shift per carrier iteration (carrier coefficient).
    pub shift: i64,
    /// Base expression over outer + carrier iterators.
    pub base: AffineExpr,
    /// Inner-iterator offset expression relative to the base.
    pub offset: AffineExpr,
}

/// The full band geometry of one footprint-level copy-candidate.
pub(crate) struct BandGeometry {
    /// One entry per array dimension.
    pub dims: Vec<BandDim>,
    /// Candidate size in elements (product of the widths).
    pub size: u64,
    /// The candidate's reuse factor `F_R`.
    pub reuse_factor: f64,
}

/// Emits C code introducing the footprint-level copy-candidate at `depth`
/// for `program.nests()[nest].accesses()[access]` (see
/// [`datareuse_core::footprint_levels`] for the candidate semantics).
///
/// # Errors
///
/// Fails with [`ScheduleError::NoReuse`] when the candidate does not exist
/// (no reuse at that depth) or the access falls outside the supported
/// shape (non-dense windows, shared iterators across dimensions, more
/// than one shifting dimension, negative inner coefficients).
///
/// # Examples
///
/// ```
/// use datareuse_codegen::emit_band_copy;
/// use datareuse_kernels::MotionEstimation;
///
/// let p = MotionEstimation::SMALL.program();
/// let c = emit_band_copy(&p, 0, 1, 1).expect("band exists");
/// assert!(c.contains("Old_band"));
/// assert!(c.contains("/* refresh the newly exposed slab */"));
/// ```
pub fn emit_band_copy(
    program: &Program,
    nest: usize,
    access: usize,
    depth: usize,
) -> Result<String, ScheduleError> {
    let geometry = band_geometry(program, nest, access, depth)?;
    emit_band_copy_c(program, nest, access, depth, &geometry)
}

/// Validates the candidate and computes the band geometry shared by the
/// C and Rust emitters: per-dimension window width, per-carrier shift,
/// and the base/offset expressions of the sliding window.
pub(crate) fn band_geometry(
    program: &Program,
    nest: usize,
    access: usize,
    depth: usize,
) -> Result<BandGeometry, ScheduleError> {
    let raw_nest = program
        .nests()
        .get(nest)
        .ok_or(ScheduleError::NoSuchNest { nest })?;
    if depth == 0 || depth >= raw_nest.depth() {
        return Err(ScheduleError::NoReuse);
    }
    // Reuse the core analysis for validity: the candidate must exist and
    // be exact at this depth.
    let levels = footprint_levels(raw_nest, access).map_err(ScheduleError::Analyze)?;
    let level = levels
        .iter()
        .find(|l| l.depth == depth && l.exact)
        .ok_or(ScheduleError::NoReuse)?;
    // Geometry probe (also validates access/loop indices).
    let _ = PairGeometry::from_access(raw_nest, access, depth - 1, depth)?;

    let norm = raw_nest.normalized();
    let loops = norm.loops();
    let acc = &norm.accesses()[access];
    let inner_names: Vec<&str> = loops[depth..].iter().map(|l| l.name()).collect();
    let carrier = &loops[depth - 1];

    let mut dims = Vec::new();
    let mut shifting = 0usize;
    for expr in acc.indices() {
        let (inner_part, base) = expr.split(&inner_names);
        let (lo, hi) = inner_part.value_range(|n| {
            loops[depth..]
                .iter()
                .find(|l| l.name() == n)
                .map(|l| (l.lower(), l.upper()))
        });
        let width = hi - lo + 1;
        // The window must be *dense*: every value in [lo, hi] reachable,
        // so the band is a contiguous sliding interval (checked by
        // enumeration, as in the core footprint analysis).
        let contributing: Vec<_> = loops[depth..]
            .iter()
            .filter(|l| inner_part.coeff(l.name()) != 0)
            .collect();
        let combos: u64 = contributing.iter().map(|l| l.trip_count()).product();
        if combos > 1 << 20 {
            return Err(ScheduleError::NoReuse);
        }
        let mut values = std::collections::BTreeSet::new();
        let mut stack = vec![(0usize, 0i64)];
        while let Some((d, v)) = stack.pop() {
            if d == contributing.len() {
                values.insert(v);
                continue;
            }
            let coeff = inner_part.coeff(contributing[d].name());
            for x in contributing[d].values() {
                stack.push((d + 1, v + coeff * x));
            }
        }
        if values.len() as i64 != width {
            return Err(ScheduleError::NoReuse);
        }
        let shift = expr.coeff(carrier.name());
        if shift != 0 {
            shifting += 1;
        }
        // The window origin is `base + lo` (lo ≠ 0 when inner coefficients
        // are negative, e.g. the FIR x[n − t] pattern).
        dims.push(BandDim {
            width,
            shift,
            base: base + lo,
            offset: inner_part + (-lo),
        });
    }
    if shifting > 1 {
        return Err(ScheduleError::NoReuse);
    }
    debug_assert_eq!(
        dims.iter().map(|d| d.width as u64).product::<u64>(),
        level.size,
        "band dims must reproduce the candidate size"
    );
    Ok(BandGeometry {
        dims,
        size: level.size,
        reuse_factor: level.reuse_factor(),
    })
}

/// Renders the C template from a validated band geometry.
fn emit_band_copy_c(
    program: &Program,
    nest: usize,
    access: usize,
    depth: usize,
    geometry: &BandGeometry,
) -> Result<String, ScheduleError> {
    let norm = program.nests()[nest].normalized();
    let loops = norm.loops();
    let acc = &norm.accesses()[access];
    let decl = program.array(acc.array()).expect("validated program");
    let carrier = &loops[depth - 1];
    let dims = &geometry.dims;

    let band = format!("{}_band", acc.array());
    let bits = decl.elem_bits();
    let mut w = CWriter::new();
    w.line(format!(
        "/* footprint-level copy-candidate (depth {depth}): {} elements, F_R = {:.2} */",
        geometry.size, geometry.reuse_factor
    ));
    let band_dims: String = dims.iter().map(|d| format!("[{}]", d.width)).collect();
    w.line(format!("{} {band}{band_dims};", c_type(bits)));
    w.line("");
    // Outer loops incl. the carrier.
    for l in &loops[..depth] {
        w.open(format!(
            "for (int {n} = {lo}; {n} <= {hi}; {n}++) {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    // Refresh loops: iterate window positions, copying only the newly
    // exposed slab (everything on the first carrier iteration).
    w.line("/* refresh the newly exposed slab */");
    for (d, bd) in dims.iter().enumerate() {
        let start = if bd.shift > 0 {
            format!(
                "(({c} == {lo}) ? 0 : {w} - {s})",
                c = carrier.name(),
                lo = carrier.lower(),
                w = bd.width,
                s = bd.shift.min(bd.width)
            )
        } else {
            "0".to_string()
        };
        w.open(format!(
            "for (int w{d} = {start}; w{d} < {width}; w{d}++) {{",
            width = bd.width
        ));
    }
    let band_slot: String = dims
        .iter()
        .enumerate()
        .map(|(d, bd)| format!("[(({}) + w{d}) % {}]", bd.base, bd.width))
        .collect();
    let src_slot: String = dims
        .iter()
        .enumerate()
        .map(|(d, bd)| format!("[({}) + w{d}]", bd.base))
        .collect();
    w.line(format!("{band}{band_slot} = {}{src_slot};", acc.array()));
    for _ in dims {
        w.close();
    }
    // Inner loops with the rewritten access.
    for l in &loops[depth..] {
        w.open(format!(
            "for (int {n} = {lo}; {n} <= {hi}; {n}++) {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    let read_slot: String = dims
        .iter()
        .map(|bd| format!("[(({}) + ({})) % {}]", bd.base, bd.offset, bd.width))
        .collect();
    w.line(format!("sink = {band}{read_slot};"));
    for _ in loops {
        w.close();
    }
    Ok(w.into_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_kernels::{Conv2d, MotionEstimation};
    use datareuse_loopir::parse_program;

    #[test]
    fn me_band_emits_all_depths() {
        let p = MotionEstimation::SMALL.program();
        for depth in [1usize, 2, 3, 4] {
            let c = emit_band_copy(&p, 0, 1, depth).unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            assert!(c.contains("Old_band"), "depth {depth}");
            assert_eq!(c.matches('{').count(), c.matches('}').count());
        }
        // Depth 5 carries no reuse (pruned candidate).
        assert!(emit_band_copy(&p, 0, 1, 5).is_err());
    }

    #[test]
    fn conv_band_structure() {
        let p = Conv2d {
            height: 12,
            width: 12,
            tap_rows: 3,
            tap_cols: 3,
        }
        .program();
        let c = emit_band_copy(&p, 0, 0, 1).expect("row band");
        // 3 rows × 14 columns window over the padded image.
        assert!(c.contains("image_band[3][14];"), "{c}");
        assert!(c.contains("% 3]"));
    }

    #[test]
    fn rejects_unsupported_shapes() {
        // Diagonal access: dims share the inner iterator.
        let p = parse_program("array A[16][16]; for j in 0..8 { for k in 0..8 { read A[k][k]; } }")
            .unwrap();
        assert!(emit_band_copy(&p, 0, 0, 1).is_err());
        // Streaming access: no reuse at any depth.
        let q = parse_program("array A[64]; for j in 0..8 { for k in 0..8 { read A[8*j + k]; } }")
            .unwrap();
        assert!(emit_band_copy(&q, 0, 0, 1).is_err());
        // Bad depth.
        let r = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        assert!(emit_band_copy(&r, 0, 0, 0).is_err());
        assert!(emit_band_copy(&r, 0, 0, 2).is_err());
    }
}
