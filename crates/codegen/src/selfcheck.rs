//! Self-checking C programs for the generated templates.
//!
//! [`emit_selfcheck`] produces a *complete, compilable* C translation unit
//! that executes the original access stream and the Fig. 8-transformed
//! stream over the same initialized array, folds every read value into a
//! checksum, and exits non-zero on mismatch. The integration tests compile
//! and run it with the system C compiler, closing the loop from the
//! analytical model to machine-executed generated code.

use datareuse_loopir::Program;

use crate::adopt::emit_transformed_adopt;
use crate::bandcopy::emit_band_copy;
use crate::ctext::{c_type, CWriter};
use crate::schedule::ScheduleError;
use crate::template::{emit_transformed, TemplateOptions};

/// Emits a self-checking C program for one access and one copy strategy.
///
/// The program defines `run_original()` and `run_transformed()` (the
/// Fig. 8 template with every buffered read folded into an FNV-1a style
/// checksum), initializes the array with a mixing function of the index,
/// and returns 0 iff both runs produce identical checksums.
///
/// Guards on the chosen access are ignored by both runs (the paper's
/// "approximate solution" for conditionals), so the comparison stays
/// meaningful.
///
/// # Errors
///
/// Fails like [`emit_transformed`].
///
/// # Examples
///
/// ```
/// use datareuse_codegen::{emit_selfcheck, TemplateOptions};
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let c = emit_selfcheck(&p, 0, 0, 0, 1, TemplateOptions::default())?;
/// assert!(c.contains("int main(void)"));
/// assert!(c.contains("run_transformed"));
/// # Ok(())
/// # }
/// ```
pub fn emit_selfcheck(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    opts: TemplateOptions,
) -> Result<String, ScheduleError> {
    let template = emit_transformed(program, nest, access, outer, inner, opts)?;
    Ok(selfcheck_around(program, nest, access, &template))
}

/// Like [`emit_selfcheck`] but wrapping the ADOPT strength-reduced
/// template of [`emit_transformed_adopt`] — the compile-and-run proof that
/// the induction-variable addressing is equivalent to the modulo form.
///
/// # Errors
///
/// Fails like [`emit_transformed_adopt`].
pub fn emit_selfcheck_adopt(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    opts: TemplateOptions,
) -> Result<String, ScheduleError> {
    let template = emit_transformed_adopt(program, nest, access, outer, inner, opts)?;
    Ok(selfcheck_around(program, nest, access, &template))
}

/// Like [`emit_selfcheck`] but wrapping the footprint-level band copy of
/// [`emit_band_copy`] at the given loop depth.
///
/// # Errors
///
/// Fails like [`emit_band_copy`].
pub fn emit_selfcheck_band(
    program: &Program,
    nest: usize,
    access: usize,
    depth: usize,
) -> Result<String, ScheduleError> {
    let template = emit_band_copy(program, nest, access, depth)?;
    Ok(selfcheck_around(program, nest, access, &template))
}

fn selfcheck_around(program: &Program, nest: usize, access: usize, template: &str) -> String {
    let norm = program.nests()[nest].normalized();
    let acc = &norm.accesses()[access];
    let decl = program.array(acc.array()).expect("validated program");
    let bits = decl.elem_bits();

    let mut w = CWriter::new();
    w.line("#include <stdint.h>");
    w.line("#include <stdio.h>");
    w.line("");
    // Only the checked array is declared; the template references no
    // other storage.
    {
        let dims: String = decl.extents().iter().map(|e| format!("[{e}]")).collect();
        w.line(format!(
            "static {} {}{dims};",
            c_type(decl.elem_bits()),
            decl.name()
        ));
    }
    w.line("");
    w.line("static uint64_t checksum;");
    w.open("static void consume(uint64_t v) {");
    w.line("checksum = (checksum ^ v) * 1099511628211ull;");
    w.close();
    w.line("");
    w.open("static void init(void) {");
    {
        let dims = decl.extents();
        let mut subs = String::new();
        for (d, e) in dims.iter().enumerate() {
            w.open(format!("for (int d{d} = 0; d{d} < {e}; d{d}++) {{"));
            subs.push_str(&format!("[d{d}]"));
        }
        let mut linear = String::from("0");
        for (d, e) in dims.iter().enumerate() {
            linear = format!("(({linear}) * {e} + d{d})");
        }
        w.line(format!(
            "{}{subs} = ({})(({linear} * 2654435761u) >> 3);",
            acc.array(),
            c_type(bits)
        ));
        for _ in dims {
            w.close();
        }
    }
    w.close();
    w.line("");
    // Original stream: same normalized loops, the chosen access only.
    w.open("static uint64_t run_original(void) {");
    w.line("checksum = 14695981039346656037ull;");
    for l in norm.loops() {
        w.open(format!(
            "for (int {n} = {lo}; {n} <= {hi}; {n}++) {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    let subs: String = acc.indices().iter().map(|e| format!("[{e}]")).collect();
    w.line(format!("consume({}{subs});", acc.array()));
    for _ in norm.loops() {
        w.close();
    }
    w.line("return checksum;");
    w.close();
    w.line("");
    w.open("static uint64_t run_transformed(void) {");
    w.line("checksum = 14695981039346656037ull;");
    // Re-route the template's `sink = X;` reads into the checksum.
    for line in template.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("sink = ") {
            let expr = rest
                .trim_end()
                .trim_end_matches(' ')
                .split(';')
                .next()
                .unwrap_or("0");
            let indent = &line[..line.len() - trimmed.len()];
            w.line(format!("{indent}consume({expr});"));
        } else {
            w.line(line);
        }
    }
    w.line("return checksum;");
    w.close();
    w.line("");
    w.open("int main(void) {");
    w.line("init();");
    w.line("uint64_t original = run_original();");
    w.line("uint64_t transformed = run_transformed();");
    w.open("if (original != transformed) {");
    w.line(
        "printf(\"MISMATCH: original %llu transformed %llu\\n\", \
         (unsigned long long)original, (unsigned long long)transformed);",
    );
    w.line("return 1;");
    w.close();
    w.line("printf(\"OK %llu\\n\", (unsigned long long)original);");
    w.line("return 0;");
    w.close();
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Strategy;
    use datareuse_loopir::parse_program;

    fn window() -> Program {
        parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }").unwrap()
    }

    #[test]
    fn selfcheck_contains_both_runs_and_balances() {
        let c = emit_selfcheck(&window(), 0, 0, 0, 1, TemplateOptions::default()).unwrap();
        assert!(c.contains("static uint64_t run_original(void)"));
        assert!(c.contains("static uint64_t run_transformed(void)"));
        assert!(c.contains("consume(A[j + k]);"));
        assert!(c.contains("consume(A_sub["));
        assert!(!c.contains("sink ="), "all sinks must be re-routed");
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn partial_variants_emit_their_conditionals() {
        for strategy in [
            Strategy::Partial { gamma: 3 },
            Strategy::PartialBypass { gamma: 3 },
        ] {
            let c = emit_selfcheck(
                &window(),
                0,
                0,
                0,
                1,
                TemplateOptions {
                    strategy,
                    single_assignment: false,
                },
            )
            .unwrap();
            assert!(c.contains("if (k > 3) {"));
            assert_eq!(c.matches('{').count(), c.matches('}').count());
        }
    }

    #[test]
    fn errors_propagate() {
        let p = parse_program("array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }")
            .unwrap();
        assert!(emit_selfcheck(&p, 0, 0, 0, 1, TemplateOptions::default()).is_err());
    }
}
