//! Gnuplot output, matching the paper's prototype tool ("with graphical
//! output using gnuplot").

use std::fmt::Write as _;

/// One data series for a gnuplot figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend title.
    pub title: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
    /// Gnuplot style, e.g. `"linespoints"` or `"points pt 7"`.
    pub style: String,
}

impl Series {
    /// Creates a series with the default `linespoints` style.
    pub fn new(title: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            title: title.into(),
            points,
            style: "linespoints".into(),
        }
    }

    /// Sets the gnuplot style.
    pub fn with_style(mut self, style: impl Into<String>) -> Self {
        self.style = style.into();
        self
    }
}

/// Renders a self-contained gnuplot script with inline data blocks.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::{gnuplot_script, Series};
///
/// let s = gnuplot_script(
///     "Data reuse factor",
///     "copy-candidate size",
///     "F_R",
///     true,
///     &[Series::new("simulated", vec![(1.0, 1.0), (8.0, 5.6)])],
/// );
/// assert!(s.contains("set logscale x"));
/// assert!(s.contains("$data0"));
/// ```
pub fn gnuplot_script(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    logx: bool,
    series: &[Series],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "set title \"{title}\"");
    let _ = writeln!(s, "set xlabel \"{xlabel}\"");
    let _ = writeln!(s, "set ylabel \"{ylabel}\"");
    if logx {
        let _ = writeln!(s, "set logscale x");
    }
    let _ = writeln!(s, "set grid");
    for (i, ser) in series.iter().enumerate() {
        let _ = writeln!(s, "$data{i} << EOD");
        for (x, y) in &ser.points {
            let _ = writeln!(s, "{x} {y}");
        }
        let _ = writeln!(s, "EOD");
    }
    s.push_str("plot ");
    for (i, ser) in series.iter().enumerate() {
        if i > 0 {
            s.push_str(", \\\n     ");
        }
        let _ = write!(s, "$data{i} with {} title \"{}\"", ser.style, ser.title);
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_contains_all_series() {
        let s = gnuplot_script(
            "t",
            "x",
            "y",
            false,
            &[
                Series::new("a", vec![(0.0, 1.0)]),
                Series::new("b", vec![(2.0, 3.0)]).with_style("points pt 9"),
            ],
        );
        assert!(s.contains("$data0") && s.contains("$data1"));
        assert!(s.contains("points pt 9"));
        assert!(!s.contains("logscale"));
        assert!(s.contains("2 3"));
    }

    #[test]
    fn empty_series_is_still_valid() {
        let s = gnuplot_script("t", "x", "y", true, &[Series::new("e", Vec::new())]);
        assert!(s.contains("EOD"));
    }
}
