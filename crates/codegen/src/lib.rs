//! # datareuse-codegen
//!
//! Code generation and verification for the `datareuse` project
//! (reproduction of the DATE 2002 data-reuse exploration paper).
//!
//! The paper states "the analysis and subsequent code generation are
//! completely automatable"; this crate is that code generator, plus the
//! machinery to *prove* the generated copy discipline correct:
//!
//! - [`emit_program`] — C text for the original loop nests;
//! - [`emit_rust_program`] / [`emit_rust_selfcheck_band`] — the same
//!   programs as runnable Rust, so the tests can compile and execute the
//!   generated code with nothing but `rustc`;
//! - [`emit_transformed`] — the Fig. 8 copy-candidate template, with the
//!   partial-reuse, bypass (Section 6.2) and single-assignment
//!   (Section 6.1) variants;
//! - [`run_schedule`] — executes the copy discipline against a reference
//!   array, checking data correctness and counting per-level traffic;
//! - [`verify_fig8_addressing`] — executes the template's modulo
//!   addressing and proves no live element is overwritten;
//! - [`gnuplot_script`] — figure output, as the paper's prototype tool.
//!
//! # Examples
//!
//! ```
//! use datareuse_codegen::{run_schedule, Strategy};
//! use datareuse_loopir::parse_program;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
//! let report = run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse)?;
//! assert_eq!(report.value_errors, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adopt;
mod bandcopy;
mod ctext;
mod gnuplot;
mod rustgen;
mod schedule;
mod selfcheck;
mod template;

pub use adopt::emit_transformed_adopt;
pub use bandcopy::emit_band_copy;
pub use ctext::{c_expr, c_type, emit_program, CWriter};
pub use gnuplot::{gnuplot_script, Series};
pub use rustgen::{emit_rust_program, emit_rust_selfcheck_band, rust_type};
pub use schedule::{run_schedule, ScheduleError, ScheduleReport, Strategy};
pub use selfcheck::{emit_selfcheck, emit_selfcheck_adopt, emit_selfcheck_band};
pub use template::{emit_transformed, verify_fig8_addressing, Fig8Report, TemplateOptions};
