//! Runnable Rust emission: the original nests and the band-copy
//! self-check as complete `fn main()` programs.
//!
//! The C emitters ([`crate::ctext`], [`crate::selfcheck`]) target the
//! paper's embedded-C audience; this module emits the same programs as
//! standalone Rust so the workspace can prove its own generated code
//! with nothing but `rustc` — the integration tests compile and execute
//! the output and expect an `OK <checksum>` line. Both emitters share
//! the geometry of [`crate::bandcopy`], so the Rust band self-check
//! exercises exactly the copy discipline the C template describes.
//!
//! Arrays are flattened to `Vec`s with explicit linearized indices
//! (row-major, matching the C declaration order), loop iterators are
//! `i64` so affine index expressions render verbatim, and every read is
//! folded into the same FNV-style checksum the C self-check uses.

use datareuse_loopir::{AccessKind, AffineExpr, ArrayDecl, Program};

use crate::bandcopy::band_geometry;
use crate::ctext::CWriter;
use crate::schedule::ScheduleError;

/// Chooses the narrowest unsigned Rust type for a bit width.
pub fn rust_type(bits: u32) -> &'static str {
    match bits {
        0..=8 => "u8",
        9..=16 => "u16",
        17..=32 => "u32",
        _ => "u64",
    }
}

/// Renders the row-major linearized index of `indices` over `extents`,
/// ready for a `[... as usize]` subscript.
fn linear_index(indices: &[AffineExpr], extents: &[i64]) -> String {
    let mut out = String::from("0");
    for (expr, extent) in indices.iter().zip(extents) {
        out = format!("(({out}) * {extent} + ({expr}))");
    }
    out
}

/// Renders the same linearization from already-formatted index strings
/// (used for band-buffer subscripts whose widths are not array extents).
fn linear_index_str(indices: &[String], extents: &[i64]) -> String {
    let mut out = String::from("0");
    for (expr, extent) in indices.iter().zip(extents) {
        out = format!("(({out}) * {extent} + ({expr}))");
    }
    out
}

fn emit_array_init(w: &mut CWriter, decl: &ArrayDecl) {
    let total: i64 = decl.extents().iter().product();
    let ty = rust_type(decl.elem_bits());
    w.line(format!(
        "let mut {name}: Vec<{ty}> = (0..{total}u64).map(|l| ((l.wrapping_mul(2654435761)) >> 3) as {ty}).collect();",
        name = decl.name()
    ));
}

/// Emits the whole program as a runnable Rust `main.rs`: every array
/// initialized with the index-mixing function of the C self-check, every
/// nest executed in order with reads folded into a checksum and writes
/// storing the running checksum, and a final `OK <checksum>` line.
///
/// The output compiles with a bare `rustc` invocation (no crates) and
/// always exits 0 — it is the executable form of the original nests, the
/// reference stream the transformed variants are checked against.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::emit_rust_program;
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let rs = emit_rust_program(&p);
/// assert!(rs.contains("fn main() {"));
/// assert!(rs.contains("let mut A: Vec<u8>"));
/// assert!(rs.contains("OK {checksum}"));
/// # Ok(())
/// # }
/// ```
pub fn emit_rust_program(program: &Program) -> String {
    let mut w = CWriter::new();
    w.line("#![allow(non_snake_case, unused_mut, unused_variables)]");
    w.line("");
    w.open("fn main() {");
    w.line("let mut checksum: u64 = 14695981039346656037;");
    for decl in program.arrays() {
        emit_array_init(&mut w, decl);
    }
    for nest in program.nests() {
        let norm = nest.normalized();
        for l in norm.loops() {
            w.open(format!(
                "for {n} in {lo}i64..={hi} {{",
                n = l.name(),
                lo = l.lower(),
                hi = l.upper()
            ));
        }
        for acc in norm.accesses() {
            let decl = program.array(acc.array()).expect("validated program");
            let idx = linear_index(acc.indices(), decl.extents());
            let stmt = match acc.kind() {
                AccessKind::Read => format!(
                    "checksum = (checksum ^ ({}[({idx}) as usize] as u64)).wrapping_mul(1099511628211);",
                    acc.array()
                ),
                AccessKind::Write => format!(
                    "{}[({idx}) as usize] = checksum as {};",
                    acc.array(),
                    rust_type(decl.elem_bits())
                ),
            };
            if acc.guards().is_empty() {
                w.line(stmt);
            } else {
                let cond = acc
                    .guards()
                    .iter()
                    .map(|g| format!("({}) {} ({})", g.lhs, g.op, g.rhs))
                    .collect::<Vec<_>>()
                    .join(" && ");
                w.open(format!("if {cond} {{"));
                w.line(stmt);
                w.close();
            }
        }
        for _ in norm.loops() {
            w.close();
        }
    }
    w.line("println!(\"OK {checksum}\");");
    w.close();
    w.into_string()
}

/// Emits a self-checking Rust program for the footprint-level band copy
/// at `depth`: `run_original` replays the chosen access directly,
/// `run_transformed` maintains the modulo-folded band buffer of
/// [`crate::emit_band_copy`] and reads through it, and `main` exits 1 on
/// checksum mismatch (printing `MISMATCH ...`) or prints `OK <checksum>`.
///
/// The band geometry — window widths, per-carrier shift, base/offset
/// expressions — is computed by the same analysis as the C template, so
/// compiling and running this program machine-checks that geometry.
///
/// # Errors
///
/// Fails like [`crate::emit_band_copy`]: [`ScheduleError::NoReuse`] when
/// the candidate does not exist or the access shape is unsupported.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::emit_rust_selfcheck_band;
/// use datareuse_kernels::MotionEstimation;
///
/// let p = MotionEstimation::SMALL.program();
/// let rs = emit_rust_selfcheck_band(&p, 0, 1, 1).expect("band exists");
/// assert!(rs.contains("fn run_transformed"));
/// assert!(rs.contains("MISMATCH"));
/// ```
pub fn emit_rust_selfcheck_band(
    program: &Program,
    nest: usize,
    access: usize,
    depth: usize,
) -> Result<String, ScheduleError> {
    let geometry = band_geometry(program, nest, access, depth)?;
    let norm = program.nests()[nest].normalized();
    let loops = norm.loops();
    let acc = &norm.accesses()[access];
    let decl = program.array(acc.array()).expect("validated program");
    let ty = rust_type(decl.elem_bits());
    let total: i64 = decl.extents().iter().product();
    let carrier = &loops[depth - 1];
    let dims = &geometry.dims;
    let widths: Vec<i64> = dims.iter().map(|d| d.width).collect();
    let band_total: i64 = widths.iter().product();

    let mut w = CWriter::new();
    w.line("#![allow(non_snake_case, unused_mut, unused_variables)]");
    w.line("");
    w.line(format!(
        "// footprint-level copy-candidate (depth {depth}): {} elements, F_R = {:.2}",
        geometry.size, geometry.reuse_factor
    ));
    w.line("");
    w.open("fn consume(checksum: &mut u64, v: u64) {");
    w.line("*checksum = (*checksum ^ v).wrapping_mul(1099511628211);");
    w.close();
    w.line("");
    w.open(format!("fn init() -> Vec<{ty}> {{"));
    w.line(format!(
        "(0..{total}u64).map(|l| ((l.wrapping_mul(2654435761)) >> 3) as {ty}).collect()"
    ));
    w.close();
    w.line("");
    // Original stream: the chosen access, directly against the array.
    w.open(format!(
        "fn run_original({name}: &[{ty}]) -> u64 {{",
        name = acc.array()
    ));
    w.line("let mut checksum: u64 = 14695981039346656037;");
    for l in loops {
        w.open(format!(
            "for {n} in {lo}i64..={hi} {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    let idx = linear_index(acc.indices(), decl.extents());
    w.line(format!(
        "consume(&mut checksum, {}[({idx}) as usize] as u64);",
        acc.array()
    ));
    for _ in loops {
        w.close();
    }
    w.line("checksum");
    w.close();
    w.line("");
    // Transformed stream: band buffer, incremental refresh, folded reads.
    w.open(format!(
        "fn run_transformed({name}: &[{ty}]) -> u64 {{",
        name = acc.array()
    ));
    w.line("let mut checksum: u64 = 14695981039346656037;");
    w.line(format!("let mut band: Vec<{ty}> = vec![0; {band_total}];"));
    for l in &loops[..depth] {
        w.open(format!(
            "for {n} in {lo}i64..={hi} {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    w.line("// refresh the newly exposed slab");
    for (d, bd) in dims.iter().enumerate() {
        let start = if bd.shift > 0 {
            format!(
                "if {c} == {lo} {{ 0 }} else {{ {w} - {s} }}",
                c = carrier.name(),
                lo = carrier.lower(),
                w = bd.width,
                s = bd.shift.min(bd.width)
            )
        } else {
            "0".to_string()
        };
        w.line(format!("let w{d}_start: i64 = {start};"));
        w.open(format!(
            "for w{d} in w{d}_start..{width} {{",
            width = bd.width
        ));
    }
    let band_slot: Vec<String> = dims
        .iter()
        .enumerate()
        .map(|(d, bd)| format!("(({}) + w{d}) % {}", bd.base, bd.width))
        .collect();
    let src_slot: Vec<AffineExpr> = dims
        .iter()
        .enumerate()
        .map(|(d, bd)| bd.base.clone() + AffineExpr::var(format!("w{d}")))
        .collect();
    let band_idx = linear_index_str(&band_slot, &widths);
    let src_idx = linear_index(&src_slot, decl.extents());
    w.line(format!(
        "band[({band_idx}) as usize] = {}[({src_idx}) as usize];",
        acc.array()
    ));
    for _ in dims {
        w.close();
    }
    for l in &loops[depth..] {
        w.open(format!(
            "for {n} in {lo}i64..={hi} {{",
            n = l.name(),
            lo = l.lower(),
            hi = l.upper()
        ));
    }
    let read_slot: Vec<String> = dims
        .iter()
        .map(|bd| format!("(({}) + ({})) % {}", bd.base, bd.offset, bd.width))
        .collect();
    let read_idx = linear_index_str(&read_slot, &widths);
    w.line(format!(
        "consume(&mut checksum, band[({read_idx}) as usize] as u64);"
    ));
    for _ in loops {
        w.close();
    }
    w.line("checksum");
    w.close();
    w.line("");
    w.open("fn main() {");
    w.line(format!("let {name} = init();", name = acc.array()));
    w.line(format!(
        "let original = run_original(&{name});",
        name = acc.array()
    ));
    w.line(format!(
        "let transformed = run_transformed(&{name});",
        name = acc.array()
    ));
    w.open("if original != transformed {");
    w.line("println!(\"MISMATCH: original {original} transformed {transformed}\");");
    w.line("std::process::exit(1);");
    w.close();
    w.line("println!(\"OK {original}\");");
    w.close();
    Ok(w.into_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_kernels::MotionEstimation;
    use datareuse_loopir::parse_program;

    #[test]
    fn rust_program_structure_and_balance() {
        let p = parse_program(
            "array A[40] bits 16; array B[20] bits 32;
             for i in 0..20 { read A[i + 1] if i != 4; write B[i]; }",
        )
        .unwrap();
        let rs = emit_rust_program(&p);
        assert!(rs.contains("let mut A: Vec<u16>"));
        assert!(rs.contains("let mut B: Vec<u32>"));
        assert!(rs.contains("if (i) != (4) {"));
        assert!(rs.contains("B[(((0) * 20 + (i))) as usize] = checksum as u32;"));
        assert!(rs.contains("println!(\"OK {checksum}\");"));
        assert_eq!(rs.matches('{').count(), rs.matches('}').count());
    }

    #[test]
    fn band_selfcheck_emits_both_streams() {
        let p = MotionEstimation::SMALL.program();
        for depth in [1usize, 2, 3, 4] {
            let rs = emit_rust_selfcheck_band(&p, 0, 1, depth)
                .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            assert!(rs.contains("fn run_original"), "depth {depth}");
            assert!(rs.contains("fn run_transformed"), "depth {depth}");
            assert!(rs.contains("let mut band: Vec<u8>"), "depth {depth}");
            assert_eq!(rs.matches('{').count(), rs.matches('}').count());
        }
        assert!(emit_rust_selfcheck_band(&p, 0, 1, 5).is_err());
    }

    #[test]
    fn rejects_unsupported_shapes() {
        let p = parse_program("array A[16][16]; for j in 0..8 { for k in 0..8 { read A[k][k]; } }")
            .unwrap();
        assert!(emit_rust_selfcheck_band(&p, 0, 0, 1).is_err());
    }

    #[test]
    fn rust_type_covers_widths() {
        assert_eq!(rust_type(8), "u8");
        assert_eq!(rust_type(12), "u16");
        assert_eq!(rust_type(24), "u32");
        assert_eq!(rust_type(64), "u64");
    }
}
