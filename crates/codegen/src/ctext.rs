//! C text emission for the original loop nests.
//!
//! The paper's prototype tool generates "a template … for the original and
//! transformed code". [`emit_program`] renders the original program; the
//! transformed templates live in [`crate::template`].

use std::fmt::Write as _;

use datareuse_loopir::{AccessKind, AffineExpr, LoopNest, Program};

/// A tiny indentation-aware C writer.
#[derive(Debug, Default)]
pub struct CWriter {
    out: String,
    indent: usize,
}

impl CWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one indented line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text.as_ref());
        self.out.push('\n');
    }

    /// Appends a line and increases the indent (e.g. `for (...) {`).
    pub fn open(&mut self, text: impl AsRef<str>) {
        self.line(text);
        self.indent += 1;
    }

    /// Decreases the indent and appends a closing `}`.
    pub fn close(&mut self) {
        self.indent = self.indent.saturating_sub(1);
        self.line("}");
    }

    /// Closes the current block and opens an `else` branch at the same
    /// depth.
    pub fn open_else(&mut self) {
        self.indent = self.indent.saturating_sub(1);
        self.open("} else {");
    }

    /// Consumes the writer, returning the accumulated text.
    pub fn into_string(self) -> String {
        self.out
    }
}

/// Renders an affine expression as a C expression.
pub fn c_expr(expr: &AffineExpr) -> String {
    expr.to_string()
}

/// Chooses the narrowest standard C type for a bit width.
pub fn c_type(bits: u32) -> &'static str {
    match bits {
        0..=8 => "uint8_t",
        9..=16 => "uint16_t",
        17..=32 => "uint32_t",
        _ => "uint64_t",
    }
}

fn emit_nest(w: &mut CWriter, nest: &LoopNest, sink: &str) {
    for l in nest.loops() {
        if l.step() == 1 {
            w.open(format!(
                "for (int {n} = {lo}; {n} <= {hi}; {n}++) {{",
                n = l.name(),
                lo = l.lower(),
                hi = l.upper()
            ));
        } else {
            w.open(format!(
                "for (int {n} = {lo}; {n} <= {hi}; {n} += {s}) {{",
                n = l.name(),
                lo = l.lower(),
                hi = l.upper(),
                s = l.step()
            ));
        }
    }
    for a in nest.accesses() {
        let subs: String = a
            .indices()
            .iter()
            .map(|e| format!("[{}]", c_expr(e)))
            .collect();
        let stmt = match a.kind() {
            AccessKind::Read => format!("{sink} = {}{subs};", a.array()),
            AccessKind::Write => format!("{}{subs} = {sink};", a.array()),
        };
        if a.guards().is_empty() {
            w.line(stmt);
        } else {
            let cond = a
                .guards()
                .iter()
                .map(|g| format!("{} {} {}", c_expr(&g.lhs), g.op, c_expr(&g.rhs)))
                .collect::<Vec<_>>()
                .join(" && ");
            w.open(format!("if ({cond}) {{"));
            w.line(stmt);
            w.close();
        }
    }
    for _ in nest.loops() {
        w.close();
    }
}

/// Emits the whole program as compilable-looking C: array declarations
/// followed by every loop nest.
///
/// # Examples
///
/// ```
/// use datareuse_codegen::emit_program;
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let c = emit_program(&p);
/// assert!(c.contains("uint8_t A[23];"));
/// assert!(c.contains("for (int j = 0; j <= 15; j++) {"));
/// # Ok(())
/// # }
/// ```
pub fn emit_program(program: &Program) -> String {
    let mut w = CWriter::new();
    w.line("#include <stdint.h>");
    w.line("");
    for a in program.arrays() {
        let mut decl = String::new();
        let _ = write!(decl, "{} {}", c_type(a.elem_bits()), a.name());
        for e in a.extents() {
            let _ = write!(decl, "[{e}]");
        }
        decl.push(';');
        w.line(decl);
    }
    w.line("");
    w.open("void kernel(void) {");
    w.line("volatile uint64_t sink;");
    for nest in program.nests() {
        emit_nest(&mut w, nest, "sink");
    }
    w.close();
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::parse_program;

    #[test]
    fn emits_guards_steps_and_writes() {
        let p = parse_program(
            "array A[40] bits 16; array B[20] bits 32;
             for i in 0..20 step 2 { read A[i + 1] if i != 4; write B[i]; }",
        )
        .unwrap();
        let c = emit_program(&p);
        assert!(c.contains("uint16_t A[40];"));
        assert!(c.contains("uint32_t B[20];"));
        assert!(c.contains("for (int i = 0; i <= 19; i += 2) {"));
        assert!(c.contains("if (i != 4) {"));
        assert!(c.contains("sink = A[i + 1];"));
        assert!(c.contains("B[i] = sink;"));
    }

    #[test]
    fn nesting_is_balanced() {
        let p = parse_program(
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
        )
        .unwrap();
        let c = emit_program(&p);
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn c_type_covers_widths() {
        assert_eq!(c_type(8), "uint8_t");
        assert_eq!(c_type(12), "uint16_t");
        assert_eq!(c_type(24), "uint32_t");
        assert_eq!(c_type(64), "uint64_t");
    }
}
