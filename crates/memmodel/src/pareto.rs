//! Pareto front construction for power/size trade-offs.
//!
//! "A good solution should be chosen on this Pareto curve because all
//! points above it are suboptimal and below only infeasible points exist"
//! (paper Section 4). The helpers here minimize *both* coordinates
//! (on-chip size and power), keeping every point not dominated by another.

/// A candidate hierarchy point on the power–memory-size plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint<T> {
    /// Total on-chip copy-candidate size (elements) — x axis.
    pub size: f64,
    /// Power or normalized energy — y axis.
    pub power: f64,
    /// The hierarchy (or any payload) that produced the point.
    pub payload: T,
}

impl<T> ParetoPoint<T> {
    /// Creates a point.
    pub fn new(size: f64, power: f64, payload: T) -> Self {
        Self {
            size,
            power,
            payload,
        }
    }

    /// True when `self` dominates `other`: no worse on both axes and
    /// strictly better on at least one.
    pub fn dominates<U>(&self, other: &ParetoPoint<U>) -> bool {
        self.size <= other.size
            && self.power <= other.power
            && (self.size < other.size || self.power < other.power)
    }
}

/// Filters `points` down to the Pareto front (minimizing size and power),
/// sorted by increasing size and strictly decreasing power.
///
/// Ties on both axes keep the first occurrence.
///
/// # Examples
///
/// ```
/// use datareuse_memmodel::{pareto_front, ParetoPoint};
///
/// let pts = vec![
///     ParetoPoint::new(1.0, 9.0, "a"),
///     ParetoPoint::new(2.0, 9.5, "dominated"),
///     ParetoPoint::new(3.0, 4.0, "b"),
/// ];
/// let front = pareto_front(pts);
/// let labels: Vec<&str> = front.iter().map(|p| p.payload).collect();
/// assert_eq!(labels, ["a", "b"]);
/// ```
pub fn pareto_front<T>(points: Vec<ParetoPoint<T>>) -> Vec<ParetoPoint<T>> {
    pareto_front_explained(points).0
}

/// The fate of one offered point in [`pareto_front_explained`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParetoVerdict {
    /// The point sits on the front.
    Kept,
    /// Dominated by the front point at the given *input index*.
    DominatedBy(usize),
}

impl std::fmt::Display for ParetoVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParetoVerdict::Kept => f.write_str("kept"),
            ParetoVerdict::DominatedBy(i) => write!(f, "dominated-by {i}"),
        }
    }
}

/// [`pareto_front`] with a per-input verdict: the second vector is
/// parallel to `points` and names, for every dropped point, the front
/// point (by input index) that beats it on both axes. The front itself
/// is identical to what `pareto_front` returns for the same input.
pub fn pareto_front_explained<T>(
    mut points: Vec<ParetoPoint<T>>,
) -> (Vec<ParetoPoint<T>>, Vec<ParetoVerdict>) {
    let offered = points.len();
    // Sort an index permutation with the same stable comparator the
    // unexplained path used on the values, so tie order is preserved.
    let mut order: Vec<usize> = (0..offered).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .size
            .total_cmp(&points[b].size)
            .then(points[a].power.total_cmp(&points[b].power))
    });
    let mut verdicts = vec![ParetoVerdict::Kept; offered];
    let mut kept_order: Vec<usize> = Vec::new();
    let mut best_power = f64::INFINITY;
    for i in order {
        if points[i].power < best_power {
            best_power = points[i].power;
            verdicts[i] = ParetoVerdict::Kept;
            kept_order.push(i);
        } else {
            // Dominated by the most recent front point: same-or-smaller
            // size (sort order) with same-or-lower power. An empty front
            // is impossible here — the first point beats infinity.
            verdicts[i] = ParetoVerdict::DominatedBy(*kept_order.last().unwrap());
        }
    }
    // Extract the front in sorted order without cloning payloads.
    let mut slots: Vec<Option<ParetoPoint<T>>> = points.drain(..).map(Some).collect();
    let front: Vec<ParetoPoint<T>> = kept_order
        .iter()
        .map(|&i| slots[i].take().expect("each front index is unique"))
        .collect();
    datareuse_obs::add(datareuse_obs::Counter::ParetoPointsKept, front.len() as u64);
    datareuse_obs::add(
        datareuse_obs::Counter::ParetoPointsDropped,
        (offered - front.len()) as u64,
    );
    (front, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_dominated_points() {
        let pts = vec![
            ParetoPoint::new(10.0, 1.0, 0),
            ParetoPoint::new(5.0, 2.0, 1),
            ParetoPoint::new(7.0, 3.0, 2), // dominated by 1
            ParetoPoint::new(1.0, 8.0, 3),
            ParetoPoint::new(1.0, 9.0, 4), // dominated by 3
        ];
        let front = pareto_front(pts);
        let ids: Vec<i32> = front.iter().map(|p| p.payload).collect();
        assert_eq!(ids, vec![3, 1, 0]);
    }

    #[test]
    fn front_is_monotone() {
        let pts: Vec<ParetoPoint<usize>> = (0..100)
            .map(|i| {
                let s = ((i * 37) % 41) as f64;
                let p = ((i * 17) % 29) as f64;
                ParetoPoint::new(s, p, i)
            })
            .collect();
        let front = pareto_front(pts.clone());
        for w in front.windows(2) {
            assert!(w[1].size > w[0].size);
            assert!(w[1].power < w[0].power);
        }
        // No front point is dominated by any input point.
        for f in &front {
            assert!(!pts.iter().any(|p| p.dominates(f)));
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = ParetoPoint::new(1.0, 1.0, ());
        let b = ParetoPoint::new(1.0, 1.0, ());
        assert!(!a.dominates(&b));
        assert!(ParetoPoint::new(1.0, 0.5, ()).dominates(&b));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pareto_front::<()>(Vec::new()).is_empty());
        let one = pareto_front(vec![ParetoPoint::new(2.0, 2.0, "x")]);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn explained_front_matches_and_names_dominators() {
        let pts = vec![
            ParetoPoint::new(10.0, 1.0, 0),
            ParetoPoint::new(5.0, 2.0, 1),
            ParetoPoint::new(7.0, 3.0, 2), // dominated by 1
            ParetoPoint::new(1.0, 8.0, 3),
            ParetoPoint::new(1.0, 9.0, 4), // dominated by 3
        ];
        let (front, verdicts) = pareto_front_explained(pts.clone());
        assert_eq!(front, pareto_front(pts));
        assert_eq!(verdicts.len(), 5);
        assert_eq!(verdicts[0], ParetoVerdict::Kept);
        assert_eq!(verdicts[1], ParetoVerdict::Kept);
        assert_eq!(verdicts[2], ParetoVerdict::DominatedBy(1));
        assert_eq!(verdicts[3], ParetoVerdict::Kept);
        assert_eq!(verdicts[4], ParetoVerdict::DominatedBy(3));
        // Every named dominator actually dominates its victim.
        let inputs = [
            (10.0, 1.0),
            (5.0, 2.0),
            (7.0, 3.0),
            (1.0, 8.0),
            (1.0, 9.0),
        ];
        for (i, v) in verdicts.iter().enumerate() {
            if let ParetoVerdict::DominatedBy(w) = v {
                let winner = ParetoPoint::new(inputs[*w].0, inputs[*w].1, ());
                let loser = ParetoPoint::new(inputs[i].0, inputs[i].1, ());
                assert!(winner.dominates(&loser), "{w} does not dominate {i}");
            }
        }
        assert_eq!(ParetoVerdict::DominatedBy(3).to_string(), "dominated-by 3");
    }
}
