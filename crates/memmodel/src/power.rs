//! Memory energy models.
//!
//! The paper evaluates `P_j(N_bits, N_words, F_access)` with proprietary
//! IMEC memory power models and therefore reports only *normalized* costs.
//! We substitute a documented parametric on-chip SRAM model with the
//! standard published scaling shape — energy per access grows with the
//! bit-width and roughly with the square root of the word count (bitline /
//! wordline halves of a square array), plus a logarithmic decoder term —
//! and a large fixed per-access cost for the off-chip background memory.
//! All figures produced by this project are normalized to the
//! all-accesses-from-background baseline, exactly as the paper normalizes
//! its Fig. 4b/10b/11b, so the *shape* of the trade-off is preserved under
//! any monotone parameter choice.

/// Energy model for one memory: energy per read/write access as a function
/// of organisation (`words` × `bits`).
///
/// Implementations must be monotone in both `words` and `bits`; the
/// exploration relies on "smaller memories cost less per access"
/// (paper Section 1).
pub trait PowerModel {
    /// Energy per read access, in arbitrary consistent energy units.
    fn read_energy(&self, words: u64, bits: u32) -> f64;

    /// Energy per write access, in the same units.
    fn write_energy(&self, words: u64, bits: u32) -> f64;

    /// Average power for a given access frequency `f_access` (accesses per
    /// second, e.g. accesses-per-frame × frame rate — *not* the clock).
    fn read_power(&self, words: u64, bits: u32, f_access: f64) -> f64 {
        self.read_energy(words, bits) * f_access
    }
}

/// Parametric on-chip SRAM energy model.
///
/// ```text
/// E_read(words, bits) = e_fixed + bits · (e_cell + e_bitline · √words) + e_decode · log2(1+words)
/// E_write             = write_factor · E_read
/// ```
///
/// # Examples
///
/// ```
/// use datareuse_memmodel::{ParametricSram, PowerModel};
///
/// let m = ParametricSram::default();
/// // Monotone: a 16× larger memory costs strictly more per access.
/// assert!(m.read_energy(4096, 8) > m.read_energy(256, 8));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricSram {
    /// Fixed per-access energy (sense amps, control).
    pub e_fixed: f64,
    /// Per-bit cell access energy.
    pub e_cell: f64,
    /// Per-bit bitline energy coefficient (scales with √words).
    pub e_bitline: f64,
    /// Decoder energy per address bit.
    pub e_decode: f64,
    /// Write energy as a multiple of read energy.
    pub write_factor: f64,
}

impl Default for ParametricSram {
    fn default() -> Self {
        Self {
            e_fixed: 2.0,
            e_cell: 0.05,
            e_bitline: 0.02,
            e_decode: 0.4,
            write_factor: 1.2,
        }
    }
}

impl PowerModel for ParametricSram {
    fn read_energy(&self, words: u64, bits: u32) -> f64 {
        let words = words.max(1) as f64;
        let bits = bits as f64;
        self.e_fixed
            + bits * (self.e_cell + self.e_bitline * words.sqrt())
            + self.e_decode * (1.0 + words).log2()
    }

    fn write_energy(&self, words: u64, bits: u32) -> f64 {
        self.write_factor * self.read_energy(words, bits)
    }
}

/// Off-chip background memory model: a flat, large per-access energy —
/// off-chip I/O dominates and is insensitive to the resident array size.
#[derive(Debug, Clone, PartialEq)]
pub struct OffChipMemory {
    /// Energy per read access.
    pub e_read: f64,
    /// Energy per write access.
    pub e_write: f64,
}

impl Default for OffChipMemory {
    fn default() -> Self {
        // Roughly 20–50× a small on-chip buffer access, the commonly quoted
        // off-chip/on-chip energy gap for the paper's technology era.
        Self {
            e_read: 150.0,
            e_write: 180.0,
        }
    }
}

impl PowerModel for OffChipMemory {
    fn read_energy(&self, _words: u64, _bits: u32) -> f64 {
        self.e_read
    }

    fn write_energy(&self, _words: u64, _bits: u32) -> f64 {
        self.e_write
    }
}

/// The pair of models a copy-candidate chain is evaluated against: one for
/// the background level and one for every on-chip sub-level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemoryTechnology {
    /// Model for level 0 (the background memory holding the full signal).
    pub background: OffChipMemory,
    /// Model for on-chip copy-candidate levels.
    pub onchip: ParametricSram,
}

impl MemoryTechnology {
    /// Creates the default technology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read energy of a chain level: level 0 is background, deeper levels
    /// use the on-chip model with their own size.
    pub fn level_read_energy(&self, level_words: Option<u64>, bits: u32) -> f64 {
        match level_words {
            None => self.background.read_energy(0, bits),
            Some(w) => self.onchip.read_energy(w, bits),
        }
    }

    /// Write energy of a chain level (see [`MemoryTechnology::level_read_energy`]).
    pub fn level_write_energy(&self, level_words: Option<u64>, bits: u32) -> f64 {
        match level_words {
            None => self.background.write_energy(0, bits),
            Some(w) => self.onchip.write_energy(w, bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_is_monotone_in_words_and_bits() {
        let m = ParametricSram::default();
        let mut prev = 0.0;
        for words in [1u64, 8, 64, 512, 4096, 32768] {
            let e = m.read_energy(words, 8);
            assert!(e > prev);
            prev = e;
        }
        assert!(m.read_energy(256, 16) > m.read_energy(256, 8));
    }

    #[test]
    fn write_costs_more_than_read() {
        let m = ParametricSram::default();
        assert!(m.write_energy(1024, 8) > m.read_energy(1024, 8));
    }

    #[test]
    fn offchip_dwarfs_small_onchip() {
        let t = MemoryTechnology::new();
        assert!(
            t.background.e_read > 10.0 * t.onchip.read_energy(64, 8),
            "off-chip access must be much more expensive than a small buffer"
        );
    }

    #[test]
    fn level_helpers_dispatch() {
        let t = MemoryTechnology::new();
        assert_eq!(t.level_read_energy(None, 8), t.background.e_read);
        assert_eq!(
            t.level_read_energy(Some(128), 8),
            t.onchip.read_energy(128, 8)
        );
        assert_eq!(
            t.level_write_energy(Some(128), 8),
            t.onchip.write_energy(128, 8)
        );
    }

    #[test]
    fn power_scales_with_access_frequency() {
        let m = ParametricSram::default();
        let p1 = m.read_power(256, 8, 1.0e6);
        let p2 = m.read_power(256, 8, 2.0e6);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }
}
