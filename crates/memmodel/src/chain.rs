//! Copy-candidate chain cost evaluation (paper Section 3, eq. 1–3).
//!
//! A chain consists of the background memory (level 0) and `n` on-chip
//! copy-candidate sub-levels of strictly decreasing size. Each level `j`
//! receives `C_j` element writes (equal to the reads from level `j-1`), and
//! the processor issues `C_tot` reads at the innermost level. The total
//! power of the chain is (eq. 3):
//!
//! ```text
//! ΣP_j = C_1·(P_0^r + P_1^w) + C_2·(P_1^r + P_2^w) + … + C_tot·P_n^r
//! ```
//!
//! and the combined exploration cost is (eq. 2):
//!
//! ```text
//! F_c = α · ΣP_j + β · ΣA_j
//! ```
//!
//! The Section 6.2 *bypass* extension is supported at the innermost level:
//! bypassed accesses read level `n-1` directly and are never written into
//! level `n`.

use std::fmt;

use crate::area::AreaModel;
use crate::power::MemoryTechnology;

/// One on-chip sub-level of a copy-candidate chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLevel {
    /// Capacity `A_j` in elements.
    pub words: u64,
    /// Writes into this level per frame (`C_j`, eq. 1 denominator).
    pub fills: u64,
    /// Accesses bypassing this level per frame (only meaningful — and only
    /// allowed — at the innermost level; see [`CopyChain::validate`]).
    pub bypasses: u64,
}

impl ChainLevel {
    /// A level without bypass.
    pub fn new(words: u64, fills: u64) -> Self {
        Self {
            words,
            fills,
            bypasses: 0,
        }
    }

    /// A level with bypassed accesses (paper Fig. 9b).
    pub fn with_bypass(words: u64, fills: u64, bypasses: u64) -> Self {
        Self {
            words,
            fills,
            bypasses,
        }
    }
}

/// Errors detected by [`CopyChain::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateChainError {
    /// A level has zero capacity or zero fills.
    DegenerateLevel {
        /// 1-based level number.
        level: usize,
    },
    /// Level sizes do not strictly decrease inward.
    NonDecreasingSizes {
        /// 1-based level whose size is not smaller than its parent.
        level: usize,
    },
    /// Fill counts decrease inward (a smaller level cannot be filled less
    /// often than a larger one under optimal replacement).
    DecreasingFills {
        /// 1-based level with fewer fills than its parent.
        level: usize,
    },
    /// Bypass on a level that is not the innermost.
    BypassNotInnermost {
        /// 1-based offending level.
        level: usize,
    },
    /// A level's upstream traffic exceeds `C_tot`.
    TrafficExceedsTotal {
        /// 1-based offending level.
        level: usize,
    },
}

impl fmt::Display for ValidateChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegenerateLevel { level } => {
                write!(f, "level {level} has zero capacity or zero fills")
            }
            Self::NonDecreasingSizes { level } => write!(
                f,
                "level {level} is not strictly smaller than the level above"
            ),
            Self::DecreasingFills { level } => {
                write!(f, "level {level} has fewer fills than the level above")
            }
            Self::BypassNotInnermost { level } => {
                write!(f, "level {level} has bypasses but is not the innermost level")
            }
            Self::TrafficExceedsTotal { level } => {
                write!(f, "level {level} traffic exceeds the total access count")
            }
        }
    }
}

impl std::error::Error for ValidateChainError {}

/// A copy-candidate chain for one signal: background memory plus zero or
/// more on-chip sub-levels, outermost (largest) first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyChain {
    /// Total reads of the signal per frame (`C_tot`).
    pub c_tot: u64,
    /// Footprint of the signal in the background memory, in elements.
    pub background_words: u64,
    /// Element bit width.
    pub bits: u32,
    /// Sub-levels, outermost first.
    pub levels: Vec<ChainLevel>,
}

impl CopyChain {
    /// The chain with no hierarchy: all accesses go to the background
    /// memory. This is the normalization baseline of the paper's figures.
    pub fn baseline(c_tot: u64, background_words: u64, bits: u32) -> Self {
        Self {
            c_tot,
            background_words,
            bits,
            levels: Vec::new(),
        }
    }

    /// Adds an inner sub-level.
    pub fn push_level(&mut self, level: ChainLevel) {
        self.levels.push(level);
    }

    /// Number of sub-levels `n`.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The data reuse factor `F_Rj = C_tot / C_j` of sub-level `j`
    /// (1-based, eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or greater than [`CopyChain::depth`].
    pub fn reuse_factor(&self, j: usize) -> f64 {
        let level = &self.levels[j - 1];
        self.c_tot as f64 / level.fills as f64
    }

    /// Checks the structural invariants described on
    /// [`ValidateChainError`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ValidateChainError> {
        let mut prev_words = self.background_words;
        let mut prev_fills = 0u64;
        for (i, level) in self.levels.iter().enumerate() {
            let ord = i + 1;
            if level.words == 0 || level.fills == 0 {
                return Err(ValidateChainError::DegenerateLevel { level: ord });
            }
            if level.words >= prev_words {
                return Err(ValidateChainError::NonDecreasingSizes { level: ord });
            }
            if level.fills < prev_fills {
                return Err(ValidateChainError::DecreasingFills { level: ord });
            }
            if level.bypasses > 0 && ord != self.levels.len() {
                return Err(ValidateChainError::BypassNotInnermost { level: ord });
            }
            if level.fills + level.bypasses > self.c_tot {
                return Err(ValidateChainError::TrafficExceedsTotal { level: ord });
            }
            prev_words = level.words;
            prev_fills = level.fills;
        }
        Ok(())
    }
}

/// Evaluated cost of one chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainCost {
    /// Total access energy per frame (eq. 3 numerator, arbitrary units).
    pub energy: f64,
    /// Energy normalized to the all-background baseline (1.0 = no savings).
    pub normalized_energy: f64,
    /// On-chip size cost `ΣA_j` (eq. 2 second term).
    pub size_cost: f64,
    /// Total on-chip capacity in elements (the x axis of Fig. 4b/10b/11b).
    pub onchip_words: u64,
}

impl ChainCost {
    /// The combined exploration cost `F_c = α·energy + β·size` (eq. 2).
    pub fn weighted(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.energy + beta * self.size_cost
    }

    /// Average power at a frame rate: the paper's `F_access` "is obtained
    /// by multiplying the number of memory accesses per frame for a given
    /// signal with the frame rate of the application (this is **not** the
    /// clock frequency)". `energy` here is per frame, so power is simply
    /// `energy · F_frame`.
    pub fn average_power(&self, frame_rate: f64) -> f64 {
        self.energy * frame_rate
    }

    /// Serializes the eq. 2–3 cost terms for the audit log.
    pub fn to_json(&self) -> datareuse_obs::Json {
        datareuse_obs::Json::obj([
            ("energy", datareuse_obs::Json::Num(self.energy)),
            (
                "normalized_energy",
                datareuse_obs::Json::Num(self.normalized_energy),
            ),
            ("size_cost", datareuse_obs::Json::Num(self.size_cost)),
            ("onchip_words", datareuse_obs::Json::UInt(self.onchip_words)),
        ])
    }
}

/// Evaluates a chain after collapsing its virtual levels onto a physical
/// memory library (the predefined-hierarchy flow): each level is rounded
/// up to the next available memory, colliding levels merge into the
/// outermost of them, and oversized levels fall back to the background.
///
/// Returns the physical chain and its cost.
///
/// # Examples
///
/// ```
/// use datareuse_memmodel::{
///     evaluate_on_platform, BitCount, ChainLevel, CopyChain, MemoryLibrary, MemoryTechnology,
/// };
///
/// let tech = MemoryTechnology::new();
/// let lib = MemoryLibrary::powers_of_two(64, 4096);
/// let mut chain = CopyChain::baseline(10_000, 25_344, 8);
/// chain.push_level(ChainLevel::new(400, 50));
/// chain.push_level(ChainLevel::new(90, 200));
/// let (physical, cost) = evaluate_on_platform(&chain, &lib, &tech, &BitCount);
/// assert_eq!(physical.levels[0].words, 512); // 400 rounded up
/// assert_eq!(physical.levels[1].words, 128); // 90 rounded up
/// assert!(cost.normalized_energy < 1.0);
/// ```
pub fn evaluate_on_platform(
    chain: &CopyChain,
    library: &crate::library::MemoryLibrary,
    tech: &MemoryTechnology,
    area: &impl AreaModel,
) -> (CopyChain, ChainCost) {
    let virtual_sizes: Vec<u64> = chain.levels.iter().map(|l| l.words).collect();
    let mut physical = CopyChain::baseline(chain.c_tot, chain.background_words, chain.bits);
    for (phys_words, virt_idx) in library.collapse(&virtual_sizes) {
        // The surviving (outermost merged) virtual level supplies the
        // traffic: inner copies that were merged now live in the same
        // physical memory and cost nothing extra to "fill".
        let v = &chain.levels[virt_idx];
        physical.push_level(ChainLevel::with_bypass(
            phys_words.min(physical.background_words.saturating_sub(1)).max(1),
            v.fills,
            v.bypasses,
        ));
    }
    let cost = evaluate_chain(&physical, tech, area);
    (physical, cost)
}

/// Evaluates a chain under a memory technology and an area model.
///
/// Implements eq. 3 with the Fig. 9b bypass extension at the innermost
/// level: bypassed accesses read the next-outer level directly and are
/// never written inward.
///
/// # Examples
///
/// ```
/// use datareuse_memmodel::{
///     evaluate_chain, BitCount, ChainLevel, CopyChain, MemoryTechnology,
/// };
///
/// let tech = MemoryTechnology::new();
/// let mut chain = CopyChain::baseline(101_376, 25_344, 8);
/// chain.push_level(ChainLevel::new(2745, 484));
/// let cost = evaluate_chain(&chain, &tech, &BitCount);
/// assert!(cost.normalized_energy < 0.15); // large power saving
/// ```
pub fn evaluate_chain(
    chain: &CopyChain,
    tech: &MemoryTechnology,
    area: &impl AreaModel,
) -> ChainCost {
    datareuse_obs::add(datareuse_obs::Counter::ChainsEvaluated, 1);
    let bits = chain.bits;
    // words(level j): None = background.
    let words_of = |j: usize| -> Option<u64> {
        if j == 0 {
            None
        } else {
            Some(chain.levels[j - 1].words)
        }
    };
    let n = chain.levels.len();
    let mut energy = 0.0;
    for (i, level) in chain.levels.iter().enumerate() {
        let j = i + 1;
        // C_j · (P_{j-1}^r + P_j^w)
        energy += level.fills as f64
            * (tech.level_read_energy(words_of(j - 1), bits)
                + tech.level_write_energy(words_of(j), bits));
        // Bypassed accesses read level j-1 directly (only innermost).
        energy += level.bypasses as f64 * tech.level_read_energy(words_of(j - 1), bits);
    }
    // Processor reads from the innermost level; bypassed ones were already
    // charged above.
    let innermost_bypasses = chain.levels.last().map_or(0, |l| l.bypasses);
    energy +=
        (chain.c_tot - innermost_bypasses) as f64 * tech.level_read_energy(words_of(n), bits);

    let baseline = chain.c_tot as f64 * tech.level_read_energy(None, bits);
    let size_cost: f64 = chain
        .levels
        .iter()
        .map(|l| area.size_cost(l.words, bits))
        .sum();
    ChainCost {
        energy,
        normalized_energy: if baseline > 0.0 { energy / baseline } else { 0.0 },
        size_cost,
        onchip_words: chain.levels.iter().map(|l| l.words).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::BitCount;

    fn tech() -> MemoryTechnology {
        MemoryTechnology::new()
    }

    #[test]
    fn baseline_normalizes_to_one() {
        let chain = CopyChain::baseline(1000, 4096, 8);
        let cost = evaluate_chain(&chain, &tech(), &BitCount);
        assert!((cost.normalized_energy - 1.0).abs() < 1e-12);
        assert_eq!(cost.size_cost, 0.0);
        assert_eq!(cost.onchip_words, 0);
    }

    #[test]
    fn high_reuse_level_saves_power() {
        let mut chain = CopyChain::baseline(10_000, 25_344, 8);
        chain.push_level(ChainLevel::new(256, 100)); // F_R = 100
        chain.validate().unwrap();
        assert_eq!(chain.reuse_factor(1), 100.0);
        let cost = evaluate_chain(&chain, &tech(), &BitCount);
        assert!(cost.normalized_energy < 0.2, "{}", cost.normalized_energy);
    }

    #[test]
    fn useless_level_increases_power() {
        // F_R = 1: every access misses; the paper prunes these cases
        // "because the number of read operations from level (j-1) would
        // remain unchanged while the data also has to be stored and read
        // from level j".
        let mut chain = CopyChain::baseline(1000, 4096, 8);
        chain.push_level(ChainLevel::new(64, 1000));
        let cost = evaluate_chain(&chain, &tech(), &BitCount);
        assert!(cost.normalized_energy > 1.0);
    }

    #[test]
    fn two_level_chain_matches_hand_computed_eq3() {
        let t = tech();
        let mut chain = CopyChain::baseline(1000, 4096, 8);
        chain.push_level(ChainLevel::new(512, 10));
        chain.push_level(ChainLevel::new(64, 100));
        chain.validate().unwrap();
        let cost = evaluate_chain(&chain, &t, &BitCount);
        let p0r = t.level_read_energy(None, 8);
        let p1r = t.level_read_energy(Some(512), 8);
        let p1w = t.level_write_energy(Some(512), 8);
        let p2r = t.level_read_energy(Some(64), 8);
        let p2w = t.level_write_energy(Some(64), 8);
        let want = 10.0 * (p0r + p1w) + 100.0 * (p1r + p2w) + 1000.0 * p2r;
        assert!((cost.energy - want).abs() < 1e-9);
        assert_eq!(cost.onchip_words, 576);
        assert_eq!(cost.size_cost, 576.0 * 8.0);
    }

    #[test]
    fn bypass_reduces_energy_vs_polluting_fill() {
        let t = tech();
        // 1000 accesses; 400 have no reuse. Without bypass they fill the
        // level (fills 500); with bypass fills drop to 100.
        let mut plain = CopyChain::baseline(1000, 4096, 8);
        plain.push_level(ChainLevel::new(64, 500));
        let mut bypass = CopyChain::baseline(1000, 4096, 8);
        bypass.push_level(ChainLevel::with_bypass(64, 100, 400));
        bypass.validate().unwrap();
        let pc = evaluate_chain(&plain, &t, &BitCount);
        let bc = evaluate_chain(&bypass, &t, &BitCount);
        assert!(bc.energy < pc.energy);
    }

    #[test]
    fn validate_rejects_malformed_chains() {
        let mut c = CopyChain::baseline(100, 1000, 8);
        c.push_level(ChainLevel::new(1000, 10));
        assert!(matches!(
            c.validate(),
            Err(ValidateChainError::NonDecreasingSizes { level: 1 })
        ));

        let mut c = CopyChain::baseline(100, 1000, 8);
        c.push_level(ChainLevel::new(100, 50));
        c.push_level(ChainLevel::new(50, 10));
        assert!(matches!(
            c.validate(),
            Err(ValidateChainError::DecreasingFills { level: 2 })
        ));

        let mut c = CopyChain::baseline(100, 1000, 8);
        c.push_level(ChainLevel::with_bypass(100, 10, 5));
        c.push_level(ChainLevel::new(50, 20));
        assert!(matches!(
            c.validate(),
            Err(ValidateChainError::BypassNotInnermost { level: 1 })
        ));

        let mut c = CopyChain::baseline(100, 1000, 8);
        c.push_level(ChainLevel::new(10, 0));
        assert!(matches!(
            c.validate(),
            Err(ValidateChainError::DegenerateLevel { level: 1 })
        ));

        let mut c = CopyChain::baseline(100, 1000, 8);
        c.push_level(ChainLevel::with_bypass(10, 90, 20));
        assert!(matches!(
            c.validate(),
            Err(ValidateChainError::TrafficExceedsTotal { level: 1 })
        ));
    }

    #[test]
    fn average_power_scales_with_frame_rate() {
        let cost = ChainCost {
            energy: 2.5,
            normalized_energy: 0.5,
            size_cost: 1.0,
            onchip_words: 1,
        };
        assert_eq!(cost.average_power(30.0), 75.0);
        assert_eq!(cost.average_power(0.0), 0.0);
    }

    #[test]
    fn platform_evaluation_rounds_merges_and_drops() {
        use crate::library::MemoryLibrary;
        let t = tech();
        let lib = MemoryLibrary::new([64, 256]);
        let mut chain = CopyChain::baseline(10_000, 25_344, 8);
        chain.push_level(ChainLevel::new(4096, 10)); // too big for the library
        chain.push_level(ChainLevel::new(200, 50)); // -> 256
        chain.push_level(ChainLevel::new(70, 200)); // -> 256, merged away
        chain.push_level(ChainLevel::new(9, 400)); // -> 64
        let (physical, cost) = evaluate_on_platform(&chain, &lib, &t, &BitCount);
        let words: Vec<u64> = physical.levels.iter().map(|l| l.words).collect();
        assert_eq!(words, vec![256, 64]);
        let fills: Vec<u64> = physical.levels.iter().map(|l| l.fills).collect();
        assert_eq!(fills, vec![50, 400]);
        physical.validate().unwrap();
        assert!(cost.normalized_energy < 1.0);
    }

    #[test]
    fn weighted_cost_combines_alpha_beta() {
        let cost = ChainCost {
            energy: 10.0,
            normalized_energy: 0.5,
            size_cost: 4.0,
            onchip_words: 4,
        };
        assert_eq!(cost.weighted(1.0, 0.0), 10.0);
        assert_eq!(cost.weighted(0.0, 2.0), 8.0);
        assert_eq!(cost.weighted(2.0, 0.5), 22.0);
    }
}
