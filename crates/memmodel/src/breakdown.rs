//! Per-level energy breakdown of a copy-candidate chain.
//!
//! [`chain_breakdown`] decomposes the eq. 3 total into the contribution
//! of every memory level — the fill traffic it receives, the reads it
//! serves downstream, and the bypass reads it absorbs — so a designer can
//! see *where* the energy goes, not just how much.

use crate::chain::CopyChain;
use crate::power::MemoryTechnology;

/// Energy attributed to one memory of the chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEnergy {
    /// Level number: 0 is the background memory, `1..=n` the sub-levels.
    pub level: usize,
    /// Capacity in elements (`None` for the background memory).
    pub words: Option<u64>,
    /// Energy of reads this memory serves (to the next level or the
    /// processor, including bypass reads it absorbs).
    pub read_energy: f64,
    /// Energy of writes into this memory (copy fills).
    pub write_energy: f64,
}

impl LevelEnergy {
    /// Total energy attributed to the level.
    pub fn total(&self) -> f64 {
        self.read_energy + self.write_energy
    }
}

/// The full decomposition; level totals sum to the eq. 3 chain energy.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainBreakdown {
    /// Per-level contributions, background first.
    pub levels: Vec<LevelEnergy>,
    /// Sum of all contributions (equals
    /// [`crate::ChainCost::energy`] from [`crate::evaluate_chain`]).
    pub total: f64,
}

impl ChainBreakdown {
    /// Fraction of the total consumed by the background memory — the
    /// quantity the hierarchy exists to shrink.
    pub fn background_share(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.levels[0].total() / self.total
        }
    }
}

/// Decomposes the chain energy per level (see [`crate::evaluate_chain`]
/// for the aggregate form).
///
/// # Examples
///
/// ```
/// use datareuse_memmodel::{
///     chain_breakdown, evaluate_chain, BitCount, ChainLevel, CopyChain, MemoryTechnology,
/// };
///
/// let tech = MemoryTechnology::new();
/// let mut chain = CopyChain::baseline(10_000, 25_344, 8);
/// chain.push_level(ChainLevel::new(256, 100));
/// let bd = chain_breakdown(&chain, &tech);
/// let cost = evaluate_chain(&chain, &tech, &BitCount);
/// assert!((bd.total - cost.energy).abs() < 1e-9);
/// assert!(bd.background_share() < 0.5); // the buffer absorbed the traffic
/// ```
pub fn chain_breakdown(chain: &CopyChain, tech: &MemoryTechnology) -> ChainBreakdown {
    let bits = chain.bits;
    let n = chain.levels.len();
    let words_of = |j: usize| -> Option<u64> {
        if j == 0 {
            None
        } else {
            Some(chain.levels[j - 1].words)
        }
    };
    let mut levels: Vec<LevelEnergy> = (0..=n)
        .map(|j| LevelEnergy {
            level: j,
            words: words_of(j),
            read_energy: 0.0,
            write_energy: 0.0,
        })
        .collect();
    for (i, level) in chain.levels.iter().enumerate() {
        let j = i + 1;
        // Fills: read from j-1, write into j.
        levels[j - 1].read_energy +=
            level.fills as f64 * tech.level_read_energy(words_of(j - 1), bits);
        levels[j].write_energy +=
            level.fills as f64 * tech.level_write_energy(words_of(j), bits);
        // Bypass reads absorbed by the level above.
        levels[j - 1].read_energy +=
            level.bypasses as f64 * tech.level_read_energy(words_of(j - 1), bits);
    }
    let innermost_bypasses = chain.levels.last().map_or(0, |l| l.bypasses);
    levels[n].read_energy +=
        (chain.c_tot - innermost_bypasses) as f64 * tech.level_read_energy(words_of(n), bits);
    let total = levels.iter().map(LevelEnergy::total).sum();
    ChainBreakdown { levels, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::BitCount;
    use crate::chain::{evaluate_chain, ChainLevel};

    fn tech() -> MemoryTechnology {
        MemoryTechnology::new()
    }

    #[test]
    fn totals_match_evaluate_chain_for_depths_0_to_2() {
        let t = tech();
        let mut chain = CopyChain::baseline(1000, 4096, 8);
        for _ in 0..3 {
            let bd = chain_breakdown(&chain, &t);
            let cost = evaluate_chain(&chain, &t, &BitCount);
            assert!(
                (bd.total - cost.energy).abs() < 1e-9,
                "depth {}",
                chain.depth()
            );
            assert_eq!(bd.levels.len(), chain.depth() + 1);
            match chain.depth() {
                0 => chain.push_level(ChainLevel::new(512, 10)),
                _ => chain.push_level(ChainLevel::new(chain.levels.last().unwrap().words / 4, 100)),
            }
        }
    }

    #[test]
    fn bypass_energy_lands_on_the_parent_level() {
        let t = tech();
        let mut chain = CopyChain::baseline(1000, 4096, 8);
        chain.push_level(ChainLevel::with_bypass(64, 100, 400));
        let bd = chain_breakdown(&chain, &t);
        let cost = evaluate_chain(&chain, &t, &BitCount);
        assert!((bd.total - cost.energy).abs() < 1e-9);
        // Background serves fills + bypasses.
        let expected_bg_reads = (100 + 400) as f64 * t.level_read_energy(None, 8);
        assert!((bd.levels[0].read_energy - expected_bg_reads).abs() < 1e-9);
        // Background writes nothing.
        assert_eq!(bd.levels[0].write_energy, 0.0);
    }

    #[test]
    fn baseline_background_share_is_one() {
        let chain = CopyChain::baseline(500, 2048, 8);
        let bd = chain_breakdown(&chain, &tech());
        assert!((bd.background_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effective_hierarchy_shrinks_the_background_share() {
        let t = tech();
        let mut chain = CopyChain::baseline(100_000, 25_344, 8);
        chain.push_level(ChainLevel::new(256, 500)); // F_R = 200
        let bd = chain_breakdown(&chain, &t);
        assert!(bd.background_share() < 0.1);
    }
}
