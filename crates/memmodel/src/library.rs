//! Memory library for predefined hierarchies.
//!
//! The paper notes the methodology serves both custom hierarchies and
//! "efficiently using a predefined memory hierarchy with software cache
//! control", where "several of the virtual layers in the global
//! copy-candidate chain … can be collapsed to match the available memory
//! layers". A [`MemoryLibrary`] models the available physical sizes, and
//! [`MemoryLibrary::collapse`] maps a virtual copy-candidate chain onto
//! them.

/// A set of available on-chip memory capacities (in elements), as offered
/// by a memory compiler or a fixed platform (e.g. scratch-pad levels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLibrary {
    sizes: Vec<u64>,
}

impl MemoryLibrary {
    /// Creates a library from arbitrary sizes (deduplicated, sorted).
    pub fn new(sizes: impl IntoIterator<Item = u64>) -> Self {
        let mut sizes: Vec<u64> = sizes.into_iter().filter(|&s| s > 0).collect();
        sizes.sort_unstable();
        sizes.dedup();
        Self { sizes }
    }

    /// A power-of-two library covering `[min, max]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_memmodel::MemoryLibrary;
    ///
    /// let lib = MemoryLibrary::powers_of_two(16, 256);
    /// assert_eq!(lib.sizes(), &[16, 32, 64, 128, 256]);
    /// ```
    pub fn powers_of_two(min: u64, max: u64) -> Self {
        let mut sizes = Vec::new();
        let mut s = min.max(1).next_power_of_two();
        while s <= max {
            sizes.push(s);
            s *= 2;
        }
        Self::new(sizes)
    }

    /// Available sizes, ascending.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// The smallest library memory that can hold `words` elements.
    pub fn fit(&self, words: u64) -> Option<u64> {
        self.sizes.iter().copied().find(|&s| s >= words)
    }

    /// Collapses a virtual chain of copy-candidate sizes (outermost first,
    /// strictly decreasing) onto the library: each virtual level is rounded
    /// up to a physical size, and levels that collide on the same physical
    /// memory are merged (keeping the outermost, which subsumes the inner
    /// copies).
    ///
    /// Returns `(physical_size, virtual_index)` pairs; `virtual_index`
    /// identifies which input level survived. Virtual levels too large for
    /// the library are dropped — their data stays in the background memory.
    pub fn collapse(&self, virtual_sizes: &[u64]) -> Vec<(u64, usize)> {
        let mut out: Vec<(u64, usize)> = Vec::new();
        for (i, &v) in virtual_sizes.iter().enumerate() {
            match self.fit(v) {
                None => continue,
                Some(phys) => {
                    if out.last().map(|&(p, _)| p) == Some(phys) {
                        continue; // merged into the outer level
                    }
                    out.push((phys, i));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_rounds_up() {
        let lib = MemoryLibrary::new([64, 256, 1024]);
        assert_eq!(lib.fit(1), Some(64));
        assert_eq!(lib.fit(64), Some(64));
        assert_eq!(lib.fit(65), Some(256));
        assert_eq!(lib.fit(2000), None);
    }

    #[test]
    fn collapse_merges_colliding_levels() {
        let lib = MemoryLibrary::new([64, 256, 1024]);
        // Virtual chain 500 > 100 > 60 > 9: 500→1024, 100→256, 60→64, 9→64.
        let phys = lib.collapse(&[500, 100, 60, 9]);
        assert_eq!(phys, vec![(1024, 0), (256, 1), (64, 2)]);
    }

    #[test]
    fn collapse_drops_oversized_levels() {
        let lib = MemoryLibrary::new([64]);
        let phys = lib.collapse(&[4096, 32]);
        assert_eq!(phys, vec![(64, 1)]);
    }

    #[test]
    fn constructor_sorts_and_dedupes() {
        let lib = MemoryLibrary::new([256, 64, 256, 0]);
        assert_eq!(lib.sizes(), &[64, 256]);
    }

    #[test]
    fn powers_of_two_respects_nonpow2_min() {
        let lib = MemoryLibrary::powers_of_two(20, 100);
        assert_eq!(lib.sizes(), &[32, 64]);
    }
}
