//! # datareuse-memmodel
//!
//! Memory power/area models and copy-candidate chain cost evaluation for
//! the `datareuse` project (reproduction of the DATE 2002 data-reuse
//! exploration paper).
//!
//! The paper's exploration is steered by two cost functions (Section 3):
//! the chain power of eq. 3 and the combined power/size cost
//! `F_c = α·ΣP_j + β·ΣA_j` of eq. 2. The original work uses proprietary
//! IMEC memory models and reports normalized numbers; this crate supplies
//! a documented parametric substitute (see [`ParametricSram`] and
//! [`OffChipMemory`]) with the same monotone structure, so all relative
//! results — who wins, where the Pareto knees fall — are preserved.
//!
//! - [`PowerModel`], [`ParametricSram`], [`OffChipMemory`],
//!   [`MemoryTechnology`] — energy per access;
//! - [`AreaModel`], [`BitCount`], [`CellPeriphery`] — size cost `A_j`;
//! - [`CopyChain`], [`evaluate_chain`] — eq. 1–3 with the Fig. 9b bypass;
//! - [`pareto_front`] — the Fig. 4b Pareto filter;
//! - [`MemoryLibrary`] — collapsing virtual chains onto predefined layers.
//!
//! # Examples
//!
//! ```
//! use datareuse_memmodel::{
//!     evaluate_chain, BitCount, ChainLevel, CopyChain, MemoryTechnology,
//! };
//!
//! let tech = MemoryTechnology::new();
//! let mut chain = CopyChain::baseline(101_376, 25_344, 8);
//! chain.push_level(ChainLevel::new(2745, 484));
//! chain.validate()?;
//! let cost = evaluate_chain(&chain, &tech, &BitCount);
//! assert!(cost.normalized_energy < 1.0);
//! # Ok::<(), datareuse_memmodel::ValidateChainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod breakdown;
mod chain;
mod library;
mod pareto;
mod power;

pub use area::{AreaModel, BitCount, CellPeriphery};
pub use breakdown::{chain_breakdown, ChainBreakdown, LevelEnergy};
pub use chain::{
    evaluate_chain, evaluate_on_platform, ChainCost, ChainLevel, CopyChain, ValidateChainError,
};
pub use library::MemoryLibrary;
pub use pareto::{pareto_front, pareto_front_explained, ParetoPoint, ParetoVerdict};
pub use power::{MemoryTechnology, OffChipMemory, ParametricSram, PowerModel};
