//! Memory size/area cost model.
//!
//! The paper's cost function (eq. 2) charges `β · Σ A_j(N_bits, N_words)`
//! for the on-chip sub-levels. The figures plot "memory size" as element
//! counts; area-style models with cell and periphery terms are provided for
//! users who want silicon-area weighting instead.

/// Size cost model for an on-chip memory of `words` × `bits`.
pub trait AreaModel {
    /// The size cost charged by eq. 2 for one memory.
    fn size_cost(&self, words: u64, bits: u32) -> f64;
}

/// Counts storage bits only (`words · bits`) — the weighting used in the
/// paper's figures, which plot copy-candidate sizes in elements of a fixed
/// bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitCount;

impl AreaModel for BitCount {
    fn size_cost(&self, words: u64, bits: u32) -> f64 {
        words as f64 * bits as f64
    }
}

/// Area model with cell area plus a √(words·bits) periphery term modelling
/// decoders and sense amplifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPeriphery {
    /// Area per storage bit.
    pub a_cell: f64,
    /// Periphery coefficient.
    pub a_periphery: f64,
    /// Fixed overhead per memory instance.
    pub a_fixed: f64,
}

impl Default for CellPeriphery {
    fn default() -> Self {
        Self {
            a_cell: 1.0,
            a_periphery: 12.0,
            a_fixed: 50.0,
        }
    }
}

impl AreaModel for CellPeriphery {
    fn size_cost(&self, words: u64, bits: u32) -> f64 {
        let storage = words as f64 * bits as f64;
        self.a_fixed + self.a_cell * storage + self.a_periphery * storage.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_count_is_exact() {
        assert_eq!(BitCount.size_cost(100, 8), 800.0);
        assert_eq!(BitCount.size_cost(0, 8), 0.0);
    }

    #[test]
    fn periphery_adds_instance_overhead() {
        let m = CellPeriphery::default();
        // Two memories of 50 words cost more than one of 100 words:
        // the fixed + periphery overhead penalizes extra hierarchy layers,
        // the "negative effect on the memory size and interconnect cost"
        // the paper warns about.
        let two = 2.0 * m.size_cost(50, 8);
        let one = m.size_cost(100, 8);
        assert!(two > one);
    }

    #[test]
    fn monotone_in_words() {
        let m = CellPeriphery::default();
        assert!(m.size_cost(200, 8) > m.size_cost(100, 8));
    }
}
