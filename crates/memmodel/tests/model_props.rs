//! Property tests of the memory cost models.

use proptest::prelude::*;

use datareuse_memmodel::{
    chain_breakdown, evaluate_chain, pareto_front, AreaModel, BitCount, CellPeriphery,
    ChainLevel, CopyChain, MemoryLibrary, MemoryTechnology, ParametricSram, ParetoPoint,
    PowerModel,
};

proptest! {
    /// The SRAM model is monotone in words and bits, and writes never cost
    /// less than reads — the assumptions the whole exploration rests on.
    #[test]
    fn sram_energy_is_monotone(words in 1u64..1_000_000, bits in 1u32..128) {
        let m = ParametricSram::default();
        prop_assert!(m.read_energy(words * 2, bits) > m.read_energy(words, bits));
        prop_assert!(m.read_energy(words, bits + 8) > m.read_energy(words, bits));
        prop_assert!(m.write_energy(words, bits) >= m.read_energy(words, bits));
    }

    /// Area models are monotone in storage.
    #[test]
    fn area_models_are_monotone(words in 1u64..1_000_000, bits in 1u32..64) {
        prop_assert!(BitCount.size_cost(words + 1, bits) > BitCount.size_cost(words, bits));
        let cp = CellPeriphery::default();
        prop_assert!(cp.size_cost(words + 1, bits) > cp.size_cost(words, bits));
    }

    /// For a single-level chain, energy strictly decreases as fills drop
    /// (higher reuse factor) and strictly increases with the level size.
    #[test]
    fn chain_energy_follows_reuse_and_size(
        c_tot in 1_000u64..100_000,
        words in 2u64..4_096,
        fills in 1u64..900,
    ) {
        let tech = MemoryTechnology::new();
        let chain = |w: u64, f: u64| {
            let mut c = CopyChain::baseline(c_tot, 1 << 20, 8);
            c.push_level(ChainLevel::new(w, f.min(c_tot)));
            evaluate_chain(&c, &tech, &BitCount).energy
        };
        prop_assert!(chain(words, fills) < chain(words, (fills + 1).min(c_tot)));
        prop_assert!(chain(words, fills) < chain(words * 2, fills));
    }

    /// The per-level breakdown always sums to the aggregate energy, with
    /// and without bypass, at any depth up to 3.
    #[test]
    fn breakdown_sums_to_total(
        c_tot in 1_000u64..50_000,
        sizes in prop::collection::vec(2u64..12, 1..4),
        bypasses in 0u64..500,
    ) {
        let tech = MemoryTechnology::new();
        let mut chain = CopyChain::baseline(c_tot, 1 << 20, 16);
        // Build strictly decreasing sizes / non-decreasing fills.
        let mut words = 1u64 << 15;
        let mut fills = 8u64;
        let n = sizes.len();
        for (i, step) in sizes.iter().enumerate() {
            words /= step.max(&2);
            fills = (fills * 3).min(c_tot / 2);
            let b = if i + 1 == n { bypasses.min(c_tot - fills) } else { 0 };
            chain.push_level(ChainLevel::with_bypass(words.max(1), fills, b));
        }
        prop_assume!(chain.validate().is_ok());
        let bd = chain_breakdown(&chain, &tech);
        let cost = evaluate_chain(&chain, &tech, &BitCount);
        prop_assert!((bd.total - cost.energy).abs() < 1e-6 * cost.energy.max(1.0));
        prop_assert!(bd.background_share() >= 0.0 && bd.background_share() <= 1.0);
    }

    /// Library collapsing: physical sizes are library members, strictly
    /// decreasing, and each covers its virtual level.
    #[test]
    fn library_collapse_invariants(
        virtuals in prop::collection::vec(1u64..10_000, 0..6),
        lo_exp in 2u32..6,
        hi_exp in 8u32..14,
    ) {
        let lib = MemoryLibrary::powers_of_two(1 << lo_exp, 1 << hi_exp);
        let mut sorted = virtuals.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.dedup();
        let phys = lib.collapse(&sorted);
        for w in phys.windows(2) {
            prop_assert!(w[1].0 < w[0].0);
        }
        for &(p, v) in &phys {
            prop_assert!(lib.sizes().contains(&p));
            prop_assert!(p >= sorted[v]);
        }
    }

    /// Pareto front size never exceeds the input and always contains the
    /// global power minimum.
    #[test]
    fn pareto_front_contains_the_minimum(
        pts in prop::collection::vec((0u32..100, 1u32..100), 1..40)
    ) {
        let points: Vec<ParetoPoint<()>> = pts
            .iter()
            .map(|&(s, p)| ParetoPoint::new(s as f64, p as f64, ()))
            .collect();
        let min_power = points.iter().map(|p| p.power).fold(f64::INFINITY, f64::min);
        let front = pareto_front(points.clone());
        prop_assert!(front.len() <= pts.len());
        prop_assert!((front.last().unwrap().power - min_power).abs() < 1e-12);
    }
}
