//! Property tests of the memory cost models, driven by the in-repo
//! deterministic harness (`datareuse-proptest`).

use datareuse_proptest::{check, prop_assert, Config};

use datareuse_memmodel::{
    chain_breakdown, evaluate_chain, pareto_front, AreaModel, BitCount, CellPeriphery,
    ChainLevel, CopyChain, MemoryLibrary, MemoryTechnology, ParametricSram, ParetoPoint,
    PowerModel,
};

/// The SRAM model is monotone in words and bits, and writes never cost
/// less than reads — the assumptions the whole exploration rests on.
#[test]
fn sram_energy_is_monotone() {
    check(
        "sram_energy_is_monotone",
        &Config::default(),
        |rng| (rng.u64_in(1, 999_999), rng.u32_in(1, 127)),
        |&(words, bits)| {
            if words < 1 || bits < 1 {
                return Ok(());
            }
            let m = ParametricSram::default();
            prop_assert!(m.read_energy(words * 2, bits) > m.read_energy(words, bits));
            prop_assert!(m.read_energy(words, bits + 8) > m.read_energy(words, bits));
            prop_assert!(m.write_energy(words, bits) >= m.read_energy(words, bits));
            Ok(())
        },
    );
}

/// Area models are monotone in storage.
#[test]
fn area_models_are_monotone() {
    check(
        "area_models_are_monotone",
        &Config::default(),
        |rng| (rng.u64_in(1, 999_999), rng.u32_in(1, 63)),
        |&(words, bits)| {
            if words < 1 || bits < 1 {
                return Ok(());
            }
            prop_assert!(BitCount.size_cost(words + 1, bits) > BitCount.size_cost(words, bits));
            let cp = CellPeriphery::default();
            prop_assert!(cp.size_cost(words + 1, bits) > cp.size_cost(words, bits));
            Ok(())
        },
    );
}

/// For a single-level chain, energy strictly decreases as fills drop
/// (higher reuse factor) and strictly increases with the level size.
#[test]
fn chain_energy_follows_reuse_and_size() {
    check(
        "chain_energy_follows_reuse_and_size",
        &Config::default(),
        |rng| {
            (
                rng.u64_in(1_000, 99_999),
                rng.u64_in(2, 4_096),
                rng.u64_in(1, 899),
            )
        },
        |&(c_tot, words, fills)| {
            if c_tot < 1 || words < 2 || fills < 1 {
                return Ok(());
            }
            let tech = MemoryTechnology::new();
            let chain = |w: u64, f: u64| {
                let mut c = CopyChain::baseline(c_tot, 1 << 20, 8);
                c.push_level(ChainLevel::new(w, f.min(c_tot)));
                evaluate_chain(&c, &tech, &BitCount).energy
            };
            prop_assert!(chain(words, fills) < chain(words, (fills + 1).min(c_tot)));
            prop_assert!(chain(words, fills) < chain(words * 2, fills));
            Ok(())
        },
    );
}

/// The per-level breakdown always sums to the aggregate energy, with
/// and without bypass, at any depth up to 3.
#[test]
fn breakdown_sums_to_total() {
    check(
        "breakdown_sums_to_total",
        &Config::default(),
        |rng| {
            (
                rng.u64_in(1_000, 49_999),
                rng.vec(1, 3, |r| r.u64_in(2, 11)),
                rng.u64_in(0, 499),
            )
        },
        |(c_tot, sizes, bypasses)| {
            let (c_tot, bypasses) = (*c_tot, *bypasses);
            if c_tot < 1_000 || sizes.is_empty() {
                return Ok(());
            }
            let tech = MemoryTechnology::new();
            let mut chain = CopyChain::baseline(c_tot, 1 << 20, 16);
            // Build strictly decreasing sizes / non-decreasing fills.
            let mut words = 1u64 << 15;
            let mut fills = 8u64;
            let n = sizes.len();
            for (i, step) in sizes.iter().enumerate() {
                words /= (*step).max(2);
                fills = (fills * 3).min(c_tot / 2);
                let b = if i + 1 == n {
                    bypasses.min(c_tot - fills)
                } else {
                    0
                };
                chain.push_level(ChainLevel::with_bypass(words.max(1), fills, b));
            }
            if chain.validate().is_err() {
                return Ok(()); // generated chain out of model domain
            }
            let bd = chain_breakdown(&chain, &tech);
            let cost = evaluate_chain(&chain, &tech, &BitCount);
            prop_assert!((bd.total - cost.energy).abs() < 1e-6 * cost.energy.max(1.0));
            prop_assert!(bd.background_share() >= 0.0 && bd.background_share() <= 1.0);
            Ok(())
        },
    );
}

/// Library collapsing: physical sizes are library members, strictly
/// decreasing, and each covers its virtual level.
#[test]
fn library_collapse_invariants() {
    check(
        "library_collapse_invariants",
        &Config::default(),
        |rng| {
            (
                rng.vec(0, 5, |r| r.u64_in(1, 9_999)),
                rng.u32_in(2, 5),
                rng.u32_in(8, 13),
            )
        },
        |(virtuals, lo_exp, hi_exp)| {
            let (lo_exp, hi_exp) = (*lo_exp, *hi_exp);
            if lo_exp < 2 || hi_exp < 8 || virtuals.iter().any(|&v| v < 1) {
                return Ok(());
            }
            let lib = MemoryLibrary::powers_of_two(1 << lo_exp, 1 << hi_exp);
            let mut sorted = virtuals.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.dedup();
            let phys = lib.collapse(&sorted);
            for w in phys.windows(2) {
                prop_assert!(w[1].0 < w[0].0);
            }
            for &(p, v) in &phys {
                prop_assert!(lib.sizes().contains(&p));
                prop_assert!(p >= sorted[v]);
            }
            Ok(())
        },
    );
}

/// Pareto front size never exceeds the input and always contains the
/// global power minimum.
#[test]
fn pareto_front_contains_the_minimum() {
    check(
        "pareto_front_contains_the_minimum",
        &Config::default(),
        |rng| rng.vec(1, 40, |r| (r.u32_in(0, 99), r.u32_in(1, 99))),
        |pts: &Vec<(u32, u32)>| {
            if pts.is_empty() || pts.iter().any(|&(_, p)| p < 1) {
                return Ok(());
            }
            let points: Vec<ParetoPoint<()>> = pts
                .iter()
                .map(|&(s, p)| ParetoPoint::new(s as f64, p as f64, ()))
                .collect();
            let min_power = points.iter().map(|p| p.power).fold(f64::INFINITY, f64::min);
            let front = pareto_front(points.clone());
            prop_assert!(front.len() <= pts.len());
            prop_assert!((front.last().unwrap().power - min_power).abs() < 1e-12);
            Ok(())
        },
    );
}
