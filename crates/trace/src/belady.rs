//! Belady optimal replacement simulation.
//!
//! The paper (Section 4) defines the search space boundary: "For a fixed
//! memory size `A_j` the highest possible data reuse factor is reached by
//! applying Belady's optimal replacement strategy". This module implements
//! that strategy exactly — with and without *bypass* — so the analytical
//! model of Sections 5–6 can be validated against the true optimum, as the
//! paper does in Figs. 4, 10 and 11.

use std::collections::{BTreeMap, HashMap};

use datareuse_obs::{Counter, LocalCounter};

use crate::result::SimResult;

/// Index used for "never accessed again".
const NEVER: u64 = u64::MAX;

/// Precomputes, for each trace position, the position of the next access to
/// the same address (`NEVER` when there is none).
fn next_use_table(trace: &[u64]) -> Vec<u64> {
    let mut next = vec![NEVER; trace.len()];
    let mut last: HashMap<u64, u64> = HashMap::new();
    for (i, &addr) in trace.iter().enumerate().rev() {
        if let Some(&n) = last.get(&addr) {
            next[i] = n;
        }
        last.insert(addr, i as u64);
    }
    next
}

/// Simulates Belady's MIN policy on `trace` with `capacity` elements.
///
/// Every miss fills the buffer (no bypass), evicting the resident element
/// whose next use lies farthest in the future. This is the classic
/// replacement optimum for fill-on-miss buffers, i.e. the paper's
/// simulation-based reuse bound without the Section 6.2 bypass option.
///
/// # Panics
///
/// Panics if `capacity` is 0.
///
/// # Examples
///
/// ```
/// use datareuse_trace::opt_simulate;
///
/// // A[j+k] for j in 0..3, k in 0..2: 0 1 1 2 2 3
/// let trace = [0u64, 1, 1, 2, 2, 3];
/// let r = opt_simulate(&trace, 1);
/// assert_eq!(r.fills, 4);          // each distinct element loaded once
/// assert_eq!(r.hits, 2);
/// assert_eq!(r.reuse_factor(), 1.5);
/// ```
pub fn opt_simulate(trace: &[u64], capacity: u64) -> SimResult {
    let next = next_use_table(trace);
    opt_simulate_impl(trace, &next, capacity, false)
}

/// Simulates optimal replacement **with bypass**: on a miss whose next use
/// lies farther than every resident's, the access is served directly from
/// the next level without polluting the buffer.
///
/// This corresponds to the paper's "copy-candidate with bypass"
/// (Section 6.2, Fig. 9b): data without sufficient future reuse is never
/// written to the intermediate copy-candidate, so `fills` (= `C_j`) drops
/// and the reuse factor `F'_R` rises (eq. 19).
///
/// # Panics
///
/// Panics if `capacity` is 0.
pub fn opt_simulate_bypass(trace: &[u64], capacity: u64) -> SimResult {
    let next = next_use_table(trace);
    opt_simulate_impl(trace, &next, capacity, true)
}

/// Simulates Belady's MIN at several capacities, sharing the forward-use
/// precomputation across all of them — the workhorse behind whole
/// reuse-factor-curve sweeps (Fig. 4a/11a).
///
/// # Panics
///
/// Panics if any capacity is 0.
///
/// # Examples
///
/// ```
/// use datareuse_trace::{opt_simulate, opt_simulate_many};
///
/// let trace = [0u64, 1, 1, 2, 2, 3, 0, 1];
/// let many = opt_simulate_many(&trace, &[1, 2, 4]);
/// assert_eq!(many.len(), 3);
/// assert_eq!(many[1], opt_simulate(&trace, 2));
/// ```
pub fn opt_simulate_many(trace: &[u64], capacities: &[u64]) -> Vec<SimResult> {
    let next = next_use_table(trace);
    capacities
        .iter()
        .map(|&c| opt_simulate_impl(trace, &next, c, false))
        .collect()
}

/// Bypass-enabled variant of [`opt_simulate_many`].
///
/// # Panics
///
/// Panics if any capacity is 0.
pub fn opt_simulate_bypass_many(trace: &[u64], capacities: &[u64]) -> Vec<SimResult> {
    let next = next_use_table(trace);
    capacities
        .iter()
        .map(|&c| opt_simulate_impl(trace, &next, c, true))
        .collect()
}

fn opt_simulate_impl(trace: &[u64], next: &[u64], capacity: u64, bypass: bool) -> SimResult {
    assert!(capacity > 0, "copy-candidate capacity must be positive");
    // Resident set: addr -> its current next-use key; inverse: key -> addr.
    // Keys are trace positions, hence unique; NEVER collides, so dedupe it
    // by (NEVER - addr) which stays unique and still sorts above all real
    // positions for traces shorter than NEVER/2.
    let mut resident: HashMap<u64, u64> = HashMap::new();
    let mut by_key: BTreeMap<u64, u64> = BTreeMap::new();
    let key_of = |next_pos: u64, addr: u64| -> u64 {
        if next_pos == NEVER {
            NEVER - addr
        } else {
            next_pos
        }
    };

    let mut hits = 0u64;
    let mut fills = 0u64;
    let mut bypasses = 0u64;
    // Chunked flushes keep the shared `belady_accesses` counter fresh
    // enough for live `--progress` narration without touching the shared
    // cache line per access (and they cost nothing when metrics are off).
    let mut obs_accesses = LocalCounter::new(Counter::BeladyAccesses);
    let mut obs_hits = LocalCounter::new(Counter::BeladyHits);
    let mut obs_evictions = LocalCounter::new(Counter::BeladyEvictions);
    let mut obs_bypasses = LocalCounter::new(Counter::BeladyBypasses);

    for (i, &addr) in trace.iter().enumerate() {
        obs_accesses.incr();
        let new_key = key_of(next[i], addr);
        if let Some(old_key) = resident.remove(&addr) {
            hits += 1;
            obs_hits.incr();
            by_key.remove(&old_key);
            resident.insert(addr, new_key);
            by_key.insert(new_key, addr);
            continue;
        }
        // Miss.
        if (resident.len() as u64) < capacity {
            fills += 1;
            resident.insert(addr, new_key);
            by_key.insert(new_key, addr);
            continue;
        }
        let (&worst_key, &worst_addr) = by_key.iter().next_back().expect("non-empty buffer");
        if bypass && new_key >= worst_key {
            // The incoming element is the worst candidate: serve it
            // upstream and leave the buffer untouched.
            bypasses += 1;
            obs_bypasses.incr();
            continue;
        }
        by_key.remove(&worst_key);
        resident.remove(&worst_addr);
        fills += 1;
        obs_evictions.incr();
        resident.insert(addr, new_key);
        by_key.insert(new_key, addr);
    }

    SimResult {
        capacity,
        accesses: trace.len() as u64,
        hits,
        fills,
        bypasses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference OPT via brute force over a tiny trace: exhaustive search of
    /// all eviction decisions.
    fn brute_force_opt_misses(trace: &[u64], capacity: usize) -> u64 {
        fn go(trace: &[u64], at: usize, buf: &mut Vec<u64>, capacity: usize) -> u64 {
            if at == trace.len() {
                return 0;
            }
            let addr = trace[at];
            if buf.contains(&addr) {
                return go(trace, at + 1, buf, capacity);
            }
            if buf.len() < capacity {
                buf.push(addr);
                let r = 1 + go(trace, at + 1, buf, capacity);
                buf.pop();
                return r;
            }
            let mut best = u64::MAX;
            for victim in 0..buf.len() {
                let old = buf[victim];
                buf[victim] = addr;
                best = best.min(1 + go(trace, at + 1, buf, capacity));
                buf[victim] = old;
            }
            best
        }
        go(trace, 0, &mut Vec::new(), capacity)
    }

    #[test]
    fn matches_brute_force_on_small_traces() {
        let traces: &[&[u64]] = &[
            &[0, 1, 2, 0, 1, 2, 3, 0, 1, 2],
            &[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5],
            &[0, 0, 0, 1, 1, 2],
            &[5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5],
        ];
        for trace in traces {
            for cap in 1..=4u64 {
                let got = opt_simulate(trace, cap).misses();
                let want = brute_force_opt_misses(trace, cap as usize);
                assert_eq!(got, want, "trace {trace:?} capacity {cap}");
            }
        }
    }

    #[test]
    fn full_capacity_loads_each_element_once() {
        let trace = [0u64, 1, 2, 0, 1, 2, 0, 1, 2];
        let r = opt_simulate(&trace, 3);
        assert_eq!(r.fills, 3);
        assert_eq!(r.hits, 6);
        assert_eq!(r.reuse_factor(), 3.0);
    }

    #[test]
    fn capacity_one_hits_only_consecutive_repeats() {
        let trace = [7u64, 7, 8, 8, 8, 7];
        let r = opt_simulate(&trace, 1);
        assert_eq!(r.hits, 3);
        assert_eq!(r.fills, 3);
    }

    #[test]
    fn bypass_never_loses_to_plain_opt() {
        let trace: Vec<u64> = vec![0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 0, 1, 9, 0, 1, 2, 3];
        for cap in 1..=5 {
            let plain = opt_simulate(&trace, cap);
            let by = opt_simulate_bypass(&trace, cap);
            assert!(by.hits >= plain.hits, "cap {cap}");
            assert!(by.fills <= plain.fills, "cap {cap}");
        }
    }

    #[test]
    fn bypass_skips_streaming_data() {
        // 0 is hot, the rest streams through exactly once.
        let trace = [0u64, 1, 0, 2, 0, 3, 0, 4, 0];
        let r = opt_simulate_bypass(&trace, 1);
        assert_eq!(r.fills, 1); // only `0` is ever copied
        assert_eq!(r.bypasses, 4);
        assert_eq!(r.hits, 4);
        assert_eq!(r.upstream_reads(), 5);
    }

    #[test]
    fn many_matches_single_for_both_policies() {
        let trace: Vec<u64> = (0..400u64).map(|i| (i * 7 + i / 5) % 37).collect();
        let caps = [1u64, 3, 8, 21, 37];
        let many = opt_simulate_many(&trace, &caps);
        let many_b = opt_simulate_bypass_many(&trace, &caps);
        for (i, &c) in caps.iter().enumerate() {
            assert_eq!(many[i], opt_simulate(&trace, c));
            assert_eq!(many_b[i], opt_simulate_bypass(&trace, c));
        }
    }

    #[test]
    fn next_use_table_is_correct() {
        let trace = [3u64, 1, 3, 3, 1];
        let next = next_use_table(&trace);
        assert_eq!(next, vec![2, 4, 3, NEVER, NEVER]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        opt_simulate(&[1, 2, 3], 0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = opt_simulate(&[], 4);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.hits, 0);
        assert_eq!(r.fills, 0);
    }
}
