//! Cache-line granularity and shared-buffer utilities.
//!
//! The paper's copy-candidates are element-granular and per-signal; a
//! hardware cache works on *lines* shared by *all* signals. These helpers
//! let the benchmark harness quantify both differences: [`to_lines`]
//! coarsens a trace to line granularity (spatial locality), and
//! [`interleave`] merges per-signal traces into the unified stream a
//! shared cache would see (inter-signal conflict).

/// Maps an element-granular trace onto cache lines of `line_elems`
/// elements (addresses become line indices).
///
/// # Panics
///
/// Panics when `line_elems` is 0.
///
/// # Examples
///
/// ```
/// use datareuse_trace::to_lines;
/// assert_eq!(to_lines(&[0, 1, 7, 8, 9], 4), vec![0, 0, 1, 2, 2]);
/// ```
pub fn to_lines(trace: &[u64], line_elems: u64) -> Vec<u64> {
    assert!(line_elems > 0, "line size must be positive");
    trace.iter().map(|&a| a / line_elems).collect()
}

/// Interleaves per-signal traces into one shared stream, tagging each
/// signal into a disjoint address region (signal `i`'s element `a` maps to
/// `i · stride + a`). `stride` must exceed every signal's footprint.
///
/// The per-iteration interleaving is round-robin proportional to the
/// traces' lengths, which models signals accessed together inside one
/// loop body.
///
/// # Panics
///
/// Panics when any address reaches `stride`.
///
/// # Examples
///
/// ```
/// use datareuse_trace::interleave;
/// let merged = interleave(&[&[0, 1], &[5, 6]], 100);
/// assert_eq!(merged, vec![0, 105, 1, 106]);
/// ```
pub fn interleave(traces: &[&[u64]], stride: u64) -> Vec<u64> {
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);
    let longest = traces.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut cursors = vec![0usize; traces.len()];
    for step in 0..longest {
        for (i, t) in traces.iter().enumerate() {
            // Proportional pacing: signal i emits when its progress lags.
            let due = ((step + 1) * t.len()).div_ceil(longest);
            while cursors[i] < due {
                let a = t[cursors[i]];
                assert!(a < stride, "address {a} reaches the region stride");
                out.push(i as u64 * stride + a);
                cursors[i] += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::opt_simulate;
    use crate::policies::lru_simulate;

    #[test]
    fn lines_preserve_length_and_scale_addresses() {
        let t = [0u64, 3, 4, 8, 100];
        let l = to_lines(&t, 4);
        assert_eq!(l.len(), t.len());
        assert_eq!(l, vec![0, 0, 1, 2, 25]);
        assert_eq!(to_lines(&t, 1), t.to_vec());
    }

    #[test]
    fn lines_add_spatial_hits_on_sequential_scans() {
        let t: Vec<u64> = (0..64u64).collect();
        let elems = opt_simulate(&t, 2);
        let lines = opt_simulate(&to_lines(&t, 8), 2);
        assert_eq!(elems.hits, 0);
        assert_eq!(lines.hits, 56); // 7 of every 8 accesses hit the line
    }

    #[test]
    fn interleave_preserves_per_signal_order_and_counts() {
        let a: Vec<u64> = (0..10).collect();
        let b: Vec<u64> = (0..5).map(|i| i * 2).collect();
        let merged = interleave(&[&a, &b], 1000);
        assert_eq!(merged.len(), 15);
        let got_a: Vec<u64> = merged.iter().copied().filter(|&x| x < 1000).collect();
        let got_b: Vec<u64> = merged
            .iter()
            .copied()
            .filter(|&x| x >= 1000)
            .map(|x| x - 1000)
            .collect();
        assert_eq!(got_a, a);
        assert_eq!(got_b, b);
    }

    #[test]
    fn shared_buffer_suffers_inter_signal_conflict() {
        // Signal A: hot 4-element set; signal B: streaming. Split buffers
        // (4 for A, 1 for B) beat one shared 5-element LRU.
        let a: Vec<u64> = (0..200u64).map(|i| i % 4).collect();
        let b: Vec<u64> = (0..200u64).collect();
        let shared = lru_simulate(&interleave(&[&a, &b], 10_000), 5);
        let split = lru_simulate(&a, 4).misses() + lru_simulate(&b, 1).misses();
        assert!(
            split < shared.misses(),
            "split {} vs shared {}",
            split,
            shared.misses()
        );
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn zero_line_panics() {
        to_lines(&[1], 0);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn overflowing_region_panics() {
        interleave(&[&[10]], 10);
    }
}
