//! Multi-level hierarchy simulation by miss-stream cascading.
//!
//! The paper's chain cost (eq. 3) rests on an idealization: "The number of
//! writes `C_j` is a constant for level j, independent from the presence
//! of other levels in the hierarchy." This module puts that to the test.
//! The innermost level is simulated against the processor's access
//! stream; its *fill stream* (the addresses it requests upstream, in
//! order) becomes the access stream of the next level out, and so on to
//! the background memory. For the nested-footprint copy-candidates the
//! exploration produces, the cascaded per-level fill counts coincide with
//! the independently computed `C_j` — which is exactly why eq. 3 is sound.

use std::collections::{BTreeMap, HashMap};

use crate::result::SimResult;

/// Simulates Belady's MIN and returns, alongside the counts, the ordered
/// *fill stream*: the addresses requested from the next level up.
///
/// # Panics
///
/// Panics if `capacity` is 0.
///
/// # Examples
///
/// ```
/// use datareuse_trace::opt_simulate_with_stream;
///
/// let (r, stream) = opt_simulate_with_stream(&[0, 1, 1, 0, 2], 2);
/// assert_eq!(r.fills, 3);
/// assert_eq!(stream, vec![0, 1, 2]);
/// ```
pub fn opt_simulate_with_stream(trace: &[u64], capacity: u64) -> (SimResult, Vec<u64>) {
    assert!(capacity > 0, "capacity must be positive");
    // Belady with an explicit fill log (mirrors `opt_simulate`).
    const NEVER: u64 = u64::MAX;
    let mut next = vec![NEVER; trace.len()];
    let mut last: HashMap<u64, u64> = HashMap::new();
    for (i, &addr) in trace.iter().enumerate().rev() {
        if let Some(&n) = last.get(&addr) {
            next[i] = n;
        }
        last.insert(addr, i as u64);
    }
    let key_of = |next_pos: u64, addr: u64| -> u64 {
        if next_pos == NEVER {
            NEVER - addr
        } else {
            next_pos
        }
    };
    let mut resident: HashMap<u64, u64> = HashMap::new();
    let mut by_key: BTreeMap<u64, u64> = BTreeMap::new();
    let mut hits = 0u64;
    let mut stream = Vec::new();
    let mut obs_accesses = datareuse_obs::LocalCounter::new(datareuse_obs::Counter::BeladyAccesses);
    let mut obs_hits = datareuse_obs::LocalCounter::new(datareuse_obs::Counter::BeladyHits);
    let mut obs_evictions =
        datareuse_obs::LocalCounter::new(datareuse_obs::Counter::BeladyEvictions);
    for (i, &addr) in trace.iter().enumerate() {
        obs_accesses.incr();
        let new_key = key_of(next[i], addr);
        if let Some(old_key) = resident.remove(&addr) {
            hits += 1;
            obs_hits.incr();
            by_key.remove(&old_key);
        } else {
            if resident.len() as u64 >= capacity {
                let (&worst_key, &worst_addr) =
                    by_key.iter().next_back().expect("non-empty buffer");
                by_key.remove(&worst_key);
                resident.remove(&worst_addr);
                obs_evictions.incr();
            }
            stream.push(addr);
        }
        resident.insert(addr, new_key);
        by_key.insert(new_key, addr);
    }
    let result = SimResult {
        capacity,
        accesses: trace.len() as u64,
        hits,
        fills: stream.len() as u64,
        bypasses: 0,
    };
    (result, stream)
}

/// Per-level outcome of a cascaded hierarchy simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchySim {
    /// One result per level, innermost (processor-facing) first. Level
    /// `i`'s `accesses` equal level `i−1`'s `fills`.
    pub levels: Vec<SimResult>,
    /// Reads that finally reach the background memory.
    pub background_reads: u64,
}

impl HierarchySim {
    /// The end-to-end reuse factor: processor accesses per background
    /// read.
    pub fn end_to_end_reuse(&self) -> f64 {
        let total = self
            .levels
            .first()
            .map(|l| l.accesses)
            .unwrap_or(self.background_reads);
        if self.background_reads == 0 {
            total as f64
        } else {
            total as f64 / self.background_reads as f64
        }
    }
}

/// Simulates a whole copy-candidate chain by cascading fill streams.
///
/// `sizes` are the level capacities, innermost first, each strictly larger
/// than the previous (the outer levels are bigger). Every level runs
/// Belady's MIN on the fill stream of the level below.
///
/// # Panics
///
/// Panics when `sizes` is empty, contains 0, or is not strictly
/// increasing (innermost buffers are the smallest).
///
/// # Examples
///
/// ```
/// use datareuse_trace::hierarchy_simulate;
///
/// let trace: Vec<u64> = (0..6u64).flat_map(|j| (0..4u64).map(move |k| j + k)).collect();
/// let sim = hierarchy_simulate(&trace, &[3, 9]);
/// assert_eq!(sim.levels.len(), 2);
/// assert_eq!(sim.background_reads, 9); // footprint: loaded once
/// ```
pub fn hierarchy_simulate(trace: &[u64], sizes: &[u64]) -> HierarchySim {
    assert!(!sizes.is_empty(), "need at least one level");
    assert!(
        sizes.windows(2).all(|w| w[0] < w[1]),
        "sizes must strictly increase outward"
    );
    let mut levels = Vec::with_capacity(sizes.len());
    let mut stream: Vec<u64> = trace.to_vec();
    for &size in sizes {
        let (result, fills) = opt_simulate_with_stream(&stream, size);
        levels.push(result);
        stream = fills;
    }
    HierarchySim {
        background_reads: stream.len() as u64,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::opt_simulate;

    fn window_trace(jr: u64, kr: u64) -> Vec<u64> {
        (0..jr).flat_map(|j| (0..kr).map(move |k| j + k)).collect()
    }

    #[test]
    fn stream_variant_matches_plain_opt() {
        let t = window_trace(40, 8);
        for cap in [1u64, 3, 7, 12, 47] {
            let plain = opt_simulate(&t, cap);
            let (streamed, fills) = opt_simulate_with_stream(&t, cap);
            assert_eq!(plain, streamed);
            assert_eq!(fills.len() as u64, plain.fills);
        }
    }

    #[test]
    fn cascade_traffic_is_consistent() {
        let t = window_trace(60, 10);
        let sim = hierarchy_simulate(&t, &[4, 16, 40]);
        for w in sim.levels.windows(2) {
            assert_eq!(w[0].fills, w[1].accesses);
        }
        assert_eq!(sim.levels[0].accesses, t.len() as u64);
        assert_eq!(
            sim.levels.last().unwrap().fills,
            sim.background_reads
        );
    }

    #[test]
    fn eq3_independence_holds_for_nested_candidates() {
        // The paper: C_j is "independent from the presence of other levels".
        // For a nested-footprint chain, each level's cascaded fills must
        // equal its single-level fills.
        let t = window_trace(100, 16);
        let sizes = [15u64, 64];
        let sim = hierarchy_simulate(&t, &sizes);
        for (i, &size) in sizes.iter().enumerate() {
            let alone = opt_simulate(&t, size);
            assert_eq!(
                sim.levels[i].fills, alone.fills,
                "level {i} (size {size}) depends on the chain"
            );
        }
    }

    #[test]
    fn end_to_end_reuse_composes_per_level_factors() {
        // Undersized inner level (7 < A_Max = 15): its fill stream carries
        // refetches that the outer level absorbs.
        let t = window_trace(100, 16);
        let sim = hierarchy_simulate(&t, &[7, 64]);
        let composed: f64 = sim.levels.iter().map(|l| l.reuse_factor()).product();
        assert!((sim.end_to_end_reuse() - composed).abs() < 1e-9);
        assert!(sim.end_to_end_reuse() > sim.levels[0].reuse_factor());
        assert!(sim.levels[1].reuse_factor() > 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_sizes_panic() {
        hierarchy_simulate(&[1, 2, 3], &[8, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_sizes_panic() {
        hierarchy_simulate(&[1, 2, 3], &[]);
    }
}
