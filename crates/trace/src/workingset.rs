//! Working-set analysis (Denning windows).
//!
//! The paper's Fig. 1 explains the whole idea through time-frames: "when
//! we look at smaller time-frames … only part of the data is needed in
//! each time-frame, so it would fit in a smaller, less power consuming
//! memory". [`working_set_profile`] quantifies exactly that: the number
//! of distinct elements touched inside a sliding window of `τ` accesses,
//! giving a model-free sanity bound for copy-candidate sizes.

use std::collections::HashMap;

use datareuse_obs::{Counter, LocalCounter};

/// Distinct-elements statistics over a sliding access window.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkingSetProfile {
    /// Window length `τ` in accesses.
    pub window: u64,
    /// Mean working-set size over all full windows.
    pub average: f64,
    /// Largest working-set size observed.
    pub peak: u64,
    /// Smallest working-set size observed.
    pub min: u64,
}

/// Computes the working-set profile of `trace` for window length
/// `window` (clamped to the trace length). Runs in `O(n)`.
///
/// # Panics
///
/// Panics when `window` is 0.
///
/// # Examples
///
/// ```
/// use datareuse_trace::working_set_profile;
///
/// // Sliding 2-wide window over a diagonal walk: always 2 distinct.
/// let trace = [0u64, 1, 1, 2, 2, 3, 3, 4];
/// let ws = working_set_profile(&trace, 4);
/// assert_eq!(ws.peak, 3);
/// assert_eq!(ws.min, 2);
/// ```
pub fn working_set_profile(trace: &[u64], window: u64) -> WorkingSetProfile {
    assert!(window > 0, "window must be positive");
    let window = window.min(trace.len().max(1) as u64);
    let w = window as usize;
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let mut peak = 0u64;
    let mut min = u64::MAX;
    let mut sum = 0u128;
    let mut windows = 0u64;
    let mut obs_windows = LocalCounter::new(Counter::WorkingSetWindows);
    for (i, &addr) in trace.iter().enumerate() {
        *counts.entry(addr).or_insert(0) += 1;
        if i + 1 >= w {
            let size = counts.len() as u64;
            peak = peak.max(size);
            min = min.min(size);
            sum += size as u128;
            windows += 1;
            obs_windows.incr();
            // Retire the oldest access of the window.
            let old = trace[i + 1 - w];
            if let Some(c) = counts.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(&old);
                }
            }
        }
    }
    if windows == 0 {
        return WorkingSetProfile {
            window,
            average: 0.0,
            peak: 0,
            min: 0,
        };
    }
    WorkingSetProfile {
        window,
        average: sum as f64 / windows as f64,
        peak,
        min,
    }
}

/// Profiles several window lengths at once (each `O(n)`).
pub fn working_set_curve(trace: &[u64], windows: &[u64]) -> Vec<WorkingSetProfile> {
    windows
        .iter()
        .map(|&w| working_set_profile(trace, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::distinct_count;

    #[test]
    fn window_one_is_always_one() {
        let t = [5u64, 6, 7, 5];
        let ws = working_set_profile(&t, 1);
        assert_eq!((ws.peak, ws.min), (1, 1));
        assert_eq!(ws.average, 1.0);
    }

    #[test]
    fn whole_trace_window_equals_footprint() {
        let t: Vec<u64> = (0..50u64).map(|i| i % 7).collect();
        let ws = working_set_profile(&t, t.len() as u64);
        assert_eq!(ws.peak, distinct_count(&t));
        assert_eq!(ws.min, ws.peak);
    }

    #[test]
    fn peak_grows_monotonically_with_window() {
        let t: Vec<u64> = (0..200u64).map(|i| (i * 13) % 31).collect();
        let curve = working_set_curve(&t, &[1, 4, 16, 64, 200]);
        for w in curve.windows(2) {
            assert!(w[1].peak >= w[0].peak);
            assert!(w[1].average >= w[0].average);
        }
    }

    #[test]
    fn brute_force_agreement() {
        let t = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        for w in 1..=t.len() as u64 {
            let ws = working_set_profile(&t, w);
            let mut peak = 0;
            let mut min = u64::MAX;
            for win in t.windows(w as usize) {
                let mut v = win.to_vec();
                v.sort_unstable();
                v.dedup();
                peak = peak.max(v.len() as u64);
                min = min.min(v.len() as u64);
            }
            assert_eq!((ws.peak, ws.min), (peak, min), "window {w}");
        }
    }

    #[test]
    fn empty_trace_profile() {
        let ws = working_set_profile(&[], 4);
        assert_eq!(ws.peak, 0);
        assert_eq!(ws.average, 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        working_set_profile(&[1, 2], 0);
    }
}
