//! # datareuse-trace
//!
//! Trace-driven copy-candidate simulation for the `datareuse` project
//! (reproduction of the DATE 2002 data-reuse exploration paper).
//!
//! The paper validates its analytical model against a simulation prototype
//! that assumes Belady's optimal replacement (Section 4). This crate is
//! that simulator, plus the hardware-cache baselines the paper argues
//! against:
//!
//! - [`opt_simulate`] / [`opt_simulate_bypass`] — Belady MIN, without and
//!   with the Section 6.2 bypass of not-reused data;
//! - [`lru_simulate`], [`fifo_simulate`], [`direct_mapped_simulate`] —
//!   hardware replacement baselines;
//! - [`StackDistances`] — one-pass LRU miss counts for every capacity;
//! - [`ReuseCurve`] — the data reuse factor curve of Fig. 4a/10a/11a;
//! - [`TraceStats`] — footprint and reuse summaries.
//!
//! # Examples
//!
//! ```
//! use datareuse_trace::{opt_simulate, lru_simulate};
//!
//! let trace = [0u64, 1, 2, 0, 1, 2, 3, 0];
//! let opt = opt_simulate(&trace, 2);
//! let lru = lru_simulate(&trace, 2);
//! assert!(opt.hits >= lru.hits); // Belady is the upper bound
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod belady;
mod curve;
mod hierarchy;
mod lines;
mod policies;
mod result;
mod sampling;
mod stackdist;
mod stats;
mod workingset;

pub use belady::{opt_simulate, opt_simulate_bypass, opt_simulate_bypass_many, opt_simulate_many};
pub use curve::{CurvePoint, CurvePolicy, ReuseCurve};
pub use hierarchy::{hierarchy_simulate, opt_simulate_with_stream, HierarchySim};
pub use lines::{interleave, to_lines};
pub use policies::{direct_mapped_simulate, fifo_simulate, lru_simulate};
pub use result::SimResult;
pub use sampling::{adaptive_reuse_curve, sampled_reuse_curve, SampledCurve};
pub use stackdist::StackDistances;
pub use stats::{distinct_count, TraceStats};
pub use workingset::{working_set_curve, working_set_profile, WorkingSetProfile};
