//! Spatially-sampled curve simulation for very large traces.
//!
//! The paper's core complaint about simulation is its cost on real signal
//! sizes. Exact Belady sweeps are `O(n log A)` *per size*; spatial
//! (SHARDS-style) sampling keeps only the accesses whose address hashes
//! below a threshold, simulates a proportionally scaled buffer, and
//! rescales the counts. For uniformly structured loop traces the relative
//! error of the reuse factor is small at rates of a few percent, turning
//! minutes into milliseconds when the analytical model does not apply
//! (non-affine indexing, data-dependent guards).

use crate::belady::{opt_simulate_bypass_many, opt_simulate_many};
use crate::curve::{CurvePoint, CurvePolicy, ReuseCurve};

fn mix(addr: u64) -> u64 {
    // splitmix64 finalizer.
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sampled estimate of a reuse-factor curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCurve {
    /// Sampling rate actually used.
    pub rate: f64,
    /// Number of sampled accesses simulated.
    pub sampled_accesses: u64,
    /// Estimated curve points (counts rescaled by `1/rate`).
    pub points: Vec<CurvePoint>,
}

impl SampledCurve {
    /// Estimated reuse factor at the largest simulated size ≤ `size`.
    pub fn reuse_factor_at(&self, size: u64) -> Option<f64> {
        self.points
            .iter()
            .rev()
            .find(|p| p.size <= size)
            .map(|p| p.reuse_factor)
    }
}

/// Simulates a Belady curve on an address-sampled trace.
///
/// Addresses are kept when `hash(addr) < rate·2⁶⁴` — all accesses to a
/// kept address survive, preserving per-element reuse patterns. Buffer
/// capacities are scaled by `rate` for the simulation and reported at
/// their original sizes; fills/accesses are rescaled by `1/rate`.
///
/// # Panics
///
/// Panics when `rate` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use datareuse_trace::{sampled_reuse_curve, CurvePolicy};
///
/// let trace: Vec<u64> = (0..20_000u64).map(|i| (i / 4 + i % 4) % 997).collect();
/// let sampled = sampled_reuse_curve(&trace, [64, 256], 0.25, CurvePolicy::Optimal);
/// assert_eq!(sampled.points.len(), 2);
/// assert!(sampled.sampled_accesses < trace.len() as u64);
/// ```
pub fn sampled_reuse_curve(
    trace: &[u64],
    sizes: impl IntoIterator<Item = u64>,
    rate: f64,
    policy: CurvePolicy,
) -> SampledCurve {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    let threshold = (rate * u64::MAX as f64) as u64;
    let sampled: Vec<u64> = trace
        .iter()
        .copied()
        .filter(|&a| mix(a) <= threshold)
        .collect();
    let mut pairs: Vec<(u64, u64)> = sizes
        .into_iter()
        .filter(|&s| s > 0)
        .map(|s| (s, ((s as f64 * rate).round() as u64).max(1)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let scaled: Vec<u64> = pairs.iter().map(|&(_, s)| s).collect();
    let results = match policy {
        CurvePolicy::Optimal => opt_simulate_many(&sampled, &scaled),
        CurvePolicy::OptimalBypass => opt_simulate_bypass_many(&sampled, &scaled),
    };
    let points = pairs
        .iter()
        .zip(results)
        .map(|(&(original, _), r)| CurvePoint {
            size: original,
            fills: (r.fills as f64 / rate).round() as u64,
            bypasses: (r.bypasses as f64 / rate).round() as u64,
            reuse_factor: r.reuse_factor(),
        })
        .collect();
    SampledCurve {
        rate,
        sampled_accesses: sampled.len() as u64,
        points,
    }
}

/// Convenience: exact curve when the trace is small, sampled otherwise.
pub fn adaptive_reuse_curve(
    trace: &[u64],
    sizes: Vec<u64>,
    policy: CurvePolicy,
    exact_below: usize,
    rate: f64,
) -> SampledCurve {
    if trace.len() <= exact_below {
        let curve = ReuseCurve::simulate(trace, sizes, policy);
        return SampledCurve {
            rate: 1.0,
            sampled_accesses: trace.len() as u64,
            points: curve.points().to_vec(),
        };
    }
    sampled_reuse_curve(trace, sizes, rate, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ReuseCurve;

    fn big_window_trace() -> Vec<u64> {
        // A[j + k] with jRANGE = 4000, kRANGE = 64.
        let mut t = Vec::with_capacity(256_000);
        for j in 0..4000u64 {
            for k in 0..64u64 {
                t.push(j + k);
            }
        }
        t
    }

    #[test]
    fn rate_one_matches_exact() {
        let t: Vec<u64> = (0..4000u64).map(|i| (i / 8) % 97).collect();
        let exact = ReuseCurve::simulate(&t, [8, 32], CurvePolicy::Optimal);
        let sampled = sampled_reuse_curve(&t, [8, 32], 1.0, CurvePolicy::Optimal);
        for (e, s) in exact.points().iter().zip(&sampled.points) {
            assert_eq!(e.size, s.size);
            assert_eq!(e.fills, s.fills);
        }
    }

    #[test]
    fn sampled_reuse_factor_tracks_exact_away_from_knees() {
        // The knee of this trace sits at A_Max = 64; sample off-knee sizes
        // (deep below and well above) where the estimate is reliable.
        let t = big_window_trace();
        let sizes = [16u64, 128, 512];
        let exact = ReuseCurve::simulate(&t, sizes, CurvePolicy::Optimal);
        let sampled = sampled_reuse_curve(&t, sizes, 0.3, CurvePolicy::Optimal);
        for (e, s) in exact.points().iter().zip(&sampled.points) {
            let rel = (s.reuse_factor - e.reuse_factor).abs() / e.reuse_factor;
            assert!(
                rel < 0.3,
                "size {}: sampled {} vs exact {} ({rel:.2} rel err)",
                e.size,
                s.reuse_factor,
                e.reuse_factor
            );
        }
        assert!(sampled.sampled_accesses < t.len() as u64 / 2);
    }

    #[test]
    fn adaptive_switches_on_trace_length() {
        let small: Vec<u64> = (0..100u64).collect();
        let a = adaptive_reuse_curve(&small, vec![8], CurvePolicy::Optimal, 1000, 0.1);
        assert_eq!(a.rate, 1.0);
        let b = adaptive_reuse_curve(
            &big_window_trace(),
            vec![64],
            CurvePolicy::Optimal,
            1000,
            0.1,
        );
        assert!(b.rate < 1.0);
        assert!(b.reuse_factor_at(64).is_some());
        assert!(b.reuse_factor_at(0).is_none());
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn bad_rate_panics() {
        sampled_reuse_curve(&[1, 2, 3], [1], 0.0, CurvePolicy::Optimal);
    }
}
