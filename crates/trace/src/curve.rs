//! Reuse-factor curve construction (the paper's Fig. 4a / 10a / 11a).
//!
//! A *data reuse factor curve* plots `F_R` against copy-candidate size
//! under optimal replacement. The paper's prototype tool generates it by
//! simulation; [`ReuseCurve::simulate`] reproduces that, and
//! [`ReuseCurve::knees`] extracts the discontinuities (the paper's
//! `A_1 … A_4`) where maximum reuse is attained for a sub-nest.

use crate::belady::{opt_simulate_bypass_many, opt_simulate_many};
use crate::result::SimResult;
use crate::stats::distinct_count;

/// One point of a reuse-factor curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Copy-candidate size in elements.
    pub size: u64,
    /// Writes into the copy-candidate (`C_j`).
    pub fills: u64,
    /// Accesses bypassing the copy-candidate.
    pub bypasses: u64,
    /// Data reuse factor `F_R` (eq. 1 / 19).
    pub reuse_factor: f64,
}

impl From<SimResult> for CurvePoint {
    fn from(r: SimResult) -> Self {
        Self {
            size: r.capacity,
            fills: r.fills,
            bypasses: r.bypasses,
            reuse_factor: r.reuse_factor(),
        }
    }
}

/// Replacement discipline used when simulating curve points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurvePolicy {
    /// Belady optimal replacement, fill on every miss (paper Section 4).
    #[default]
    Optimal,
    /// Optimal replacement with bypass of not-reused data (Section 6.2).
    OptimalBypass,
}

/// A simulated data reuse factor curve for one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseCurve {
    policy: CurvePolicy,
    points: Vec<CurvePoint>,
}

impl ReuseCurve {
    /// Simulates the curve at the given sizes (deduplicated, sorted).
    /// Sizes of 0 or beyond the trace footprint are clamped away: the
    /// footprint is where the curve saturates.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_trace::{CurvePolicy, ReuseCurve};
    ///
    /// let trace = [0u64, 1, 1, 2, 2, 3];
    /// let curve = ReuseCurve::simulate(&trace, [1, 2, 4], CurvePolicy::Optimal);
    /// assert_eq!(curve.points().len(), 3);
    /// assert_eq!(curve.points()[0].reuse_factor, 1.5);
    /// ```
    pub fn simulate(
        trace: &[u64],
        sizes: impl IntoIterator<Item = u64>,
        policy: CurvePolicy,
    ) -> Self {
        let footprint = distinct_count(trace).max(1);
        Self::simulate_with_footprint(trace, sizes, policy, footprint)
    }

    /// Simulates the curve over an exhaustive size range `1..=footprint`.
    /// Intended for small traces (tests, examples); use
    /// [`ReuseCurve::simulate`] with a hand-picked size set for large ones.
    pub fn simulate_exhaustive(trace: &[u64], policy: CurvePolicy) -> Self {
        // The footprint computed for the size range doubles as the clamp
        // bound, so the O(n log n) distinct count runs once, not twice.
        let footprint = distinct_count(trace);
        Self::simulate_with_footprint(trace, 1..=footprint, policy, footprint.max(1))
    }

    fn simulate_with_footprint(
        trace: &[u64],
        sizes: impl IntoIterator<Item = u64>,
        policy: CurvePolicy,
        footprint: u64,
    ) -> Self {
        let mut sizes: Vec<u64> = sizes
            .into_iter()
            .filter(|&s| s > 0)
            .map(|s| s.min(footprint))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        datareuse_obs::add(datareuse_obs::Counter::CurvePoints, sizes.len() as u64);
        // Gated clock: the simulators are the hottest code in the
        // workspace, so the run timer only exists when someone watches.
        let started = datareuse_obs::metrics_enabled().then(std::time::Instant::now);
        let results = match policy {
            CurvePolicy::Optimal => opt_simulate_many(trace, &sizes),
            CurvePolicy::OptimalBypass => opt_simulate_bypass_many(trace, &sizes),
        };
        if let Some(started) = started {
            datareuse_obs::record_hist(
                datareuse_obs::Hist::TraceSimRun,
                started.elapsed().as_nanos() as u64,
            );
        }
        let points = results.into_iter().map(CurvePoint::from).collect();
        Self { policy, points }
    }

    /// The policy the curve was simulated with.
    pub fn policy(&self) -> CurvePolicy {
        self.policy
    }

    /// Curve points, sorted by size.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The point with the given size, if simulated.
    pub fn at(&self, size: u64) -> Option<&CurvePoint> {
        self.points
            .binary_search_by_key(&size, |p| p.size)
            .ok()
            .map(|i| &self.points[i])
    }

    /// Knee points: points strictly improving the reuse factor over every
    /// smaller simulated size. On an exhaustively simulated curve these are
    /// the discontinuity set `{A_4, …, A_1}` of the paper's Fig. 4a.
    pub fn knees(&self) -> Vec<CurvePoint> {
        let mut best = f64::NEG_INFINITY;
        let mut out = Vec::new();
        for p in &self.points {
            if p.reuse_factor > best + 1e-9 {
                out.push(*p);
                best = p.reuse_factor;
            }
        }
        out
    }

    /// Maximum simulated reuse factor.
    pub fn max_reuse_factor(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.reuse_factor)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Writes the curve as `size<TAB>reuse_factor` lines — the gnuplot
    /// format the paper's prototype tool emitted.
    pub fn to_gnuplot(&self) -> String {
        let mut s = String::from("# size\treuse_factor\tfills\tbypasses\n");
        for p in &self.points {
            s.push_str(&format!(
                "{}\t{:.6}\t{}\t{}\n",
                p.size, p.reuse_factor, p.fills, p.bypasses
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_trace() -> Vec<u64> {
        // A[j+k], j in 0..=7, k in 0..=3: sliding window of 4.
        let mut t = Vec::new();
        for j in 0..=7u64 {
            for k in 0..=3u64 {
                t.push(j + k);
            }
        }
        t
    }

    #[test]
    fn curve_is_monotone_under_opt() {
        let t = window_trace();
        let curve = ReuseCurve::simulate_exhaustive(&t, CurvePolicy::Optimal);
        for w in curve.points().windows(2) {
            assert!(w[1].reuse_factor >= w[0].reuse_factor - 1e-12);
        }
    }

    #[test]
    fn saturates_at_footprint() {
        let t = window_trace();
        let curve = ReuseCurve::simulate_exhaustive(&t, CurvePolicy::Optimal);
        let last = curve.points().last().unwrap();
        assert_eq!(last.size, 11); // footprint of j+k, j<=7, k<=3
        assert_eq!(last.fills, 11);
        assert!((last.reuse_factor - 32.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn knees_strictly_improve() {
        let t = window_trace();
        let curve = ReuseCurve::simulate_exhaustive(&t, CurvePolicy::Optimal);
        let knees = curve.knees();
        assert!(!knees.is_empty());
        for w in knees.windows(2) {
            assert!(w[1].reuse_factor > w[0].reuse_factor);
            assert!(w[1].size > w[0].size);
        }
        assert_eq!(
            knees.last().unwrap().reuse_factor,
            curve.max_reuse_factor()
        );
    }

    #[test]
    fn sizes_are_deduped_clamped_and_sorted() {
        let t = window_trace();
        let curve = ReuseCurve::simulate(&t, [4, 2, 4, 0, 1000], CurvePolicy::Optimal);
        let sizes: Vec<u64> = curve.points().iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![2, 4, 11]);
        assert!(curve.at(4).is_some());
        assert!(curve.at(3).is_none());
    }

    #[test]
    fn bypass_curve_dominates_plain() {
        let t: Vec<u64> = (0..100u64).map(|i| if i % 3 == 0 { 0 } else { i }).collect();
        for size in [1u64, 2, 4] {
            let plain = ReuseCurve::simulate(&t, [size], CurvePolicy::Optimal);
            let byp = ReuseCurve::simulate(&t, [size], CurvePolicy::OptimalBypass);
            assert!(
                byp.points()[0].reuse_factor >= plain.points()[0].reuse_factor - 1e-12
            );
        }
    }

    #[test]
    fn gnuplot_output_has_header_and_rows() {
        let t = window_trace();
        let curve = ReuseCurve::simulate(&t, [1, 4], CurvePolicy::Optimal);
        let g = curve.to_gnuplot();
        assert!(g.starts_with("# size"));
        assert_eq!(g.lines().count(), 3);
    }
}
