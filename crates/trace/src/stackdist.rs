//! One-pass LRU stack-distance analysis (Mattson et al.).
//!
//! LRU is a stack algorithm, so a single pass over the trace yields the
//! miss count for *every* capacity at once. This gives the exploration
//! tooling a cheap whole-curve LRU baseline against which the
//! Belady/analytical copy-candidate points are compared, and quantifies the
//! paper's claim that a hardware cache "only uses knowledge about previous
//! accesses".

use std::collections::HashMap;

/// Fenwick tree (binary indexed tree) over trace positions, used to count
/// distinct elements touched since the previous access in O(log n).
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Histogram of LRU stack distances for one trace.
///
/// `histogram[d]` counts accesses whose reuse touched exactly `d` distinct
/// elements since the previous access to the same address (distance 1 =
/// immediate re-reference). `cold` counts first-ever accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistances {
    /// `histogram[d]` = number of accesses at stack distance `d` (index 0
    /// is unused and always zero).
    pub histogram: Vec<u64>,
    /// Cold (compulsory) misses.
    pub cold: u64,
    /// Total accesses.
    pub accesses: u64,
}

impl StackDistances {
    /// Computes the full stack-distance histogram in one pass.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_trace::StackDistances;
    ///
    /// let sd = StackDistances::compute(&[0, 1, 1, 0]);
    /// assert_eq!(sd.cold, 2);
    /// assert_eq!(sd.histogram[1], 1); // 1 re-referenced immediately
    /// assert_eq!(sd.histogram[2], 1); // 0 re-referenced past one distinct element
    /// ```
    pub fn compute(trace: &[u64]) -> Self {
        let mut fen = Fenwick::new(trace.len());
        let mut last_pos: HashMap<u64, usize> = HashMap::new();
        let mut histogram = vec![0u64; 2];
        let mut cold = 0u64;
        let mut obs_samples =
            datareuse_obs::LocalCounter::new(datareuse_obs::Counter::StackDistSamples);
        for (i, &addr) in trace.iter().enumerate() {
            obs_samples.incr();
            match last_pos.get(&addr) {
                None => cold += 1,
                Some(&prev) => {
                    // Distinct elements touched in (prev, i): live markers.
                    let d = (fen.prefix(i) - fen.prefix(prev)) as usize + 1;
                    if histogram.len() <= d {
                        histogram.resize(d + 1, 0);
                    }
                    histogram[d] += 1;
                    fen.add(prev, -1);
                }
            }
            fen.add(i, 1);
            last_pos.insert(addr, i);
        }
        Self {
            histogram,
            cold,
            accesses: trace.len() as u64,
        }
    }

    /// LRU miss count at `capacity`: cold misses plus all accesses whose
    /// stack distance exceeds the capacity.
    pub fn misses_at(&self, capacity: u64) -> u64 {
        let far: u64 = self
            .histogram
            .iter()
            .enumerate()
            .filter(|&(d, _)| d as u64 > capacity)
            .map(|(_, &c)| c)
            .sum();
        self.cold + far
    }

    /// LRU hit count at `capacity`.
    pub fn hits_at(&self, capacity: u64) -> u64 {
        self.accesses - self.misses_at(capacity)
    }

    /// The largest stack distance observed (the LRU working-set size beyond
    /// which extra capacity is useless).
    pub fn max_distance(&self) -> u64 {
        (self.histogram.len() as u64).saturating_sub(1)
    }

    /// The whole LRU miss-ratio curve as `(capacity, misses)` pairs for
    /// capacities `1..=max_distance()`.
    pub fn miss_curve(&self) -> Vec<(u64, u64)> {
        (1..=self.max_distance().max(1))
            .map(|c| (c, self.misses_at(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::lru_simulate;

    #[test]
    fn matches_direct_lru_simulation_everywhere() {
        let trace: Vec<u64> = (0..500u64)
            .map(|i| ((i * 13) ^ (i / 7)) % 37)
            .collect();
        let sd = StackDistances::compute(&trace);
        for cap in 1..=40u64 {
            assert_eq!(
                sd.misses_at(cap),
                lru_simulate(&trace, cap).misses(),
                "capacity {cap}"
            );
        }
    }

    #[test]
    fn immediate_rereference_has_distance_one() {
        let sd = StackDistances::compute(&[5, 5, 5]);
        assert_eq!(sd.cold, 1);
        assert_eq!(sd.histogram[1], 2);
        assert_eq!(sd.misses_at(1), 1);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let trace: Vec<u64> = (0..300u64).map(|i| (i * i) % 29).collect();
        let curve = StackDistances::compute(&trace).miss_curve();
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn empty_trace() {
        let sd = StackDistances::compute(&[]);
        assert_eq!(sd.accesses, 0);
        assert_eq!(sd.cold, 0);
        assert_eq!(sd.misses_at(8), 0);
    }

    #[test]
    fn max_distance_bounds_useful_capacity() {
        let trace = [0u64, 1, 2, 0, 1, 2];
        let sd = StackDistances::compute(&trace);
        assert_eq!(sd.max_distance(), 3);
        assert_eq!(sd.misses_at(3), 3);
        assert_eq!(sd.misses_at(100), 3);
    }
}
