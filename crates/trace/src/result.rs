//! Common result type for buffer simulations.

/// Outcome of simulating one replacement policy on one address trace with a
/// fixed copy-candidate capacity.
///
/// In the paper's terms (Section 3): `accesses` is `C_tot` (total reads of
/// the signal), `fills` is `C_j` (number of writes into the copy-candidate,
/// equal to the reads from the level above), and
/// [`SimResult::reuse_factor`] is `F_Rj = C_tot / C_j` (eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Copy-candidate capacity in elements.
    pub capacity: u64,
    /// Total accesses in the trace (`C_tot`).
    pub accesses: u64,
    /// Accesses served by the copy-candidate (hits).
    pub hits: u64,
    /// Elements written into the copy-candidate (`C_j`); for policies
    /// without bypass this equals the number of misses.
    pub fills: u64,
    /// Accesses that bypassed the copy-candidate and were served directly
    /// by the next level (0 for policies without bypass).
    pub bypasses: u64,
}

impl SimResult {
    /// Misses: accesses not served by the copy-candidate.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// The data reuse factor `F_R = C_tot / C_j` (paper eq. 1).
    ///
    /// With bypassing, both sides follow the paper's `F'_R` (eq. 19): the
    /// numerator counts only the *copied* traffic `C'_tot` (bypassed
    /// accesses cost a read from the higher level but never touch the
    /// sub-level) and `C_j = fills`.
    ///
    /// Returns the copied traffic itself when nothing was filled (every
    /// access bypassed or an empty trace), mirroring the paper's `b=c=0`
    /// footnote where `F_RMax = C_tot`.
    pub fn reuse_factor(&self) -> f64 {
        let copied = self.accesses - self.bypasses;
        if self.fills == 0 {
            copied as f64
        } else {
            copied as f64 / self.fills as f64
        }
    }

    /// Reads from the level above the copy-candidate: fills plus bypasses.
    pub fn upstream_reads(&self) -> u64 {
        self.fills + self.bypasses
    }

    /// Hit rate in `[0, 1]`; 0 for an empty trace.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_consistent() {
        let r = SimResult {
            capacity: 8,
            accesses: 100,
            hits: 80,
            fills: 20,
            bypasses: 0,
        };
        assert_eq!(r.misses(), 20);
        assert!((r.reuse_factor() - 5.0).abs() < 1e-12);
        assert!((r.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(r.upstream_reads(), 20);
    }

    #[test]
    fn zero_fill_reuse_factor_matches_paper_footnote() {
        let r = SimResult {
            capacity: 1,
            accesses: 64,
            hits: 63,
            fills: 0,
            bypasses: 1,
        };
        assert_eq!(r.reuse_factor(), 63.0);
    }

    #[test]
    fn bypassed_traffic_is_excluded_from_the_numerator() {
        // eq. 19: F'_R = C'_tot / C'_j with C'_tot = C_tot − bypassed.
        let r = SimResult {
            capacity: 8,
            accesses: 100,
            hits: 30,
            fills: 10,
            bypasses: 60,
        };
        assert_eq!(r.reuse_factor(), 4.0);
    }
}
