//! Hardware-style replacement policies: LRU, FIFO and direct-mapped.
//!
//! The paper contrasts its compile-time approach with "a hardware controlled
//! cache [where] all data would be copied the first time into the cache and
//! possibly overwrites existing data, based on a replacement policy which
//! only uses knowledge about previous accesses". These simulators provide
//! exactly those baselines so the benchmark harness can quantify the gap to
//! Belady/analytical reuse.

use std::collections::{HashMap, VecDeque};

use crate::result::SimResult;

/// Simulates a fully-associative LRU buffer of `capacity` elements.
///
/// # Panics
///
/// Panics if `capacity` is 0.
///
/// # Examples
///
/// ```
/// use datareuse_trace::lru_simulate;
///
/// let r = lru_simulate(&[0, 1, 0, 2, 0, 1], 2);
/// assert_eq!(r.hits, 2); // 0 twice; 1 was evicted by 2
/// ```
pub fn lru_simulate(trace: &[u64], capacity: u64) -> SimResult {
    assert!(capacity > 0, "capacity must be positive");
    // Timestamped residence: addr -> last-use time, plus a queue of
    // (time, addr) candidates; stale queue entries are skipped on eviction.
    let mut last_use: HashMap<u64, u64> = HashMap::new();
    let mut queue: VecDeque<(u64, u64)> = VecDeque::new();
    let mut hits = 0u64;
    let mut fills = 0u64;
    for (i, &addr) in trace.iter().enumerate() {
        let now = i as u64;
        if last_use.contains_key(&addr) {
            hits += 1;
        } else {
            if last_use.len() as u64 >= capacity {
                // Evict true LRU: pop queue entries until one is current.
                while let Some(&(t, a)) = queue.front() {
                    if last_use.get(&a) == Some(&t) {
                        last_use.remove(&a);
                        queue.pop_front();
                        break;
                    }
                    queue.pop_front();
                }
            }
            fills += 1;
        }
        last_use.insert(addr, now);
        queue.push_back((now, addr));
    }
    SimResult {
        capacity,
        accesses: trace.len() as u64,
        hits,
        fills,
        bypasses: 0,
    }
}

/// Simulates a fully-associative FIFO buffer of `capacity` elements.
///
/// # Panics
///
/// Panics if `capacity` is 0.
pub fn fifo_simulate(trace: &[u64], capacity: u64) -> SimResult {
    assert!(capacity > 0, "capacity must be positive");
    let mut resident: HashMap<u64, ()> = HashMap::new();
    let mut order: VecDeque<u64> = VecDeque::new();
    let mut hits = 0u64;
    let mut fills = 0u64;
    for &addr in trace {
        if resident.contains_key(&addr) {
            hits += 1;
            continue;
        }
        if resident.len() as u64 >= capacity {
            if let Some(victim) = order.pop_front() {
                resident.remove(&victim);
            }
        }
        resident.insert(addr, ());
        order.push_back(addr);
        fills += 1;
    }
    SimResult {
        capacity,
        accesses: trace.len() as u64,
        hits,
        fills,
        bypasses: 0,
    }
}

/// Simulates a direct-mapped buffer: element at address `a` may only live in
/// slot `a % capacity` — the cheapest hardware cache organisation.
///
/// # Panics
///
/// Panics if `capacity` is 0.
pub fn direct_mapped_simulate(trace: &[u64], capacity: u64) -> SimResult {
    assert!(capacity > 0, "capacity must be positive");
    let mut slots: Vec<Option<u64>> = vec![None; capacity as usize];
    let mut hits = 0u64;
    let mut fills = 0u64;
    for &addr in trace {
        let slot = (addr % capacity) as usize;
        if slots[slot] == Some(addr) {
            hits += 1;
        } else {
            slots[slot] = Some(addr);
            fills += 1;
        }
    }
    SimResult {
        capacity,
        accesses: trace.len() as u64,
        hits,
        fills,
        bypasses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::opt_simulate;

    #[test]
    fn lru_classic_sequence() {
        // Capacity 3, trace exercising the textbook LRU behaviour.
        let trace = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        let r = lru_simulate(&trace, 3);
        // Known result: LRU has 10 misses on this trace at capacity 3.
        assert_eq!(r.misses(), 10);
    }

    #[test]
    fn fifo_belady_anomaly_trace() {
        // The canonical Belady-anomaly reference trace.
        let trace = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        assert_eq!(fifo_simulate(&trace, 3).misses(), 9);
        assert_eq!(fifo_simulate(&trace, 4).misses(), 10); // the anomaly
    }

    #[test]
    fn opt_bounds_every_policy_below() {
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 7 + i / 3) % 23).collect();
        for cap in [1u64, 2, 4, 8, 16] {
            let opt = opt_simulate(&trace, cap).misses();
            assert!(lru_simulate(&trace, cap).misses() >= opt);
            assert!(fifo_simulate(&trace, cap).misses() >= opt);
            assert!(direct_mapped_simulate(&trace, cap).misses() >= opt);
        }
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 0 and 4 conflict in a 4-slot buffer; 1 does not.
        let trace = [0u64, 4, 0, 4, 1, 1];
        let r = direct_mapped_simulate(&trace, 4);
        assert_eq!(r.hits, 1);
        assert_eq!(r.misses(), 5);
    }

    #[test]
    fn all_policies_agree_at_infinite_capacity() {
        let trace: Vec<u64> = (0..50u64).map(|i| i % 10).collect();
        for sim in [lru_simulate, fifo_simulate, opt_simulate] {
            let r = sim(&trace, 10);
            assert_eq!(r.fills, 10);
            assert_eq!(r.hits, 40);
        }
    }

    #[test]
    fn lru_stale_queue_entries_are_skipped() {
        // Re-touch 0 repeatedly so its stale timestamps pile up in the queue.
        let trace = [0u64, 1, 0, 0, 0, 2, 3];
        let r = lru_simulate(&trace, 2);
        // Evictions must pick 1 (LRU), not 0.
        assert_eq!(r.hits, 3);
    }
}
