//! Trace statistics: footprints, access counts and reuse summaries.

use std::collections::HashMap;

/// Number of distinct addresses in a trace (the signal footprint).
///
/// # Examples
///
/// ```
/// use datareuse_trace::distinct_count;
/// assert_eq!(distinct_count(&[3, 1, 3, 2]), 3);
/// ```
pub fn distinct_count(trace: &[u64]) -> u64 {
    let mut seen: Vec<u64> = trace.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u64
}

/// Summary statistics of one address trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total accesses (`C_tot`).
    pub accesses: u64,
    /// Distinct addresses touched.
    pub footprint: u64,
    /// Maximum accesses to any single address.
    pub max_per_address: u64,
    /// Addresses accessed exactly once (bypass candidates).
    pub single_use: u64,
}

impl TraceStats {
    /// Computes the summary in one pass.
    pub fn compute(trace: &[u64]) -> Self {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &a in trace {
            *counts.entry(a).or_insert(0) += 1;
        }
        Self {
            accesses: trace.len() as u64,
            footprint: counts.len() as u64,
            max_per_address: counts.values().copied().max().unwrap_or(0),
            single_use: counts.values().filter(|&&c| c == 1).count() as u64,
        }
    }

    /// The inherent average reuse `C_tot / footprint` — the reuse factor a
    /// copy-candidate as large as the whole footprint achieves (the
    /// saturation level of the reuse-factor curve).
    pub fn average_reuse(&self) -> f64 {
        if self.footprint == 0 {
            0.0
        } else {
            self.accesses as f64 / self.footprint as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_mixed_trace() {
        let t = [0u64, 1, 0, 2, 0, 3];
        let s = TraceStats::compute(&t);
        assert_eq!(s.accesses, 6);
        assert_eq!(s.footprint, 4);
        assert_eq!(s.max_per_address, 3);
        assert_eq!(s.single_use, 3);
        assert!((s.average_reuse() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.footprint, 0);
        assert_eq!(s.average_reuse(), 0.0);
        assert_eq!(distinct_count(&[]), 0);
    }
}
