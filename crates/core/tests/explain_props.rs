//! Property tests of the exploration audit layer.
//!
//! The audit log's core contract is *completeness*: every candidate a
//! sweep offers appears exactly once with a terminal verdict, and the
//! explained pipeline returns bit-identical results to the unexplained
//! one. Both are pinned here over randomized candidate pools and over
//! randomized generated programs run through the full
//! `explore_signal_explained` driver.

use datareuse_core::{
    dedupe_candidates, dedupe_candidates_explained, explore_signal, explore_signal_explained,
    CandidatePoint, CandidateSource, CandidateVerdict, ExploreOptions, Json,
};
use datareuse_loopir::parse_program;
use datareuse_obs::Explain;
use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config, Rng};

/// Draws candidate raw parts biased toward collisions: sizes and traffic
/// from tiny domains so size ties, dominated points, and useless points
/// all appear frequently. Raw tuples keep the harness's shrinker
/// applicable; the property materializes them into [`CandidatePoint`]s.
fn any_candidate(rng: &mut Rng) -> (u64, u64, u64) {
    let fills = rng.u64_in(0, 80);
    let bypasses = if rng.u64_in(0, 3) == 0 {
        rng.u64_in(0, 80 - fills)
    } else {
        0
    };
    (rng.u64_in(1, 12), fills, bypasses)
}

fn materialize(raw: &[(u64, u64, u64)]) -> Vec<CandidatePoint> {
    raw.iter()
        .map(|&(size, fills, bypasses)| CandidatePoint {
            size,
            fills,
            bypasses,
            c_tot: 64,
            source: CandidateSource::Simulated,
            exact: true,
        })
        .collect()
}

#[test]
fn every_candidate_gets_exactly_one_terminal_verdict() {
    check(
        "explain_verdict_completeness",
        &Config::default(),
        |rng| rng.vec(0, 32, any_candidate),
        |raw| {
            let pool = &materialize(raw);
            let (kept, verdicts) = dedupe_candidates_explained(pool);
            // One verdict per offered candidate, no more, no less.
            prop_assert_eq!(verdicts.len(), pool.len());
            // The explained path returns exactly the unexplained result.
            prop_assert_eq!(&kept, &dedupe_candidates(pool.clone()));
            // Survivor verdicts tally to the kept count.
            let survivors = verdicts
                .iter()
                .filter(|v| matches!(v, CandidateVerdict::Kept | CandidateVerdict::Bypass))
                .count();
            prop_assert_eq!(survivors, kept.len());
            for (i, v) in verdicts.iter().enumerate() {
                match *v {
                    CandidateVerdict::Kept => {
                        prop_assert!(kept.contains(&pool[i]), "kept #{i} missing from result");
                        prop_assert_eq!(pool[i].bypasses, 0);
                    }
                    CandidateVerdict::Bypass => {
                        prop_assert!(kept.contains(&pool[i]), "bypass #{i} missing from result");
                        prop_assert!(pool[i].bypasses > 0);
                    }
                    CandidateVerdict::Pruned => {
                        prop_assert!(!pool[i].is_useful(), "useful #{i} pruned");
                    }
                    CandidateVerdict::DominatedBy(w) => {
                        prop_assert!(w < pool.len(), "dominator out of range");
                        prop_assert!(w != i, "self-domination");
                        // The named winner is no worse on both axes:
                        // same-or-smaller size with no more upstream
                        // traffic.
                        let up = |c: &CandidatePoint| c.fills + c.bypasses;
                        prop_assert!(pool[w].size <= pool[i].size);
                        prop_assert!(up(&pool[w]) <= up(&pool[i]));
                        prop_assert!(
                            !matches!(verdicts[w], CandidateVerdict::Pruned),
                            "winner #{w} was itself pruned as useless"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// Draws a random 2–3-deep sliding-window program. Shapes are kept small
/// so the full explore driver stays fast across all cases.
fn any_program(rng: &mut Rng) -> String {
    let j = rng.u64_in(2, 12);
    let k = rng.u64_in(2, 9);
    let stride = rng.u64_in(1, 3);
    if rng.u64_in(0, 1) == 0 {
        let len = j * stride + k + 1;
        format!(
            "array A[{len}]; for j in 0..{j} {{ for k in 0..{k} {{ read A[{stride}*j + k]; }} }}"
        )
    } else {
        let f = rng.u64_in(2, 4);
        let len = f * 16 + j * stride + k + 1;
        format!(
            "array A[{len}]; for f in 0..{f} {{ for j in 0..{j} {{ for k in 0..{k} {{ \
             read A[16*f + {stride}*j + k]; }} }} }}"
        )
    }
}

#[test]
fn audit_records_cover_the_exploration_exactly_once() {
    check(
        "explain_exploration_records",
        &Config::with_cases(64),
        |rng| any_program(rng),
        |src| {
            let program = parse_program(src).map_err(|e| e.to_string())?;
            let opts = ExploreOptions {
                threads: Some(1),
                ..ExploreOptions::default()
            };
            let sink = Explain::new();
            let ex = explore_signal_explained(&program, "A", &opts, Some(&sink))
                .map_err(|e| e.to_string())?;
            // Audited and unaudited explorations agree bit-for-bit.
            let plain = explore_signal(&program, "A", &opts).map_err(|e| e.to_string())?;
            prop_assert_eq!(&ex, &plain);
            let records: Vec<Json> = sink
                .records()
                .iter()
                .map(|l| Json::parse(l).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let candidates: Vec<&Json> = records
                .iter()
                .filter(|r| r.get("record").and_then(Json::as_str) == Some("candidate"))
                .collect();
            // Ids are exactly 0..n in emission order.
            for (expect, r) in candidates.iter().enumerate() {
                prop_assert_eq!(r.get("id").and_then(Json::as_u64), Some(expect as u64));
            }
            // Verdict tallies sum to the candidate count, and survivors
            // match the exploration's kept list one-for-one.
            let summary = records
                .iter()
                .find(|r| r.get("record").and_then(Json::as_str) == Some("candidate-summary"))
                .ok_or("no candidate-summary record")?;
            let num = |k: &str| summary.get(k).and_then(Json::as_u64).unwrap_or(0);
            prop_assert_eq!(
                num("kept") + num("bypass") + num("pruned") + num("dominated"),
                candidates.len() as u64
            );
            prop_assert_eq!(num("offered"), candidates.len() as u64);
            prop_assert_eq!(num("kept") + num("bypass"), ex.candidates.len() as u64);
            let verdict_of = |r: &Json| {
                r.get("verdict")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string()
            };
            for r in &candidates {
                let v = verdict_of(r);
                prop_assert!(
                    v == "kept" || v == "bypass" || v == "pruned" || v.starts_with("dominated-by "),
                    "non-terminal verdict {v:?}"
                );
                if let Some(id) = v.strip_prefix("dominated-by ") {
                    let id: usize = id.parse().map_err(|_| "bad dominator id")?;
                    prop_assert!(id < candidates.len(), "dominator out of range");
                }
                // Cost terms are self-consistent: C_R = C_tot − fills −
                // bypasses and F_R = (C_tot − bypasses) / fills.
                let get = |k: &str| r.get(k).and_then(Json::as_u64).unwrap_or(0);
                prop_assert_eq!(
                    get("c_r"),
                    get("c_tot") - get("fills") - get("bypasses")
                );
                let f_r = r.get("f_r").and_then(Json::as_f64).unwrap_or(-1.0);
                if get("fills") > 0 {
                    let want = (get("c_tot") - get("bypasses")) as f64 / get("fills") as f64;
                    prop_assert!((f_r - want).abs() < 1e-9 * want.max(1.0), "F_R mismatch");
                }
            }
            Ok(())
        },
    );
}
