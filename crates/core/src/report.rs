//! Human-readable and machine-readable exploration reports.
//!
//! The paper's prototype tool prints curves and templates for the
//! designer; [`ExplorationReport`] is the equivalent structured summary,
//! rendered by `Display` as an aligned text report and by
//! [`ExplorationReport::to_json`] as JSON.
//!
//! The workspace is hermetic (standard library only, no crates.io), so
//! JSON is emitted through the small hand-rolled [`Json`] value from the
//! observability crate (re-exported here) instead of a serde derive. It
//! covers exactly what the tool needs: objects, arrays, strings with
//! escaping, integers, and floats — plus a [`Json::parse`] reader for
//! consuming the artifacts back.

use std::fmt;

use datareuse_memmodel::{chain_breakdown, AreaModel, MemoryTechnology};

use crate::explore::{ExploreOptions, SignalExploration};
use crate::levels::CandidateSource;

pub use datareuse_obs::{Json, JsonParseError};

/// One rendered hierarchy row of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyRow {
    /// Level sizes, outermost first.
    pub level_sizes: Vec<u64>,
    /// Total on-chip elements.
    pub onchip_words: u64,
    /// Normalized power.
    pub normalized_power: f64,
    /// Fraction of the energy still burned in the background memory.
    pub background_share: f64,
}

/// A structured exploration summary for one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationReport {
    /// The signal.
    pub array: String,
    /// Total reads per execution.
    pub c_tot: u64,
    /// Background footprint in elements.
    pub background_words: u64,
    /// `(label, size, reuse factor, exact)` per candidate.
    pub candidates: Vec<(String, u64, f64, bool)>,
    /// The Pareto-front hierarchies, smallest first.
    pub pareto: Vec<HierarchyRow>,
    /// Human "why" lines distilled from the exploration audit log
    /// (empty unless populated via [`ExplorationReport::with_why`]).
    pub why: Vec<String>,
}

/// Describes a candidate source with the paper's vocabulary.
pub fn describe_source(source: CandidateSource) -> String {
    match source {
        CandidateSource::Footprint { depth_from_inner } => {
            format!("footprint level (+{depth_from_inner} loops)")
        }
        CandidateSource::MergedFootprint { depth_from_inner } => {
            format!("merged footprint (+{depth_from_inner} loops)")
        }
        CandidateSource::PairMax => "pairwise maximum reuse".into(),
        CandidateSource::PairPartial { gamma, bypass: false } => {
            format!("partial reuse γ={gamma}")
        }
        CandidateSource::PairPartial { gamma, bypass: true } => {
            format!("partial reuse γ={gamma} + bypass")
        }
        CandidateSource::Simulated => "simulated".into(),
    }
}

impl ExplorationReport {
    /// Builds the report from an exploration under a memory technology.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_core::{explore_signal, ExplorationReport, ExploreOptions};
    /// use datareuse_loopir::parse_program;
    /// use datareuse_memmodel::{BitCount, MemoryTechnology};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
    /// let ex = explore_signal(&p, "A", &ExploreOptions::default())?;
    /// let report = ExplorationReport::build(
    ///     &ex,
    ///     &ExploreOptions::default(),
    ///     &MemoryTechnology::new(),
    ///     &BitCount,
    /// );
    /// assert!(report.to_string().contains("Pareto front"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(
        exploration: &SignalExploration,
        opts: &ExploreOptions,
        tech: &MemoryTechnology,
        area: &(impl AreaModel + Sync),
    ) -> Self {
        let candidates = exploration
            .candidates
            .iter()
            .map(|c| {
                (
                    describe_source(c.source),
                    c.size,
                    c.reuse_factor(),
                    c.exact,
                )
            })
            .collect();
        let pareto = exploration
            .pareto(opts, tech, area)
            .into_iter()
            .map(|p| {
                let (chain, cost) = p.payload;
                let breakdown = chain_breakdown(&chain, tech);
                HierarchyRow {
                    level_sizes: chain.levels.iter().map(|l| l.words).collect(),
                    onchip_words: cost.onchip_words,
                    normalized_power: cost.normalized_energy,
                    background_share: breakdown.background_share(),
                }
            })
            .collect();
        Self {
            array: exploration.array.clone(),
            c_tot: exploration.c_tot,
            background_words: exploration.background_words,
            candidates,
            pareto,
            why: Vec::new(),
        }
    }

    /// Fills the `why` section from an exploration audit sink: records of
    /// other arrays are ignored, so one sink can serve a whole-program
    /// report.
    pub fn with_why(mut self, explain: &datareuse_obs::Explain) -> Self {
        self.why = crate::explain::why_lines(&explain.records(), &self.array);
        self
    }
}

impl ExplorationReport {
    /// The report as a single-line JSON document, for machine consumers
    /// (`datareuse explore … --json`).
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_core::{explore_signal, ExplorationReport, ExploreOptions};
    /// use datareuse_loopir::parse_program;
    /// use datareuse_memmodel::{BitCount, MemoryTechnology};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
    /// let ex = explore_signal(&p, "A", &ExploreOptions::default())?;
    /// let report = ExplorationReport::build(
    ///     &ex,
    ///     &ExploreOptions::default(),
    ///     &MemoryTechnology::new(),
    ///     &BitCount,
    /// );
    /// let json = report.to_json();
    /// assert!(json.starts_with(r#"{"array":"A","c_tot":128"#));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_json(&self) -> String {
        Json::obj([
            ("array", Json::str(&self.array)),
            ("c_tot", Json::UInt(self.c_tot)),
            ("background_words", Json::UInt(self.background_words)),
            (
                "candidates",
                Json::arr(self.candidates.iter().map(|(label, size, fr, exact)| {
                    Json::obj([
                        ("source", Json::str(label)),
                        ("size", Json::UInt(*size)),
                        ("reuse_factor", Json::Num(*fr)),
                        ("exact", Json::Bool(*exact)),
                    ])
                })),
            ),
            (
                "pareto",
                Json::arr(self.pareto.iter().map(|row| {
                    Json::obj([
                        (
                            "level_sizes",
                            Json::arr(row.level_sizes.iter().map(|&s| Json::UInt(s))),
                        ),
                        ("onchip_words", Json::UInt(row.onchip_words)),
                        ("normalized_power", Json::Num(row.normalized_power)),
                        ("background_share", Json::Num(row.background_share)),
                    ])
                })),
            ),
            ("why", Json::arr(self.why.iter().map(Json::str))),
        ])
        .to_string()
    }
}

impl fmt::Display for ExplorationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "signal `{}`: {} reads, {} background elements",
            self.array, self.c_tot, self.background_words
        )?;
        writeln!(f, "\ncopy-candidates:")?;
        for (label, size, fr, exact) in &self.candidates {
            writeln!(
                f,
                "  {size:>8} elements  F_R = {fr:>8.2}  {label}{}",
                if *exact { "" } else { "  (approximate)" }
            )?;
        }
        writeln!(f, "\nPareto front (size, normalized power, background share):")?;
        for row in &self.pareto {
            let levels: Vec<String> = row.level_sizes.iter().map(u64::to_string).collect();
            writeln!(
                f,
                "  {:>8}  {:>8.4}  {:>5.1}%  [{}]",
                row.onchip_words,
                row.normalized_power,
                100.0 * row.background_share,
                levels.join(" > ")
            )?;
        }
        if !self.why.is_empty() {
            writeln!(f, "\nwhy:")?;
            for line in &self.why {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_signal;
    use datareuse_loopir::parse_program;
    use datareuse_memmodel::BitCount;

    #[test]
    fn report_renders_candidates_and_front() {
        let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        let ex = explore_signal(&p, "A", &ExploreOptions::default()).unwrap();
        let r = ExplorationReport::build(
            &ex,
            &ExploreOptions::default(),
            &MemoryTechnology::new(),
            &BitCount,
        );
        let text = r.to_string();
        assert!(text.contains("signal `A`: 128 reads"));
        assert!(text.contains("pairwise maximum reuse"));
        assert!(text.contains("Pareto front"));
        // The baseline row burns 100% in the background.
        assert!((r.pareto[0].background_share - 1.0).abs() < 1e-12);
        // The best row shifts a substantial part of the energy on-chip
        // (F_RMax ≈ 5.6 here, so the background still serves 1/5.6 of the
        // reads at ~36x the on-chip energy).
        assert!(r.pareto.last().unwrap().background_share < 0.95);
        assert!(
            r.pareto.last().unwrap().normalized_power
                < r.pareto[0].normalized_power
        );
    }

    #[test]
    fn report_json_is_complete_and_parsable_shape() {
        let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        let ex = explore_signal(&p, "A", &ExploreOptions::default()).unwrap();
        let r = ExplorationReport::build(
            &ex,
            &ExploreOptions::default(),
            &MemoryTechnology::new(),
            &BitCount,
        );
        let json = r.to_json();
        assert!(json.starts_with("{\"array\":\"A\""));
        // Round-trip through the in-repo reader: the document is
        // well-formed and candidate/Pareto counts survive the encoding.
        let parsed = Json::parse(&json).expect("report JSON must parse");
        assert_eq!(parsed.get("array").and_then(Json::as_str), Some("A"));
        assert_eq!(parsed.get("c_tot").and_then(Json::as_u64), Some(r.c_tot));
        assert_eq!(
            parsed.get("candidates").and_then(Json::as_array).unwrap().len(),
            r.candidates.len()
        );
        assert_eq!(
            parsed.get("pareto").and_then(Json::as_array).unwrap().len(),
            r.pareto.len()
        );
    }

    #[test]
    fn why_section_matches_the_audit_log() {
        let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        let sink = datareuse_obs::Explain::new();
        let opts = ExploreOptions::default();
        let ex = crate::explore::explore_signal_explained(&p, "A", &opts, Some(&sink)).unwrap();
        let tech = MemoryTechnology::new();
        let front = ex.pareto_explained(&opts, &tech, &BitCount, Some(&sink));
        let r = ExplorationReport::build(&ex, &opts, &tech, &BitCount).with_why(&sink);
        // One line per kept candidate + tally, one per front chain + tally.
        assert_eq!(
            r.why.len(),
            ex.candidates.len() + front.len() + 2,
            "{:#?}",
            r.why
        );
        let text = r.to_string();
        assert!(text.contains("\nwhy:"));
        assert!(text.contains("hierarchies:"));
        // The why lines ride along in the JSON artifact too.
        let parsed = Json::parse(&r.to_json()).unwrap();
        assert_eq!(
            parsed.get("why").and_then(Json::as_array).unwrap().len(),
            r.why.len()
        );
    }

    #[test]
    fn source_descriptions_are_distinct() {
        let all = [
            CandidateSource::Footprint { depth_from_inner: 1 },
            CandidateSource::MergedFootprint { depth_from_inner: 2 },
            CandidateSource::PairMax,
            CandidateSource::PairPartial { gamma: 3, bypass: false },
            CandidateSource::PairPartial { gamma: 3, bypass: true },
            CandidateSource::Simulated,
        ];
        let mut seen: Vec<String> = all.iter().map(|&s| describe_source(s)).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), all.len());
    }
}
