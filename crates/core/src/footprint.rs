//! Multi-level copy-candidate generation by footprint analysis.
//!
//! The paper's Fig. 4a shows "several discontinuities … for smaller
//! copy-candidate sizes (A₂ − A₄). These are the sizes where maximum reuse
//! is obtained for a subset of inner loops in the total loop nest." This
//! module computes those candidate levels analytically, one per loop depth:
//! the candidate at depth `d` holds the footprint of the sub-nest below
//! depth `d`, is refreshed incrementally as the loop at depth `d−1` steps
//! (exploiting the overlap between consecutive footprints), and is reloaded
//! for every iteration of the loops above.
//!
//! The fill counts are *exact* for the hold-current-footprint schedule
//! whenever the index dimensions depend on disjoint iterator sets (true for
//! all kernels in the paper); otherwise the candidate is flagged
//! approximate and uses a product upper bound.

use std::collections::BTreeSet;

use datareuse_loopir::{AffineExpr, Loop, LoopNest};

use crate::error::AnalyzeError;

/// Enumeration budget for per-dimension value sets; beyond this the
/// analysis falls back to dense-interval approximation.
const ENUM_BUDGET: u64 = 1 << 22;

/// One footprint-derived copy-candidate level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCandidate {
    /// Number of outer loops fixed: the candidate holds the footprint of
    /// `loops[depth..]` and exploits reuse carried by `loops[depth-1]`.
    pub depth: usize,
    /// Candidate capacity in elements.
    pub size: u64,
    /// Total writes into the candidate over the whole nest execution.
    pub fills: u64,
    /// Total reads of the access group (`C_tot`).
    pub c_tot: u64,
    /// False when the counts are upper bounds rather than exact (index
    /// dimensions sharing iterators, or enumeration budget exceeded).
    pub exact: bool,
}

impl LevelCandidate {
    /// The reuse factor `F_R = C_tot / C_j` this level achieves.
    pub fn reuse_factor(&self) -> f64 {
        if self.fills == 0 {
            self.c_tot as f64
        } else {
            self.c_tot as f64 / self.fills as f64
        }
    }

    /// A level is useful only when its reuse factor exceeds 1 — otherwise
    /// "this sub-level is useless and would even lead to an increase of
    /// memory size and power" (paper Section 3) and is pruned.
    pub fn is_useful(&self) -> bool {
        self.fills < self.c_tot
    }
}

/// The distinct values of `expr` over the box spanned by `loops`,
/// *including the constant offset* (iterators of `expr` absent from
/// `loops` contribute 0), or `None` when the enumeration budget is
/// exceeded. The offset matters when unioning sets of several translated
/// accesses sharing one copy-candidate.
fn value_set(expr: &AffineExpr, loops: &[&Loop]) -> Option<BTreeSet<i64>> {
    let contributing: Vec<&Loop> = loops
        .iter()
        .copied()
        .filter(|l| expr.coeff(l.name()) != 0)
        .collect();
    let combos: u64 = contributing.iter().map(|l| l.trip_count()).product();
    if combos > ENUM_BUDGET {
        return None;
    }
    let mut values = BTreeSet::new();
    let mut stack = vec![(0usize, expr.constant_part())];
    while let Some((dim, acc)) = stack.pop() {
        if dim == contributing.len() {
            values.insert(acc);
            continue;
        }
        let l = contributing[dim];
        let coeff = expr.coeff(l.name());
        for v in l.values() {
            stack.push((dim + 1, acc + coeff * v));
        }
    }
    Some(values)
}

fn shifted_overlap(set: &BTreeSet<i64>, shift: i64) -> u64 {
    if shift == 0 {
        return set.len() as u64;
    }
    set.iter().filter(|&&v| set.contains(&(v - shift))).count() as u64
}

/// Iteration budget for exact guard-aware access counting.
const COUNT_BUDGET: u64 = 1 << 24;

/// Exact number of executions of an access, honouring its guards, plus an
/// exactness flag (false when the guard space is too large to enumerate).
pub(crate) fn guarded_count(nest: &LoopNest, access: &datareuse_loopir::Access) -> (u64, bool) {
    if access.guards().is_empty() {
        return (nest.iteration_count(), true);
    }
    if nest.iteration_count() > COUNT_BUDGET {
        return (nest.iteration_count(), false);
    }
    let loops = nest.loops();
    let count = datareuse_loopir::IterSpace::over(loops)
        .filter(|point| {
            access.guards().iter().all(|g| {
                g.holds(|n| {
                    loops
                        .iter()
                        .position(|l| l.name() == n)
                        .map(|d| point[d])
                })
            })
        })
        .count() as u64;
    (count, true)
}

/// Computes the footprint-level candidates of `nest.accesses()[access]`
/// for every depth `1..=nest.depth()`, pruning useless levels
/// (`F_R = 1`). Accesses in the body sharing the exact index expression
/// are merged into the candidate (their reads all hit the same copy).
///
/// # Errors
///
/// Returns [`AnalyzeError::NoSuchAccess`] for a bad index.
///
/// # Examples
///
/// ```
/// use datareuse_core::footprint_levels;
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "array A[23];
///      for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
/// )?;
/// let levels = footprint_levels(&p.nests()[0], 0)?;
/// // Depth 1: hold the 8-element window, refresh 1 element per j step.
/// assert_eq!(levels[0].size, 8);
/// assert_eq!(levels[0].fills, 8 + 15);
/// # Ok(())
/// # }
/// ```
pub fn footprint_levels(
    nest: &LoopNest,
    access: usize,
) -> Result<Vec<LevelCandidate>, AnalyzeError> {
    let raw = nest
        .accesses()
        .get(access)
        .ok_or(AnalyzeError::NoSuchAccess { index: access })?;
    let members: Vec<usize> = nest
        .accesses()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.indices() == raw.indices() && a.kind() == raw.kind())
        .map(|(i, _)| i)
        .collect();
    footprint_levels_merged(nest, &members)
}

/// Computes footprint-level candidates for a *shared* copy serving several
/// accesses at once — the paper's merging of copy-candidates, extended to
/// accesses that are translations of each other (identical iterator
/// coefficients, different constant offsets), like the seven mask-row
/// accesses of the SUSAN test-vehicle sharing one row-band buffer.
///
/// The shared candidate at depth `d` holds the *union* of the accesses'
/// sub-nest footprints; consecutive-iteration overlap of the union is what
/// turns seven single-use row sweeps into a high-reuse rolling row buffer.
///
/// # Errors
///
/// Returns [`AnalyzeError::NoSuchAccess`] for a bad index and
/// [`AnalyzeError::NotTranslated`] when the accesses are not translations
/// of one another (or target different arrays).
pub fn footprint_levels_merged(
    nest: &LoopNest,
    accesses: &[usize],
) -> Result<Vec<LevelCandidate>, AnalyzeError> {
    if accesses.is_empty() {
        return Err(AnalyzeError::NoSuchAccess { index: 0 });
    }
    for &a in accesses {
        if a >= nest.accesses().len() {
            return Err(AnalyzeError::NoSuchAccess { index: a });
        }
    }
    let nest = nest.normalized();
    let loops = nest.loops();
    let reps: Vec<&datareuse_loopir::Access> =
        accesses.iter().map(|&a| &nest.accesses()[a]).collect();
    // Translation check: same array, same rank, same coefficients.
    let base = reps[0];
    for acc in &reps {
        let same_shape = acc.array() == base.array()
            && acc.indices().len() == base.indices().len()
            && acc
                .indices()
                .iter()
                .zip(base.indices())
                .all(|(a, b)| {
                    loops
                        .iter()
                        .all(|l| a.coeff(l.name()) == b.coeff(l.name()))
                });
        if !same_shape {
            return Err(AnalyzeError::NotTranslated);
        }
    }

    let mut c_tot = 0u64;
    let mut counts_exact = true;
    for acc in &reps {
        let (count, exact) = guarded_count(&nest, acc);
        c_tot += count;
        counts_exact &= exact;
    }
    let mut out = Vec::new();

    for depth in 1..=loops.len() {
        let inner: Vec<&Loop> = loops[depth..].iter().collect();
        let carrier = &loops[depth - 1];
        let invocations: u64 = loops[..depth - 1].iter().map(Loop::trip_count).product();
        let carrier_trips = carrier.trip_count();

        // Cross-dimension iterator disjointness among inner loops (the
        // coefficients are shared, so checking the base access suffices).
        let mut seen: Vec<&str> = Vec::new();
        let mut disjoint = true;
        for e in base.indices() {
            for l in &inner {
                if e.coeff(l.name()) != 0 {
                    if seen.contains(&l.name()) {
                        disjoint = false;
                    }
                    seen.push(l.name());
                }
            }
        }

        let mut footprint: u64 = 1;
        let mut overlap: u64 = 1;
        let mut exact = disjoint && counts_exact;
        for dim in 0..base.indices().len() {
            let shift = base.indices()[dim].coeff(carrier.name());
            let mut union: Option<BTreeSet<i64>> = Some(BTreeSet::new());
            for acc in &reps {
                match (value_set(&acc.indices()[dim], &inner), union.as_mut()) {
                    (Some(set), Some(u)) => u.extend(set),
                    _ => union = None,
                }
            }
            match union {
                Some(set) => {
                    footprint *= set.len() as u64;
                    overlap *= shifted_overlap(&set, shift);
                }
                None => {
                    // Dense-interval fallback over the union of ranges.
                    exact = false;
                    let mut lo = i64::MAX;
                    let mut hi = i64::MIN;
                    for acc in &reps {
                        let (l, h) = acc.indices()[dim].value_range(|n| {
                            inner
                                .iter()
                                .find(|lp| lp.name() == n)
                                .map(|lp| (lp.lower(), lp.upper()))
                        });
                        lo = lo.min(l);
                        hi = hi.max(h);
                    }
                    let width = (hi - lo + 1).max(1) as u64;
                    footprint *= width;
                    overlap *= width.saturating_sub(shift.unsigned_abs());
                }
            }
        }
        let new_per_step = footprint - overlap.min(footprint);
        let fills = invocations * (footprint + (carrier_trips - 1) * new_per_step);
        let candidate = LevelCandidate {
            depth,
            size: footprint,
            fills,
            c_tot,
            exact,
        };
        if candidate.is_useful() {
            out.push(candidate);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{parse_program, read_addresses, Program};
    use datareuse_trace::opt_simulate;

    fn program(src: &str) -> Program {
        parse_program(src).expect("valid program")
    }

    /// For exact candidates, OPT at the candidate size must fill at most
    /// as much (the candidate schedule is feasible), and the element-load
    /// minimum (distinct count) bounds from below.
    fn check_against_sim(src: &str) {
        let p = program(src);
        let trace = read_addresses(&p, p.arrays()[0].name());
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert!(!levels.is_empty());
        for lv in &levels {
            assert!(lv.exact, "expected exact analysis for {src}");
            let sim = opt_simulate(&trace, lv.size);
            assert!(
                sim.fills <= lv.fills,
                "OPT fills {} > candidate fills {} at size {} ({src})",
                sim.fills,
                lv.fills,
                lv.size
            );
        }
    }

    #[test]
    fn sliding_window_levels() {
        let p = program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }");
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert_eq!(levels.len(), 1); // depth 2 (inner k only) is useless
        let l = &levels[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.size, 8);
        assert_eq!(l.fills, 23); // 8 initial + 15 new
        assert_eq!(l.c_tot, 128);
        // Matches the OPT optimum exactly here.
        let trace = read_addresses(&p, "A");
        assert_eq!(opt_simulate(&trace, 8).fills, 23);
    }

    #[test]
    fn deep_nest_produces_multiple_levels() {
        let p = program(
            "array Old[30][30];
             for i1 in 0..4 { for i3 in 0..8 { for i4 in 0..8 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[3*i1 + i3 + i5][i4 + i6];
             } } } } }",
        );
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert!(levels.len() >= 3);
        // Sizes strictly decrease with depth; reuse factors decrease too.
        for w in levels.windows(2) {
            assert!(w[1].size < w[0].size);
            assert!(w[1].reuse_factor() <= w[0].reuse_factor() + 1e-9);
        }
        check_against_sim(
            "array Old[30][30];
             for i1 in 0..4 { for i3 in 0..8 { for i4 in 0..8 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[3*i1 + i3 + i5][i4 + i6];
             } } } } }",
        );
    }

    #[test]
    fn carrier_not_in_index_gives_full_reuse_across_it() {
        let p = program(
            "array A[8]; for r in 0..10 { for k in 0..8 { read A[k]; } }",
        );
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        let l = &levels[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.size, 8);
        assert_eq!(l.fills, 8); // loaded once, reused for all r
        assert_eq!(l.reuse_factor(), 10.0);
    }

    #[test]
    fn gapped_coefficients_count_distinct_values_exactly() {
        // 2*k over k in 0..6: 6 distinct values, not a dense 11-interval.
        let src = "array A[30]; for j in 0..8 { for k in 0..6 { read A[2*j + 2*k]; } }";
        let p = program(src);
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert_eq!(levels[0].size, 6);
        check_against_sim(src);
    }

    #[test]
    fn lagged_reuse_is_invisible_to_footprint_levels() {
        // 2*j + 4*k: reuse exists (j+2, k−1) but skips adjacent j
        // iterations, so the depth-1 hold-current-footprint candidate sees
        // no overlap and is pruned as useless. The pairwise model
        // (b'=1, c'=2) covers this case instead.
        let p = program("array A[50]; for j in 0..8 { for k in 0..6 { read A[2*j + 4*k]; } }");
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert!(levels.is_empty());
    }

    #[test]
    fn useless_levels_are_pruned() {
        // Innermost loop alone carries no reuse: every candidate with
        // F_R = 1 must be absent.
        let p = program("array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }");
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert!(levels.iter().all(LevelCandidate::is_useful));
        assert!(levels.is_empty()); // streaming access: no reuse at all
    }

    #[test]
    fn merged_identical_accesses_double_c_tot() {
        let p = program(
            "array A[23]; for j in 0..16 { for k in 0..8 {
               read A[j + k]; read A[j + k];
             } }",
        );
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert_eq!(levels[0].c_tot, 256);
        assert_eq!(levels[0].fills, 23);
    }

    #[test]
    fn shared_iterator_dims_are_flagged_approximate() {
        let p = program(
            "array A[16][16]; for j in 0..8 { for k in 0..8 { read A[k][k]; } }",
        );
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        // Diagonal access: dims share k; counts are upper bounds.
        assert!(levels.iter().all(|l| !l.exact));
    }

    #[test]
    fn bad_access_index_errors() {
        let p = program("array A[4]; for i in 0..4 { read A[i]; }");
        assert!(matches!(
            footprint_levels(&p.nests()[0], 3),
            Err(AnalyzeError::NoSuchAccess { .. })
        ));
    }

    #[test]
    fn motion_estimation_level_sizes() {
        // Full ME at reduced size to keep the test fast: H=W=32, n=m=4.
        let p = program(
            "array Old[39][39];
             for i1 in 0..8 { for i2 in 0..8 { for i3 in 0..8 { for i4 in 0..8 {
               for i5 in 0..4 { for i6 in 0..4 {
                 read Old[4*i1 + i3 + i5][4*i2 + i4 + i6];
             } } } } } }",
        );
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        let sizes: Vec<u64> = levels.iter().map(|l| l.size).collect();
        // depth 1: rows {i3,i5}=11 × cols {i2,i4,i6}=39; depth 2: 11×11;
        // depth 3: rows {i5}=4 × cols {i4,i6}=11; depth 4: 4×4;
        // depth 5 (inner i6 only) carries no reuse and is pruned.
        assert_eq!(sizes, vec![11 * 39, 11 * 11, 4 * 11, 4 * 4]);
        let trace = read_addresses(&p, "Old");
        for lv in &levels {
            let sim = opt_simulate(&trace, lv.size);
            assert!(sim.fills <= lv.fills);
            // The analytical candidate is close to the optimum.
            assert!(
                (lv.fills as f64) < 1.6 * sim.fills as f64,
                "depth {}: {} vs OPT {}",
                lv.depth,
                lv.fills,
                sim.fills
            );
        }
    }
}
