//! Symbolic reuse profiles: closed-form footprints, fills, miss-rate
//! curves, and reuse-distance distributions for arbitrary-depth affine
//! nests.
//!
//! The paper's analytical model (eq. 1–22) covers the double inner nest;
//! [`crate::footprint_levels`] extends it to deeper nests by *enumerating*
//! per-dimension value sets, which degrades to a dense-interval bound once
//! the enumeration budget is exceeded — and the trace simulators behind
//! cross-validation are O(iterations). This module computes the same
//! hold-current-footprint candidate levels in closed form, in O(depth ×
//! dims) arithmetic, for every nest in the *conforming* class:
//!
//! - every access of the group is unguarded,
//! - the accesses are translations of one another (identical iterator
//!   coefficients, different constant offsets),
//! - at every depth, no inner iterator feeds two index dimensions,
//! - every per-dimension value set is a gap-free strided interval
//!   ([`StridedInterval::from_terms`]), and the union across translated
//!   accesses is one too.
//!
//! All kernels shipped in `datareuse-kernels` except the guarded SUSAN
//! mask are conforming. Non-conforming nests return a
//! [`SymbolicFallback`] naming the first violated condition and the
//! caller falls back to enumeration/simulation — the dispatch that
//! [`crate::explore_signal`] records in the `symbolic_hits` /
//! `sim_fallbacks` counters.
//!
//! Where both paths apply, the symbolic candidates are *identical* to
//! [`crate::footprint_levels`] output (the property harness in
//! `tests/symbolic.rs` pins this on randomly generated nests); where the
//! enumeration budget would have forced an approximation, the closed
//! forms stay exact.
//!
//! | Paper | Here |
//! |---|---|
//! | eq. 1: `F_R = C_tot / C_j` | [`crate::LevelCandidate::reuse_factor`] on [`SymbolicProfile::level_candidates`] |
//! | Fig. 4a discontinuities `A₁…A₄` | [`SymbolicProfile::level_candidates`] (sizes) |
//! | Fig. 4a reuse-factor staircase | [`SymbolicProfile::miss_curve`] |
//! | Section 4 "distance in time … number of different data elements" | [`SymbolicProfile::reuse_histogram`] |

use std::fmt;

use datareuse_loopir::{Loop, LoopNest};

use crate::footprint::LevelCandidate;
use crate::stride::StridedInterval;

/// Why a nest left the symbolic path — the first conforming-class
/// condition it violates. Carried into `--explain` audit records and
/// counted by the `sim_fallbacks` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolicFallback {
    /// An access carries guards (e.g. the SUSAN circular mask): its
    /// iteration space is not the full loop box.
    Guarded,
    /// An inner iterator feeds two index dimensions (e.g. the diagonal
    /// `A[k][k]`), so the footprint does not factor per dimension.
    SharedIterators,
    /// A dimension's value set has gaps no strided interval covers
    /// (the density condition of [`StridedInterval::from_terms`] fails).
    SparseDim,
    /// The translated accesses' value sets do not union into a single
    /// gap-free strided interval.
    UnalignedUnion,
    /// The accesses are not translations of one another (different
    /// arrays, ranks, or iterator coefficients).
    NotTranslated,
    /// A closed-form count overflowed 64-bit arithmetic.
    Overflow,
    /// Empty or out-of-range access list.
    BadAccess,
}

impl SymbolicFallback {
    /// Stable kebab-case reason string (the `reason` field of the
    /// `symbolic-profile` audit record).
    pub const fn reason(self) -> &'static str {
        match self {
            SymbolicFallback::Guarded => "guarded",
            SymbolicFallback::SharedIterators => "shared-iterators",
            SymbolicFallback::SparseDim => "sparse-dim",
            SymbolicFallback::UnalignedUnion => "unaligned-union",
            SymbolicFallback::NotTranslated => "not-translated",
            SymbolicFallback::Overflow => "overflow",
            SymbolicFallback::BadAccess => "bad-access",
        }
    }
}

impl fmt::Display for SymbolicFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.reason())
    }
}

/// One closed-form copy-candidate level: the hold-current-footprint
/// schedule at `depth` outer loops fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicLevel {
    /// Number of outer loops fixed (matches
    /// [`crate::LevelCandidate::depth`]).
    pub depth: usize,
    /// Footprint of the sub-nest below `depth` — the candidate capacity
    /// `A` in elements.
    pub size: u64,
    /// Total fills `C_j` over the whole nest execution.
    pub fills: u64,
}

/// The symbolic reuse profile of one access group: per-depth candidate
/// levels, the whole-nest footprint, and the derived miss-rate curve and
/// reuse-distance distribution — all computed without touching a trace.
///
/// # Examples
///
/// ```
/// use datareuse_core::SymbolicProfile;
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "array A[23];
///      for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
/// )?;
/// let profile = SymbolicProfile::analyze(&p.nests()[0], &[0]).unwrap();
/// assert_eq!(profile.c_tot(), 128);
/// assert_eq!(profile.total_footprint(), 23);
/// // Depth 1 holds the 8-wide window and refreshes one element per step.
/// let levels = profile.level_candidates();
/// assert_eq!((levels[0].size, levels[0].fills), (8, 23));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicProfile {
    nest_depth: usize,
    c_tot: u64,
    total_footprint: u64,
    levels: Vec<SymbolicLevel>,
}

impl SymbolicProfile {
    /// Analyzes the access group `accesses` (indices into
    /// `nest.accesses()`) symbolically, or reports the first
    /// conforming-class violation.
    ///
    /// # Errors
    ///
    /// Returns the [`SymbolicFallback`] naming why the nest left the
    /// symbolic path; the caller is expected to fall back to
    /// [`crate::footprint_levels_merged`].
    pub fn analyze(nest: &LoopNest, accesses: &[usize]) -> Result<Self, SymbolicFallback> {
        if accesses.is_empty() {
            return Err(SymbolicFallback::BadAccess);
        }
        for &a in accesses {
            if a >= nest.accesses().len() {
                return Err(SymbolicFallback::BadAccess);
            }
        }
        // Normalize exactly as `footprint_levels_merged` does: loops
        // rewritten to 0-based unit step with the affine substitution
        // folded into the access coefficients, so the two paths see the
        // same coefficients and the outputs can be compared byte for
        // byte.
        let nest = nest.normalized();
        let loops = nest.loops();
        let reps: Vec<&datareuse_loopir::Access> =
            accesses.iter().map(|&a| &nest.accesses()[a]).collect();
        if reps.iter().any(|a| !a.guards().is_empty()) {
            return Err(SymbolicFallback::Guarded);
        }
        let base = reps[0];
        for acc in &reps {
            let same_shape = acc.array() == base.array()
                && acc.indices().len() == base.indices().len()
                && acc.indices().iter().zip(base.indices()).all(|(a, b)| {
                    loops.iter().all(|l| a.coeff(l.name()) == b.coeff(l.name()))
                });
            if !same_shape {
                return Err(SymbolicFallback::NotTranslated);
            }
        }
        let c_tot = (reps.len() as u64)
            .checked_mul(nest.iteration_count())
            .ok_or(SymbolicFallback::Overflow)?;

        let mut levels = Vec::with_capacity(loops.len());
        for depth in 1..=loops.len() {
            let inner = &loops[depth..];
            let carrier = &loops[depth - 1];
            let invocations = loops[..depth - 1]
                .iter()
                .try_fold(1u64, |acc, l| acc.checked_mul(l.trip_count()))
                .ok_or(SymbolicFallback::Overflow)?;
            let (size, overlap) = group_terms(base, &reps, inner, Some(carrier))?;
            let new_per_step = size - overlap.min(size);
            let fills = invocations
                .checked_mul(
                    size.checked_add(
                        (carrier.trip_count() - 1)
                            .checked_mul(new_per_step)
                            .ok_or(SymbolicFallback::Overflow)?,
                    )
                    .ok_or(SymbolicFallback::Overflow)?,
                )
                .ok_or(SymbolicFallback::Overflow)?;
            levels.push(SymbolicLevel { depth, size, fills });
        }
        let (total_footprint, _) = group_terms(base, &reps, loops, None)?;
        Ok(Self {
            nest_depth: loops.len(),
            c_tot,
            total_footprint,
            levels,
        })
    }

    /// Total reads of the group over the whole execution (`C_tot`).
    pub fn c_tot(&self) -> u64 {
        self.c_tot
    }

    /// Distinct elements the group touches — the whole-nest footprint,
    /// equal to the trace's distinct count and to the compulsory misses
    /// of any replacement policy at any capacity.
    pub fn total_footprint(&self) -> u64 {
        self.total_footprint
    }

    /// Depth of the analyzed nest.
    pub fn nest_depth(&self) -> usize {
        self.nest_depth
    }

    /// Every per-depth level, including useless ones (`F_R = 1`), in
    /// depth order.
    pub fn levels(&self) -> &[SymbolicLevel] {
        &self.levels
    }

    /// The copy-candidate levels as [`LevelCandidate`]s, with useless
    /// levels pruned — element-for-element identical to
    /// [`crate::footprint_levels_merged`] output on conforming nests
    /// (each carries the eq. 1 cost terms: `A` = size, `C_j` = fills,
    /// `C_R = C_tot − C_j`, `F_R` via
    /// [`LevelCandidate::reuse_factor`]).
    pub fn level_candidates(&self) -> Vec<LevelCandidate> {
        self.levels
            .iter()
            .map(|l| LevelCandidate {
                depth: l.depth,
                size: l.size,
                fills: l.fills,
                c_tot: self.c_tot,
                exact: true,
            })
            .filter(LevelCandidate::is_useful)
            .collect()
    }

    /// The miss-rate staircase: `(capacity, fills)` points sorted by
    /// ascending capacity with strictly decreasing fills — the lower
    /// envelope of the candidate levels plus the saturation point
    /// `(footprint, footprint)` where every miss is compulsory. Empty
    /// for a streaming access with no reuse at all.
    pub fn miss_curve(&self) -> Vec<(u64, u64)> {
        let mut pts: Vec<(u64, u64)> = self.levels.iter().map(|l| (l.size, l.fills)).collect();
        pts.push((self.total_footprint, self.total_footprint));
        pts.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut out: Vec<(u64, u64)> = Vec::new();
        for (cap, fills) in pts {
            if fills >= self.c_tot {
                continue; // no reuse at this capacity
            }
            match out.last() {
                Some(&(prev_cap, prev_fills)) => {
                    if cap != prev_cap && fills < prev_fills {
                        out.push((cap, fills));
                    }
                }
                None => out.push((cap, fills)),
            }
        }
        out
    }

    /// The symbolic reuse-distance distribution: how many accesses hit
    /// at each capacity step of the miss curve, plus the compulsory
    /// (first-touch) misses no capacity removes. Conserves `C_tot`
    /// exactly: `Σ bucket counts + remaining misses = C_tot`.
    pub fn reuse_histogram(&self) -> ReuseHistogram {
        let mut buckets = Vec::new();
        let mut misses = self.c_tot;
        for (cap, fills) in self.miss_curve() {
            let count = misses - fills;
            if count > 0 {
                buckets.push(ReuseBucket {
                    distance: cap,
                    count,
                });
            }
            misses = fills;
        }
        ReuseHistogram {
            buckets,
            compulsory: self.total_footprint.min(misses),
            uncaptured: misses - self.total_footprint.min(misses),
            c_tot: self.c_tot,
        }
    }
}

/// Closed-form footprint and consecutive-carrier-step overlap of the
/// access group over `inner` loops, as products of per-dimension strided
/// intervals — the symbolic twin of the `value_set`/`shifted_overlap`
/// enumeration in `footprint.rs`.
fn group_terms(
    base: &datareuse_loopir::Access,
    reps: &[&datareuse_loopir::Access],
    inner: &[Loop],
    carrier: Option<&Loop>,
) -> Result<(u64, u64), SymbolicFallback> {
    // Cross-dimension iterator disjointness among the inner loops (the
    // coefficients are shared across reps, so the base access suffices).
    let mut seen: Vec<&str> = Vec::new();
    for e in base.indices() {
        for l in inner {
            if e.coeff(l.name()) != 0 {
                if seen.contains(&l.name()) {
                    return Err(SymbolicFallback::SharedIterators);
                }
                seen.push(l.name());
            }
        }
    }
    let mut footprint: u64 = 1;
    let mut overlap: u64 = 1;
    for dim in 0..base.indices().len() {
        let mut sets: Vec<StridedInterval> = Vec::with_capacity(reps.len());
        for acc in reps {
            let e = &acc.indices()[dim];
            let terms: Vec<(i64, u64)> = inner
                .iter()
                .map(|l| (e.coeff(l.name()), l.trip_count()))
                .collect();
            sets.push(
                StridedInterval::from_terms(e.constant_part(), &terms)
                    .ok_or(SymbolicFallback::SparseDim)?,
            );
        }
        // Union in min order so an interval bridging two others merges
        // regardless of source-code access order.
        sets.sort_by_key(StridedInterval::min);
        let mut union = sets[0];
        for set in &sets[1..] {
            union = union
                .union(set)
                .ok_or(SymbolicFallback::UnalignedUnion)?;
        }
        footprint = footprint
            .checked_mul(union.count())
            .ok_or(SymbolicFallback::Overflow)?;
        let shift = carrier
            .map(|c| base.indices()[dim].coeff(c.name()))
            .unwrap_or(0);
        overlap = overlap
            .checked_mul(union.shifted_overlap(shift))
            .ok_or(SymbolicFallback::Overflow)?;
    }
    Ok((footprint, overlap))
}

/// The symbolic reuse-distance distribution of an access group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// `(distance, count)` buckets in ascending distance: `count`
    /// accesses become hits once the copy-candidate holds `distance`
    /// elements.
    pub buckets: Vec<ReuseBucket>,
    /// First-touch loads: the whole-nest footprint.
    pub compulsory: u64,
    /// Misses beyond the compulsory ones that no candidate level
    /// captures (reuse the hold-footprint schedule cannot exploit, e.g.
    /// lagged reuse the pairwise model covers instead).
    pub uncaptured: u64,
    /// Total accesses, for conservation checks.
    pub c_tot: u64,
}

/// One reuse-distance bucket: `count` accesses whose symbolic reuse
/// distance is `distance` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseBucket {
    /// Capacity at which these accesses turn into hits.
    pub distance: u64,
    /// Number of accesses in the bucket.
    pub count: u64,
}

impl ReuseHistogram {
    /// Sum of all bucket counts plus compulsory and uncaptured misses —
    /// always equals `c_tot`.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum::<u64>() + self.compulsory + self.uncaptured
    }
}

/// The symbolic twin of [`crate::footprint_levels`]: groups the accesses
/// sharing `nest.accesses()[access]`'s exact index expression and kind,
/// then analyzes the group symbolically.
///
/// # Errors
///
/// Returns the [`SymbolicFallback`] naming why the nest left the
/// symbolic path.
pub fn symbolic_profile(
    nest: &LoopNest,
    access: usize,
) -> Result<SymbolicProfile, SymbolicFallback> {
    let raw = nest
        .accesses()
        .get(access)
        .ok_or(SymbolicFallback::BadAccess)?;
    let members: Vec<usize> = nest
        .accesses()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.indices() == raw.indices() && a.kind() == raw.kind())
        .map(|(i, _)| i)
        .collect();
    SymbolicProfile::analyze(nest, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::{footprint_levels, footprint_levels_merged};
    use datareuse_loopir::{parse_program, read_addresses, Program};
    use datareuse_trace::{distinct_count, opt_simulate};

    fn program(src: &str) -> Program {
        parse_program(src).expect("valid program")
    }

    fn assert_matches_enumeration(src: &str) {
        let p = program(src);
        let nest = &p.nests()[0];
        let profile = symbolic_profile(nest, 0).expect("conforming nest");
        assert_eq!(
            profile.level_candidates(),
            footprint_levels(nest, 0).unwrap(),
            "symbolic != enumeration for {src}"
        );
        let trace = read_addresses(&p, p.arrays()[0].name());
        assert_eq!(profile.c_tot(), trace.len() as u64, "{src}");
        assert_eq!(profile.total_footprint(), distinct_count(&trace), "{src}");
    }

    #[test]
    fn conforming_nests_match_the_enumeration_path() {
        for src in [
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
            "array A[8]; for r in 0..10 { for k in 0..8 { read A[k]; } }",
            "array A[30]; for j in 0..8 { for k in 0..6 { read A[2*j + 2*k]; } }",
            "array A[50]; for j in 0..8 { for k in 0..6 { read A[2*j + 4*k]; } }",
            "array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }",
            "array Old[30][30];
             for i1 in 0..4 { for i3 in 0..8 { for i4 in 0..8 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[3*i1 + i3 + i5][i4 + i6];
             } } } } }",
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; read A[j + k]; } }",
            // Non-unit lower bounds and steps exercise normalization.
            "array A[64]; for j in 4..20 step 2 { for k in 1..9 { read A[2*j + k]; } }",
        ] {
            assert_matches_enumeration(src);
        }
    }

    #[test]
    fn motion_estimation_profile_matches_the_paper_sizes() {
        let p = program(
            "array Old[39][39];
             for i1 in 0..8 { for i2 in 0..8 { for i3 in 0..8 { for i4 in 0..8 {
               for i5 in 0..4 { for i6 in 0..4 {
                 read Old[4*i1 + i3 + i5][4*i2 + i4 + i6];
             } } } } } }",
        );
        let nest = &p.nests()[0];
        let profile = symbolic_profile(nest, 0).unwrap();
        let sizes: Vec<u64> = profile.level_candidates().iter().map(|l| l.size).collect();
        assert_eq!(sizes, vec![11 * 39, 11 * 11, 4 * 11, 4 * 4]);
        assert_eq!(profile.level_candidates(), footprint_levels(nest, 0).unwrap());
        assert_eq!(profile.total_footprint(), 39 * 39);
    }

    #[test]
    fn guarded_and_diagonal_nests_fall_back() {
        let p = program(
            "array A[16][16]; for j in 0..8 { for k in 0..8 { read A[k][k]; } }",
        );
        assert_eq!(
            symbolic_profile(&p.nests()[0], 0),
            Err(SymbolicFallback::SharedIterators)
        );
        let p = program("array A[8]; for i in 0..8 { read A[i] if i != 3; }");
        assert_eq!(
            symbolic_profile(&p.nests()[0], 0),
            Err(SymbolicFallback::Guarded)
        );
    }

    #[test]
    fn sparse_dimension_falls_back_and_enumeration_agrees_it_is_exact() {
        // 3j + 7k: value set has Frobenius gaps; enumeration still
        // handles it exactly, which is exactly why the fallback exists.
        let p = program("array A[60]; for j in 0..4 { for k in 0..4 { read A[3*j + 7*k]; } }");
        assert_eq!(
            symbolic_profile(&p.nests()[0], 0),
            Err(SymbolicFallback::SparseDim)
        );
        let levels = footprint_levels(&p.nests()[0], 0).unwrap();
        assert!(levels.iter().all(|l| l.exact));
    }

    #[test]
    fn merged_translated_accesses_union_into_one_profile() {
        let src = "array A[32];
             for j in 0..16 { for k in 0..8 {
               read A[j + k]; read A[j + k + 1];
             } }";
        let p = program(src);
        let nest = &p.nests()[0];
        let profile = SymbolicProfile::analyze(nest, &[0, 1]).unwrap();
        assert_eq!(
            profile.level_candidates(),
            footprint_levels_merged(nest, &[0, 1]).unwrap()
        );
        // The union is the 9-wide rolling band shared by both accesses.
        assert_eq!(profile.level_candidates()[0].size, 9);
        assert_eq!(profile.c_tot(), 256);
    }

    #[test]
    fn unaligned_translations_fall_back() {
        // Strides 2 with offset 1: the union interleaves instead of
        // extending, so the closed form refuses and enumeration decides.
        let p = program(
            "array A[40];
             for j in 0..8 { for k in 0..8 {
               read A[2*j + 2*k]; read A[2*j + 2*k + 1];
             } }",
        );
        assert_eq!(
            SymbolicProfile::analyze(&p.nests()[0], &[0, 1]),
            Err(SymbolicFallback::UnalignedUnion)
        );
        // Offset 8 with an 8-wide window: the depth-1 bands abut, but the
        // depth-2 singletons {0} and {8} leave a gap — classification is
        // all-or-nothing, so the whole nest falls back to enumeration.
        let p = program(
            "array A[32];
             for j in 0..16 { for k in 0..8 {
               read A[j + k]; read A[j + k + 8];
             } }",
        );
        assert_eq!(
            SymbolicProfile::analyze(&p.nests()[0], &[0, 1]),
            Err(SymbolicFallback::UnalignedUnion)
        );
        let p = program(
            "array A[4][8]; for j in 0..8 { for k in 0..4 { read A[k][j]; read A[k][7 - j]; } }",
        );
        assert_eq!(
            SymbolicProfile::analyze(&p.nests()[0], &[0, 1]),
            Err(SymbolicFallback::NotTranslated)
        );
    }

    #[test]
    fn miss_curve_is_a_strict_staircase_validated_by_belady() {
        let p = program(
            "array A[39][39];
             for i1 in 0..8 { for i3 in 0..8 { for i5 in 0..4 { for i6 in 0..12 {
               read A[4*i1 + i3 + i5][i6];
             } } } }",
        );
        let profile = symbolic_profile(&p.nests()[0], 0).unwrap();
        let curve = profile.miss_curve();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1, "not a staircase: {curve:?}");
        }
        // The curve saturates at compulsory-only misses; the depth-1
        // candidate (cap 132) reaches that before the full footprint, so
        // the redundant (footprint, footprint) point is enveloped away.
        assert_eq!(curve.last().unwrap().1, profile.total_footprint());
        assert!(curve.last().unwrap().0 <= profile.total_footprint());
        // Every point is feasible: Belady at that capacity does at least
        // as well, and no policy beats compulsory misses.
        let trace = read_addresses(&p, "A");
        for &(cap, fills) in &curve {
            let opt = opt_simulate(&trace, cap);
            assert!(opt.fills <= fills, "OPT {} > symbolic {fills} at {cap}", opt.fills);
            assert!(fills >= profile.total_footprint());
        }
    }

    #[test]
    fn reuse_histogram_conserves_c_tot() {
        for src in [
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
            "array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }", // streaming
            "array A[50]; for j in 0..8 { for k in 0..6 { read A[2*j + 4*k]; } }", // lagged
            "array Old[39][39];
             for i1 in 0..8 { for i2 in 0..8 { for i3 in 0..8 { for i4 in 0..8 {
               for i5 in 0..4 { for i6 in 0..4 {
                 read Old[4*i1 + i3 + i5][4*i2 + i4 + i6];
             } } } } } }",
        ] {
            let p = program(src);
            let profile = symbolic_profile(&p.nests()[0], 0).unwrap();
            let hist = profile.reuse_histogram();
            assert_eq!(hist.total(), profile.c_tot(), "{src}");
            assert_eq!(hist.compulsory, profile.total_footprint(), "{src}");
            for w in hist.buckets.windows(2) {
                assert!(w[0].distance < w[1].distance);
            }
        }
    }

    #[test]
    fn bad_access_lists_are_rejected() {
        let p = program("array A[4]; for i in 0..4 { read A[i]; }");
        assert_eq!(
            SymbolicProfile::analyze(&p.nests()[0], &[]),
            Err(SymbolicFallback::BadAccess)
        );
        assert_eq!(
            SymbolicProfile::analyze(&p.nests()[0], &[7]),
            Err(SymbolicFallback::BadAccess)
        );
        assert_eq!(symbolic_profile(&p.nests()[0], 9), Err(SymbolicFallback::BadAccess));
    }

    #[test]
    fn fallback_reasons_are_stable_strings() {
        for (fb, want) in [
            (SymbolicFallback::Guarded, "guarded"),
            (SymbolicFallback::SharedIterators, "shared-iterators"),
            (SymbolicFallback::SparseDim, "sparse-dim"),
            (SymbolicFallback::UnalignedUnion, "unaligned-union"),
            (SymbolicFallback::NotTranslated, "not-translated"),
            (SymbolicFallback::Overflow, "overflow"),
            (SymbolicFallback::BadAccess, "bad-access"),
        ] {
            assert_eq!(fb.to_string(), want);
        }
    }
}
