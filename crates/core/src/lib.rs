//! # datareuse-core
//!
//! The analytical data-reuse exploration model of *"Data Reuse Exploration
//! Techniques for Loop-dominated Applications"* (Van Achteren, Deconinck,
//! Catthoor, Lauwereins — DATE 2002): the paper's main contribution,
//! implemented exactly from its equations.
//!
//! | Paper | Here |
//! |---|---|
//! | eq. 4–9: reuse vectors, `rank(B)` | [`ReuseClass`], [`gcd`] |
//! | eq. 10–15: maximum reuse `F_RMax`, `A_Max` | [`PairGeometry`], [`max_reuse`] |
//! | eq. 16–18: partial reuse | [`partial_reuse`], [`partial_sweep`] |
//! | eq. 19–22: partial reuse with bypass | [`partial_reuse`] with `bypass = true` |
//! | Fig. 4a discontinuities `A₁…A₄` | [`footprint_levels`], [`SymbolicProfile::level_candidates`] |
//! | eq. 1 in closed form, any depth | [`SymbolicProfile`], [`StridedInterval`] |
//! | Fig. 4a staircase / reuse distances | [`SymbolicProfile::miss_curve`], [`SymbolicProfile::reuse_histogram`] |
//! | "all possible hierarchies combining points" | [`enumerate_chains`] |
//! | per-signal exploration | [`explore_signal`], [`SignalExploration`] |
//! | global hierarchy layer assignment | [`assign_layers`] |
//!
//! # Examples
//!
//! End-to-end exploration of a sliding-window access:
//!
//! ```
//! use datareuse_core::{explore_signal, ExploreOptions};
//! use datareuse_loopir::parse_program;
//! use datareuse_memmodel::{BitCount, MemoryTechnology};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "array A[23];
//!      for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
//! )?;
//! let exploration = explore_signal(&program, "A", &ExploreOptions::default())?;
//! let tech = MemoryTechnology::new();
//! let front = exploration.pareto(&ExploreOptions::default(), &tech, &BitCount);
//! assert!(front.last().expect("non-empty").power < 1.0); // hierarchy saves power
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod assign;
mod error;
mod explain;
mod explore;
mod footprint;
mod levels;
mod orders;
mod pairwise;
mod par;
mod partial;
mod report;
mod stride;
mod symbolic;
mod vectors;

pub use assign::{assign_layers, Assignment, SignalOptions};
pub use error::AnalyzeError;
pub use explain::{
    candidate_record, chain_record, emit_candidate_records, emit_chain_records, symbolic_record,
    why_lines, PairVector,
};
pub use explore::{
    assignment_menu, explore_program, explore_program_explained, explore_signal,
    explore_signal_explained, AccessGroup, ExploreOptions, SignalExploration,
};
pub use footprint::{footprint_levels, LevelCandidate};
pub use footprint::footprint_levels_merged;
pub use levels::{
    dedupe_candidates, dedupe_candidates_explained, enumerate_chains, CandidatePoint,
    CandidateSource, CandidateVerdict,
};
pub use orders::{explore_orders, OrderChoice};
pub use pairwise::{max_reuse, PairGeometry, PointKind, ReusePoint};
pub use par::{max_reasonable_threads, parallel_map, resolve_threads, sanitize_threads};
pub use partial::{gamma_interval, partial_reuse, partial_sweep};
pub use report::{describe_source, ExplorationReport, HierarchyRow, Json, JsonParseError};
pub use stride::StridedInterval;
pub use symbolic::{
    symbolic_profile, ReuseBucket, ReuseHistogram, SymbolicFallback, SymbolicLevel,
    SymbolicProfile,
};
pub use vectors::{gcd, reuse_chain_length, ReuseClass};
