//! Minimal scoped-thread work distribution for the exploration sweeps.
//!
//! The hermetic-workspace policy rules out rayon, so this module provides
//! the one primitive the sweeps need: an order-preserving parallel map
//! built on [`std::thread::scope`]. Items are handed out through a shared
//! iterator (natural load balancing for the uneven per-pair sweep costs),
//! results carry their input index and are sorted back into input order,
//! so the output is bit-identical to the sequential path regardless of
//! scheduling.

use std::sync::Mutex;

use datareuse_obs::{
    add, gauge_max, metrics_enabled, record_hist, record_worker_items, Counter, Gauge, Hist,
    TraceCtx,
};

/// Resolves the worker-thread count for a sweep.
///
/// Precedence: an explicit `requested` count, then the
/// `DATAREUSE_THREADS` environment variable, then the machine's
/// available parallelism. The result is always at least 1, and 1 selects
/// the thread-free path.
///
/// Out-of-range values are sanitized rather than silently obeyed or
/// silently dropped (see [`sanitize_threads`]): `0` falls back to auto
/// with a warning, and anything above [`max_reasonable_threads`] (4× the
/// machine's parallelism) is clamped to that cap with a warning —
/// oversubscribing a CPU-bound sweep hundreds-fold only adds scheduler
/// churn.
///
/// The environment variable is read once per process: the exploration
/// resolves a thread count for every sweep (thousands per exhaustive
/// run), and `env::var` takes a process-global lock that showed up as
/// avoidable per-sweep overhead.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    static ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    requested
        .and_then(|n| sanitize_threads(n, "ExploreOptions::threads"))
        .or_else(|| {
            *ENV.get_or_init(|| {
                std::env::var("DATAREUSE_THREADS")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .and_then(|n| sanitize_threads(n, "DATAREUSE_THREADS"))
            })
        })
        .unwrap_or_else(auto_threads)
}

/// The largest worker count a request is allowed to pin: 4× the
/// machine's available parallelism. The sweeps are CPU-bound, so counts
/// beyond this only add contention; the small headroom keeps deliberate
/// mild oversubscription (I/O-adjacent callers, tests) usable.
pub fn max_reasonable_threads() -> usize {
    4 * auto_threads()
}

/// Validates a requested worker count: `0` is rejected (auto-detection
/// takes over) and values above [`max_reasonable_threads`] are clamped
/// to it. Either correction prints a one-line warning to stderr, once
/// per process per source, so a typo'd `DATAREUSE_THREADS=0` or
/// `--threads 10000` does not silently misconfigure a long run.
pub fn sanitize_threads(requested: usize, source: &str) -> Option<usize> {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED_ZERO: AtomicBool = AtomicBool::new(false);
    static WARNED_CLAMP: AtomicBool = AtomicBool::new(false);
    if requested == 0 {
        if !WARNED_ZERO.swap(true, Ordering::Relaxed) {
            eprintln!("datareuse: warning: {source}=0 is not a usable thread count; using auto-detection");
        }
        return None;
    }
    let cap = max_reasonable_threads();
    if requested > cap {
        if !WARNED_CLAMP.swap(true, Ordering::Relaxed) {
            eprintln!(
                "datareuse: warning: {source}={requested} exceeds 4x available parallelism; clamping to {cap}"
            );
        }
        return Some(cap);
    }
    Some(requested)
}

/// `available_parallelism()` cached for the process lifetime: the call
/// walks cgroup quota files on Linux (~10µs), which would otherwise tax
/// every sweep invocation.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on up to `threads` scoped workers, preserving
/// input order in the output.
///
/// With `threads <= 1` (or fewer than two items) no thread is spawned and
/// the map runs inline — the single-thread fallback the exploration
/// options expose as `threads: Some(1)`.
///
/// # Examples
///
/// ```
/// let doubled = datareuse_core::parallel_map(4, (0..100).collect(), |x: u64| x * 2);
/// assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
/// ```
pub fn parallel_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    add(Counter::ParSweeps, 1);
    add(Counter::ParItems, n as u64);
    let observed = metrics_enabled();
    if threads <= 1 || n <= 1 {
        gauge_max(Gauge::ThreadsMax, 1);
        if !observed {
            return items.into_iter().map(f).collect();
        }
        return items
            .into_iter()
            .map(|item| {
                let started = std::time::Instant::now();
                let result = f(item);
                record_hist(Hist::ExploreChunk, started.elapsed().as_nanos() as u64);
                result
            })
            .collect();
    }
    gauge_max(Gauge::ThreadsMax, threads.min(n) as u64);
    // The sweep may run on a server worker carrying a request's trace
    // context; hand it to the scoped workers so their chunk timings stay
    // attributable to that request.
    let ctx = TraceCtx::current();
    let queue = Mutex::new(items.into_iter().enumerate());
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                let _attach = ctx.map(TraceCtx::attach);
                let mut processed = 0u64;
                loop {
                    let next = queue.lock().expect("work queue poisoned").next();
                    let Some((index, item)) = next else { break };
                    let started = observed.then(std::time::Instant::now);
                    let result = f(item);
                    if let Some(started) = started {
                        record_hist(Hist::ExploreChunk, started.elapsed().as_nanos() as u64);
                    }
                    done.lock().expect("result sink poisoned").push((index, result));
                    processed += 1;
                }
                if observed {
                    record_worker_items(processed);
                }
            });
        }
    });
    let mut tagged = done.into_inner().expect("result sink poisoned");
    tagged.sort_unstable_by_key(|(index, _)| *index);
    tagged.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        for threads in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..257).collect();
            let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
            assert_eq!(
                parallel_map(threads, items, |x| x * x + 1),
                expect,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(parallel_map(8, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(8, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(1)), 1);
        // Zero is not a usable count; falls through to auto (>= 1).
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn sanitize_threads_rejects_zero_and_clamps_absurd_requests() {
        let cap = max_reasonable_threads();
        assert!(cap >= 4, "cap is at least 4x one core");
        // Zero: rejected so auto-detection takes over.
        assert_eq!(sanitize_threads(0, "test"), None);
        // In-range values pass through untouched.
        assert_eq!(sanitize_threads(1, "test"), Some(1));
        assert_eq!(sanitize_threads(cap, "test"), Some(cap));
        // Absurd values clamp to the cap instead of oversubscribing.
        assert_eq!(sanitize_threads(cap + 1, "test"), Some(cap));
        assert_eq!(sanitize_threads(usize::MAX, "test"), Some(cap));
    }

    #[test]
    fn resolve_threads_clamps_through_the_explicit_path() {
        let cap = max_reasonable_threads();
        assert_eq!(resolve_threads(Some(usize::MAX)), cap);
    }
}
