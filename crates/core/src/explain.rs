//! Structured audit records for the exploration ("why did the tool keep
//! this copy-candidate?").
//!
//! When an [`Explain`] sink is passed to
//! [`explore_signal_explained`](crate::explore_signal_explained) or
//! [`SignalExploration::pareto_explained`](crate::SignalExploration::pareto_explained),
//! every candidate and every evaluated hierarchy gets one NDJSON record
//! carrying the paper's cost terms — the `(c', b')` reuse vector, `C_tot`,
//! `C_R`, `F_R`, `A` for candidates (eq. 12–22) and the eq. 2–3 power/area
//! terms for chains — plus a terminal verdict: `kept`, `bypass`, `pruned`,
//! or `dominated-by <id>` naming the winning record by id. The sink is
//! optional end to end: with `None` no record is built and no allocation
//! happens.
//!
//! Record kinds, one JSON object per line:
//!
//! - `symbolic-profile` — one per access group, naming which analysis
//!   path served it (`symbolic` closed forms or `fallback` enumeration,
//!   with the first violated conforming-class condition as `reason`);
//! - `candidate` — one per offered copy-candidate, `id` = offer index;
//! - `candidate-summary` — verdict tallies for the signal;
//! - `chain` — one per enumerated hierarchy with its evaluated cost;
//! - `chain-summary` — how many hierarchies survived the Pareto filter.

use datareuse_memmodel::{ChainCost, CopyChain, ParetoVerdict};
use datareuse_obs::{Explain, Json};

use crate::levels::{CandidatePoint, CandidateSource, CandidateVerdict};
use crate::pairwise::PairGeometry;
use crate::partial::gamma_interval;
use crate::report::describe_source;
use crate::symbolic::{SymbolicFallback, SymbolicProfile};
use crate::vectors::ReuseClass;

/// The reuse-vector geometry of a loop pair, captured once per pair and
/// attached to every candidate the pair produced. Footprint and simulated
/// candidates have no pair geometry (`vector: null` in the record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairVector {
    /// Elements consumed per `j` iteration (`c'`).
    pub c_prime: i64,
    /// Reuse distance in `k` iterations (`b'`).
    pub b_prime: i64,
    /// Anti-diagonal orientation (extends occupancy by `b'`).
    pub anti: bool,
    /// Outer loop trip count (`jRANGE`).
    pub j_range: i64,
    /// Inner loop trip count (`kRANGE`).
    pub k_range: i64,
    /// The γ validity interval `[min, sup)` of the partial family, when
    /// one exists.
    pub gamma: Option<(i64, i64)>,
}

impl PairVector {
    /// Extracts the vector from a pair geometry; `None` when the pair
    /// carries no reuse at all.
    pub fn from_geometry(geom: &PairGeometry) -> Option<Self> {
        match geom.class {
            ReuseClass::Vector { bp, cp, anti } => Some(Self {
                c_prime: cp,
                b_prime: bp,
                anti,
                j_range: geom.j_range,
                k_range: geom.k_range,
                gamma: gamma_interval(geom),
            }),
            ReuseClass::SameElement => Some(Self {
                c_prime: 0,
                b_prime: 0,
                anti: false,
                j_range: geom.j_range,
                k_range: geom.k_range,
                gamma: None,
            }),
            ReuseClass::NoReuse => None,
        }
    }

    fn to_json(self) -> Json {
        let mut entries = vec![
            ("c_prime".to_string(), Json::Int(self.c_prime)),
            ("b_prime".to_string(), Json::Int(self.b_prime)),
            ("anti".to_string(), Json::Bool(self.anti)),
            ("j_range".to_string(), Json::Int(self.j_range)),
            ("k_range".to_string(), Json::Int(self.k_range)),
        ];
        if let Some((min, sup)) = self.gamma {
            entries.push(("gamma_min".to_string(), Json::Int(min)));
            entries.push(("gamma_sup".to_string(), Json::Int(sup)));
        }
        Json::Obj(entries)
    }
}

fn source_json(source: CandidateSource) -> Json {
    match source {
        CandidateSource::Footprint { depth_from_inner } => Json::obj([
            ("kind", Json::str("footprint")),
            ("depth_from_inner", Json::UInt(depth_from_inner as u64)),
        ]),
        CandidateSource::MergedFootprint { depth_from_inner } => Json::obj([
            ("kind", Json::str("merged-footprint")),
            ("depth_from_inner", Json::UInt(depth_from_inner as u64)),
        ]),
        CandidateSource::PairMax => Json::obj([("kind", Json::str("pair-max"))]),
        CandidateSource::PairPartial { gamma, bypass } => Json::obj([
            ("kind", Json::str("pair-partial")),
            ("gamma", Json::Int(gamma)),
            ("bypass", Json::Bool(bypass)),
        ]),
        CandidateSource::Simulated => Json::obj([("kind", Json::str("simulated"))]),
    }
}

/// One `symbolic-profile` audit record: which analysis path served an
/// access group of `array` in nest `nest` — the symbolic closed forms
/// (with the profile's headline numbers) or the enumeration fallback
/// (with the first violated conforming-class condition as `reason`).
pub fn symbolic_record(
    array: &str,
    nest: usize,
    merged: bool,
    outcome: Result<&SymbolicProfile, SymbolicFallback>,
) -> Json {
    match outcome {
        Ok(profile) => Json::obj([
            ("record", Json::str("symbolic-profile")),
            ("array", Json::str(array)),
            ("nest", Json::UInt(nest as u64)),
            ("merged", Json::Bool(merged)),
            ("path", Json::str("symbolic")),
            ("depth", Json::UInt(profile.nest_depth() as u64)),
            ("c_tot", Json::UInt(profile.c_tot())),
            ("footprint", Json::UInt(profile.total_footprint())),
            ("levels", Json::UInt(profile.levels().len() as u64)),
        ]),
        Err(fallback) => Json::obj([
            ("record", Json::str("symbolic-profile")),
            ("array", Json::str(array)),
            ("nest", Json::UInt(nest as u64)),
            ("merged", Json::Bool(merged)),
            ("path", Json::str("fallback")),
            ("reason", Json::str(fallback.reason())),
        ]),
    }
}

/// One `candidate` audit record. `id` is the candidate's index in the
/// offered pool, which is what `dominated-by` verdicts refer to.
pub fn candidate_record(
    array: &str,
    id: usize,
    c: &CandidatePoint,
    vector: Option<PairVector>,
    verdict: CandidateVerdict,
) -> Json {
    // C_R = C_tot − C_j − bypasses: the reads the candidate absorbs.
    let c_r = c.c_tot - c.fills - c.bypasses;
    Json::obj([
        ("record", Json::str("candidate")),
        ("array", Json::str(array)),
        ("id", Json::UInt(id as u64)),
        ("source", source_json(c.source)),
        ("size", Json::UInt(c.size)),
        ("fills", Json::UInt(c.fills)),
        ("bypasses", Json::UInt(c.bypasses)),
        ("c_tot", Json::UInt(c.c_tot)),
        ("c_r", Json::UInt(c_r)),
        ("f_r", Json::Num(c.reuse_factor())),
        ("a", Json::UInt(c.size)),
        ("exact", Json::Bool(c.exact)),
        ("vector", vector.map_or(Json::Null, PairVector::to_json)),
        ("verdict", Json::str(verdict.to_string())),
    ])
}

/// One `chain` audit record with the evaluated eq. 2–3 cost terms. `id`
/// is the chain's index in the enumeration order.
pub fn chain_record(
    array: &str,
    id: usize,
    chain: &CopyChain,
    cost: &ChainCost,
    verdict: ParetoVerdict,
) -> Json {
    let levels = Json::arr(chain.levels.iter().map(|l| {
        Json::obj([
            ("words", Json::UInt(l.words)),
            ("fills", Json::UInt(l.fills)),
            ("bypasses", Json::UInt(l.bypasses)),
        ])
    }));
    let Json::Obj(cost_entries) = cost.to_json() else {
        unreachable!("ChainCost::to_json is always an object");
    };
    let mut entries = vec![
        ("record".to_string(), Json::str("chain")),
        ("array".to_string(), Json::str(array)),
        ("id".to_string(), Json::UInt(id as u64)),
        ("levels".to_string(), levels),
    ];
    entries.extend(cost_entries);
    entries.push(("verdict".to_string(), Json::str(verdict.to_string())));
    Json::Obj(entries)
}

/// Emits one record per offered candidate plus the `candidate-summary`
/// tally. `pool`, `annots` (empty allowed), and `verdicts` are parallel.
pub fn emit_candidate_records(
    sink: &Explain,
    array: &str,
    c_tot: u64,
    background_words: u64,
    pool: &[CandidatePoint],
    annots: &[Option<PairVector>],
    verdicts: &[CandidateVerdict],
) {
    let mut kept = 0u64;
    let mut bypass = 0u64;
    let mut pruned = 0u64;
    let mut dominated = 0u64;
    let mut lines = Vec::with_capacity(pool.len() + 1);
    for (id, (c, verdict)) in pool.iter().zip(verdicts).enumerate() {
        match verdict {
            CandidateVerdict::Kept => kept += 1,
            CandidateVerdict::Bypass => bypass += 1,
            CandidateVerdict::Pruned => pruned += 1,
            CandidateVerdict::DominatedBy(_) => dominated += 1,
        }
        let vector = annots.get(id).copied().flatten();
        lines.push(candidate_record(array, id, c, vector, *verdict).to_string());
    }
    lines.push(
        Json::obj([
            ("record", Json::str("candidate-summary")),
            ("array", Json::str(array)),
            ("c_tot", Json::UInt(c_tot)),
            ("background_words", Json::UInt(background_words)),
            ("offered", Json::UInt(pool.len() as u64)),
            ("kept", Json::UInt(kept)),
            ("bypass", Json::UInt(bypass)),
            ("pruned", Json::UInt(pruned)),
            ("dominated", Json::UInt(dominated)),
        ])
        .to_string(),
    );
    sink.emit_lines(lines);
}

/// Emits one record per evaluated hierarchy plus the `chain-summary`.
pub fn emit_chain_records(
    sink: &Explain,
    array: &str,
    chains: &[(CopyChain, ChainCost)],
    verdicts: &[ParetoVerdict],
) {
    let mut lines = Vec::with_capacity(chains.len() + 1);
    let mut front = 0u64;
    for (id, ((chain, cost), verdict)) in chains.iter().zip(verdicts).enumerate() {
        if *verdict == ParetoVerdict::Kept {
            front += 1;
        }
        lines.push(chain_record(array, id, chain, cost, *verdict).to_string());
    }
    lines.push(
        Json::obj([
            ("record", Json::str("chain-summary")),
            ("array", Json::str(array)),
            ("chains", Json::UInt(chains.len() as u64)),
            ("front", Json::UInt(front)),
        ])
        .to_string(),
    );
    sink.emit_lines(lines);
}

fn source_from_json(source: &Json) -> Option<CandidateSource> {
    let depth = || {
        source
            .get("depth_from_inner")
            .and_then(Json::as_u64)
            .map(|d| d as usize)
    };
    match source.get("kind").and_then(Json::as_str)? {
        "footprint" => Some(CandidateSource::Footprint {
            depth_from_inner: depth()?,
        }),
        "merged-footprint" => Some(CandidateSource::MergedFootprint {
            depth_from_inner: depth()?,
        }),
        "pair-max" => Some(CandidateSource::PairMax),
        "pair-partial" => Some(CandidateSource::PairPartial {
            gamma: source.get("gamma").and_then(Json::as_f64)? as i64,
            bypass: source.get("bypass").and_then(Json::as_bool)?,
        }),
        "simulated" => Some(CandidateSource::Simulated),
        _ => None,
    }
}

/// Renders the audit records of one signal as human "why" lines for the
/// report: one line per surviving candidate and per Pareto-front
/// hierarchy, plus the verdict tallies. Unparseable or foreign-array
/// lines are skipped.
pub fn why_lines(records: &[String], array: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in records {
        let Ok(doc) = Json::parse(line) else {
            continue;
        };
        if doc.get("array").and_then(Json::as_str) != Some(array) {
            continue;
        }
        match doc.get("record").and_then(Json::as_str) {
            Some("candidate") => {
                let verdict = doc.get("verdict").and_then(Json::as_str).unwrap_or("");
                if verdict != "kept" && verdict != "bypass" {
                    continue;
                }
                let label = doc
                    .get("source")
                    .and_then(source_from_json)
                    .map_or_else(|| "candidate".to_string(), describe_source);
                let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
                let f_r = doc.get("f_r").and_then(Json::as_f64).unwrap_or(0.0);
                out.push(format!(
                    "{verdict}: {} elements ({label}) — F_R = {f_r:.2}, \
                     fills {} + bypass {} of {} reads",
                    num("a"),
                    num("fills"),
                    num("bypasses"),
                    num("c_tot"),
                ));
            }
            Some("candidate-summary") => {
                let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
                out.push(format!(
                    "candidates: {} offered → {} kept ({} bypassing), \
                     {} dominated, {} pruned as useless",
                    num("offered"),
                    num("kept") + num("bypass"),
                    num("bypass"),
                    num("dominated"),
                    num("pruned"),
                ));
            }
            Some("chain") => {
                if doc.get("verdict").and_then(Json::as_str) != Some("kept") {
                    continue;
                }
                let sizes: Vec<String> = doc
                    .get("levels")
                    .and_then(Json::as_array)
                    .map(|ls| {
                        ls.iter()
                            .filter_map(|l| l.get("words").and_then(Json::as_u64))
                            .map(|w| w.to_string())
                            .collect()
                    })
                    .unwrap_or_default();
                out.push(format!(
                    "front: [{}] — normalized power {:.4}, {} words on-chip",
                    sizes.join(" > "),
                    doc.get("normalized_energy").and_then(Json::as_f64).unwrap_or(0.0),
                    doc.get("onchip_words").and_then(Json::as_u64).unwrap_or(0),
                ));
            }
            Some("chain-summary") => {
                let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
                out.push(format!(
                    "hierarchies: {} evaluated → {} on the Pareto front",
                    num("chains"),
                    num("front"),
                ));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_record_carries_the_paper_terms() {
        let c = CandidatePoint {
            size: 64,
            fills: 1087,
            bypasses: 0,
            c_tot: 65536,
            source: CandidateSource::PairMax,
            exact: true,
        };
        let vector = PairVector {
            c_prime: 1,
            b_prime: 1,
            anti: true,
            j_range: 1024,
            k_range: 64,
            gamma: Some((1, 63)),
        };
        let rec = candidate_record("x", 7, &c, Some(vector), CandidateVerdict::Kept);
        let doc = Json::parse(&rec.to_string()).unwrap();
        assert_eq!(doc.get("record").and_then(Json::as_str), Some("candidate"));
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("c_r").and_then(Json::as_u64), Some(65536 - 1087));
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(64));
        let f_r = doc.get("f_r").and_then(Json::as_f64).unwrap();
        assert!((f_r - 65536.0 / 1087.0).abs() < 1e-9);
        let v = doc.get("vector").unwrap();
        assert_eq!(v.get("c_prime").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("gamma_sup").and_then(Json::as_u64), Some(63));
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("kept"));
        // Round-trip: the structured source reconstructs the enum.
        assert_eq!(
            doc.get("source").and_then(source_from_json),
            Some(CandidateSource::PairMax)
        );
    }

    #[test]
    fn structured_sources_round_trip() {
        let all = [
            CandidateSource::Footprint { depth_from_inner: 1 },
            CandidateSource::MergedFootprint { depth_from_inner: 2 },
            CandidateSource::PairMax,
            CandidateSource::PairPartial { gamma: 3, bypass: false },
            CandidateSource::PairPartial { gamma: 5, bypass: true },
            CandidateSource::Simulated,
        ];
        for s in all {
            assert_eq!(source_from_json(&source_json(s)), Some(s));
        }
    }

    #[test]
    fn why_lines_pick_survivors_and_tallies() {
        let sink = Explain::new();
        let c = CandidatePoint {
            size: 9,
            fills: 10,
            bypasses: 0,
            c_tot: 128,
            source: CandidateSource::PairMax,
            exact: true,
        };
        emit_candidate_records(
            &sink,
            "A",
            128,
            23,
            &[c],
            &[],
            &[CandidateVerdict::Kept],
        );
        let lines = why_lines(&sink.records(), "A");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("kept: 9 elements (pairwise maximum reuse)"));
        assert!(lines[1].contains("1 offered → 1 kept"));
        // Foreign arrays are filtered out.
        assert!(why_lines(&sink.records(), "B").is_empty());
    }
}
