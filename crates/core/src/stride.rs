//! Strided-interval arithmetic: the closed-form value sets behind the
//! symbolic reuse engine.
//!
//! The footprint of an affine index expression over a loop box is the set
//! of values `Σ cᵢ·xᵢ + constant` with `xᵢ ∈ [0, nᵢ)`. When the
//! coefficient structure is *provably dense* (see
//! [`StridedInterval::from_terms`]) that set is exactly
//! `{min, min + g, …, max}` for `g = gcd(|cᵢ|)` — and footprints,
//! consecutive-iteration overlaps, and unions of translated copies all
//! reduce to O(1) arithmetic instead of per-point enumeration. This is
//! the core trick that lets [`crate::SymbolicProfile`] replace the
//! `value_set` enumeration of [`crate::footprint_levels`] with closed
//! forms for arbitrary-depth nests.

use crate::vectors::gcd;

/// The set `{min, min + stride, …, max}`: every value a dense affine
/// index expression takes over a loop box.
///
/// Invariants: `stride ≥ 1` and `(max - min) % stride == 0`. A singleton
/// uses `stride = 1`.
///
/// # Examples
///
/// ```
/// use datareuse_core::StridedInterval;
/// // 2j + 2k over j in 0..3, k in 0..3 → {0, 2, 4, 6, 8}
/// let s = StridedInterval::from_terms(0, &[(2, 3), (2, 3)]).unwrap();
/// assert_eq!(s.count(), 5);
/// assert_eq!(s.shifted_overlap(2), 4); // one element leaves per step
/// assert_eq!(s.shifted_overlap(3), 0); // off-stride shift shares nothing
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedInterval {
    min: i64,
    max: i64,
    stride: i64,
}

impl StridedInterval {
    /// The one-element set `{v}`.
    pub fn singleton(v: i64) -> Self {
        Self {
            min: v,
            max: v,
            stride: 1,
        }
    }

    /// Builds the value set of `constant + Σ coeffᵢ·xᵢ` with
    /// `xᵢ ∈ [0, tripsᵢ)`, or `None` when the set is not provably a
    /// single gap-free strided interval.
    ///
    /// Terms with a zero coefficient or a single iteration contribute
    /// nothing and are dropped. For the rest, with magnitudes reduced by
    /// their gcd `g` and sorted ascending `r₁ ≤ … ≤ r_m`, the sums cover
    /// every multiple of `g` in the span iff each new stride starts
    /// within one step of the prefix's reach:
    /// `r_j ≤ 1 + Σ_{i<j} rᵢ·(nᵢ − 1)`. The condition is sufficient and,
    /// for sorted magnitudes, necessary — when it fails (e.g. `2j + 4k`
    /// with too few `j` trips) the exact set has holes and the caller
    /// must enumerate instead.
    pub fn from_terms(constant: i64, terms: &[(i64, u64)]) -> Option<Self> {
        let live: Vec<(i64, i64)> = terms
            .iter()
            .filter(|&&(c, n)| c != 0 && n > 1)
            .map(|&(c, n)| (c, n as i64 - 1))
            .collect();
        if live.is_empty() {
            return Some(Self::singleton(constant));
        }
        let g = live.iter().fold(0i64, |acc, &(c, _)| gcd(acc, c));
        let mut reduced: Vec<(i64, i64)> = live.iter().map(|&(c, s)| (c.abs() / g, s)).collect();
        reduced.sort_unstable();
        let mut reach: i64 = 0;
        for &(r, span) in &reduced {
            if r > reach + 1 {
                return None;
            }
            reach = reach.checked_add(r.checked_mul(span)?)?;
        }
        let mut min = constant;
        let mut max = constant;
        for &(c, span) in &live {
            if c < 0 {
                min = min.checked_add(c.checked_mul(span)?)?;
            } else {
                max = max.checked_add(c.checked_mul(span)?)?;
            }
        }
        Some(Self {
            min,
            max,
            stride: g,
        })
    }

    /// Smallest element.
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Largest element.
    pub fn max(&self) -> i64 {
        self.max
    }

    /// Gap between consecutive elements (1 for singletons).
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Number of elements: `(max − min) / stride + 1`.
    pub fn count(&self) -> u64 {
        ((self.max - self.min) / self.stride) as u64 + 1
    }

    /// `|S ∩ (S + shift)|` — how many elements survive a carrier-loop
    /// step that translates the set by `shift`.
    pub fn shifted_overlap(&self, shift: i64) -> u64 {
        if shift == 0 {
            return self.count();
        }
        if shift % self.stride != 0 {
            return 0;
        }
        self.count()
            .saturating_sub(shift.unsigned_abs() / self.stride as u64)
    }

    /// Union with a translated copy, or `None` when the union is not
    /// itself a single gap-free strided interval (different strides, an
    /// off-stride offset, or a gap wider than one stride).
    pub fn union(&self, other: &Self) -> Option<Self> {
        if self.stride != other.stride {
            return None;
        }
        let (a, b) = if self.min <= other.min {
            (self, other)
        } else {
            (other, self)
        };
        if (b.min - a.min) % a.stride != 0 || b.min > a.max.checked_add(a.stride)? {
            return None;
        }
        Some(Self {
            min: a.min,
            max: a.max.max(b.max),
            stride: a.stride,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Brute-force reference: enumerate the exact value set.
    fn enumerate(constant: i64, terms: &[(i64, u64)]) -> BTreeSet<i64> {
        let mut values = BTreeSet::new();
        let mut stack = vec![(0usize, constant)];
        while let Some((dim, acc)) = stack.pop() {
            if dim == terms.len() {
                values.insert(acc);
                continue;
            }
            let (c, n) = terms[dim];
            for v in 0..n as i64 {
                stack.push((dim + 1, acc + c * v));
            }
        }
        values
    }

    #[test]
    fn dense_terms_match_enumeration_exactly() {
        let cases: &[(i64, &[(i64, u64)])] = &[
            (0, &[(1, 8)]),
            (5, &[(1, 8), (1, 3)]),
            (0, &[(2, 4), (2, 3)]),
            (0, &[(4, 8), (1, 8), (1, 4)]), // the ME row expression
            (-3, &[(3, 2), (1, 4)]),
            (0, &[(-1, 5), (1, 5)]),
            (7, &[(0, 9), (1, 4)]),
            (2, &[(1, 1), (1, 6)]), // single-trip term drops out
        ];
        for &(constant, terms) in cases {
            let s = StridedInterval::from_terms(constant, terms)
                .unwrap_or_else(|| panic!("{terms:?} should be dense"));
            let exact = enumerate(constant, terms);
            assert_eq!(s.count(), exact.len() as u64, "{terms:?}");
            assert_eq!(s.min(), *exact.first().unwrap(), "{terms:?}");
            assert_eq!(s.max(), *exact.last().unwrap(), "{terms:?}");
            for shift in -9..=9 {
                let want = exact.iter().filter(|&&v| exact.contains(&(v - shift))).count();
                assert_eq!(
                    s.shifted_overlap(shift),
                    want as u64,
                    "{terms:?} shift {shift}"
                );
            }
        }
    }

    #[test]
    fn sparse_structures_are_refused() {
        // The small coefficient's reach (span 1) cannot bridge the jump
        // to the next stride: {0,3} + {0,7} = {0,3,7,10} has holes.
        assert!(StridedInterval::from_terms(0, &[(3, 2), (7, 2)]).is_none());
        // {0,1} + {0,5} = {0,1,5,6}: the gap 2..=4 is unreachable.
        assert!(StridedInterval::from_terms(0, &[(1, 2), (5, 2)]).is_none());
        // Classic Frobenius gap: coefficients 2 and 3 (reduced gcd 1)
        // over small ranges miss value 1.
        assert!(StridedInterval::from_terms(0, &[(2, 3), (3, 3)]).is_none());
    }

    #[test]
    fn refused_cases_really_have_gaps() {
        for &(constant, terms) in &[(0, [(3i64, 2u64), (7, 2)]), (0, [(2, 3), (3, 3)])] {
            assert!(StridedInterval::from_terms(constant, &terms).is_none());
            let exact = enumerate(constant, &terms);
            let (lo, hi) = (*exact.first().unwrap(), *exact.last().unwrap());
            let g = exact.iter().fold(0i64, |acc, &v| gcd(acc, v - lo));
            let dense = ((hi - lo) / g.max(1) + 1) as usize;
            assert!(exact.len() < dense, "{terms:?} is actually dense");
        }
    }

    #[test]
    fn unions_of_translations_merge_or_refuse() {
        let base = StridedInterval::from_terms(0, &[(2, 4)]).unwrap(); // {0,2,4,6}
        // Adjacent translation extends the interval.
        let shifted = StridedInterval::from_terms(8, &[(2, 4)]).unwrap();
        let u = base.union(&shifted).unwrap();
        assert_eq!((u.min(), u.max(), u.count()), (0, 14, 8));
        // Overlapping translation too, in either argument order.
        let inside = StridedInterval::from_terms(4, &[(2, 4)]).unwrap();
        assert_eq!(inside.union(&base).unwrap().count(), 6);
        // Off-stride offset interleaves instead of extending.
        let odd = StridedInterval::from_terms(1, &[(2, 4)]).unwrap();
        assert!(base.union(&odd).is_none());
        // A gap wider than one stride is two intervals, not one.
        let far = StridedInterval::from_terms(10, &[(2, 4)]).unwrap();
        assert!(base.union(&far).is_none());
        // Singletons merge only when adjacent.
        let a = StridedInterval::singleton(3);
        assert_eq!(a.union(&StridedInterval::singleton(4)).unwrap().count(), 2);
        assert!(a.union(&StridedInterval::singleton(5)).is_none());
    }

    #[test]
    fn singleton_overlap_is_all_or_nothing() {
        let s = StridedInterval::singleton(42);
        assert_eq!(s.count(), 1);
        assert_eq!(s.shifted_overlap(0), 1);
        assert_eq!(s.shifted_overlap(1), 0);
        assert_eq!(s.shifted_overlap(-7), 0);
    }
}
