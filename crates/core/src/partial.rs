//! Partial data reuse for Pareto trade-offs (paper Section 6.2).
//!
//! Maximum reuse needs `A_Max = c'·(kRANGE − b')` elements. To populate the
//! Pareto curve below that size, the paper splits the `(j,k)` iteration
//! space at a parameter `γ` (`b' ≤ γ < kRANGE − b'`): iterations with
//! `k > kU − γ − b'` get complete reuse, the rest none. Two variants exist:
//!
//! - **without bypass** (eq. 16–18): not-reused data still streams through
//!   the copy-candidate (`A(γ) = c'·γ + 1`);
//! - **with bypass** (eq. 19–22): not-reused data goes straight to the
//!   consumer (`A'(γ) = c'·γ`), which "was not available when using
//!   simulation, since the actual data elements present in the
//!   copy-candidate were not known" — the key payoff of the analytical
//!   model.

use crate::pairwise::{PairGeometry, PointKind, ReusePoint};
use crate::vectors::ReuseClass;

/// Evaluates one partial-reuse point at split parameter `gamma`.
///
/// Returns `None` when the geometry admits no partial reuse:
///
/// - the pair carries no reuse vector (`rank(B) ≠ 1`), or `c' = 0`
///   (reuse confined to consecutive `k` iterations — only the max point
///   exists);
/// - `gamma` lies outside the paper's validity interval
///   `b' ≤ γ < kRANGE − b'`;
/// - the sub-nest has a `repeat_same` factor (the formulas assume each
///   `(j,k)` slice is swept once; such geometries only get the exact
///   max-reuse point).
///
/// # Examples
///
/// The §6.3 motion-estimation partial points (`m = n = 8`):
///
/// ```
/// use datareuse_core::{partial_reuse, PairGeometry, ReuseClass};
///
/// let geom = PairGeometry {
///     j_name: "i4".into(), k_name: "i6".into(),
///     j_range: 16, k_range: 8,
///     class: ReuseClass::Vector { bp: 1, cp: 1, anti: false },
///     repeat_distinct: 8, repeat_same: 1,
///     invocations: 1, group_size: 1, approximate: false,
/// };
/// let p = partial_reuse(&geom, 3, false).expect("valid gamma");
/// assert_eq!(p.size, 8 * 3 + 1);                  // A(γ) = n·γ + 1
/// let f_want = 128.0 / (128.0 - 3.0 * 15.0);      // F_R(γ) = 2mn/(2mn − γ(2m−1))
/// assert!((p.reuse_factor() - f_want).abs() < 1e-12);
/// ```
pub fn partial_reuse(geom: &PairGeometry, gamma: i64, bypass: bool) -> Option<ReusePoint> {
    let ReuseClass::Vector { bp, cp, anti } = geom.class else {
        return None;
    };
    // Anti-diagonal orientation extends occupancy by b' (see
    // [`crate::ReuseClass::Vector`]); the extra slots apply per repeated
    // slice.
    let anti_extra = if anti { bp as u64 } else { 0 };
    if cp == 0 || geom.repeat_same != 1 {
        return None;
    }
    let j_range = geom.j_range;
    let k_range = geom.k_range;
    if j_range <= cp || k_range <= bp {
        return None;
    }
    // Paper validity interval: b' ≤ γ < kRANGE − b'.
    if gamma < bp || gamma >= k_range - bp {
        return None;
    }
    let base_c_tot = j_range * k_range;
    let c_r = gamma * (j_range - cp); // eq. 17
    let inv = geom.invocations;
    let r_d = geom.repeat_distinct;
    let group = geom.group_size;
    if bypass {
        // eq. 19–22.
        let reused_c_tot = (gamma + bp) * j_range; // C'_tot
        let fills = reused_c_tot - c_r; // C'_tot − C_R(γ)
        let size = ((cp * gamma) as u64 + anti_extra) * r_d; // A'(γ) = c'·γ
        if fills <= 0 || size == 0 {
            return None;
        }
        let bypassed = (base_c_tot - reused_c_tot) as u64;
        Some(ReusePoint {
            size,
            fills: inv * r_d * fills as u64,
            bypasses: inv * r_d * group * bypassed,
            c_tot: geom.total_accesses(),
            kind: PointKind::PartialBypass { gamma },
        })
    } else {
        // eq. 16–18.
        let fills = base_c_tot - c_r; // C_tot − C_R(γ)
        let size = ((cp * gamma) as u64 + anti_extra) * r_d + 1; // A(γ) = c'·γ + 1
        Some(ReusePoint {
            size,
            fills: inv * r_d * fills as u64,
            bypasses: 0,
            c_tot: geom.total_accesses(),
            kind: PointKind::Partial { gamma },
        })
    }
}

/// The paper's γ validity interval `[b', kRANGE − b')` for a geometry, or
/// `None` when the pair carries no reuse vector. The interval may be
/// empty (start ≥ end) for narrow `k` ranges.
pub fn gamma_interval(geom: &PairGeometry) -> Option<(i64, i64)> {
    let (bp, _cp) = geom.class.vector()?;
    Some((bp, geom.k_range - bp))
}

/// Evaluates every valid `γ` for a geometry, smallest size first.
pub fn partial_sweep(geom: &PairGeometry, bypass: bool) -> Vec<ReusePoint> {
    let Some((start, end)) = gamma_interval(geom) else {
        return Vec::new();
    };
    (start..end)
        .filter_map(|gamma| partial_reuse(geom, gamma, bypass))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::max_reuse;
    use datareuse_loopir::{parse_program, read_addresses};
    use datareuse_trace::{opt_simulate, opt_simulate_bypass};

    fn me_geom() -> PairGeometry {
        PairGeometry {
            j_name: "i4".into(),
            k_name: "i6".into(),
            j_range: 16,
            k_range: 8,
            class: ReuseClass::Vector { bp: 1, cp: 1, anti: false },
            repeat_distinct: 8,
            repeat_same: 1,
            invocations: 1,
            group_size: 1,
            approximate: false,
        }
    }

    #[test]
    fn section_6_3_closed_forms() {
        let geom = me_geom();
        for gamma in 1..7i64 {
            let p = partial_reuse(&geom, gamma, false).unwrap();
            assert_eq!(p.size as i64, 8 * gamma + 1, "A(γ) = n·γ + 1");
            let f_want = 128.0 / (128.0 - gamma as f64 * 15.0);
            assert!(
                (p.reuse_factor() - f_want).abs() < 1e-12,
                "F_R({gamma}) mismatch"
            );
        }
    }

    #[test]
    fn bypass_variant_follows_eq_19_22() {
        let geom = me_geom();
        for gamma in 1..7i64 {
            let p = partial_reuse(&geom, gamma, true).unwrap();
            assert_eq!(p.size as i64, 8 * gamma, "A'(γ) = n·c'·γ");
            // Per-slice: C'_tot = (γ+1)·16, C_R = 15γ, fills = 16 + γ.
            let f_want = ((gamma + 1) * 16) as f64 / (16 + gamma) as f64;
            assert!(
                (p.reuse_factor() - f_want).abs() < 1e-12,
                "F'_R({gamma}) mismatch"
            );
            // Bypass strictly improves the reuse factor (paper Fig. 10).
            let plain = partial_reuse(&geom, gamma, false).unwrap();
            assert!(p.reuse_factor() > plain.reuse_factor());
            assert!(p.size < plain.size);
        }
    }

    #[test]
    fn gamma_validity_interval_is_enforced() {
        let geom = me_geom();
        assert!(partial_reuse(&geom, 0, false).is_none()); // γ < b'
        assert!(partial_reuse(&geom, 7, false).is_none()); // γ ≥ kRANGE − b'
        assert!(partial_reuse(&geom, -1, false).is_none());
        assert_eq!(partial_sweep(&geom, false).len(), 6);
        assert_eq!(partial_sweep(&geom, true).len(), 6);
    }

    #[test]
    fn reuse_factor_and_size_increase_with_gamma() {
        let geom = me_geom();
        let pts = partial_sweep(&geom, false);
        for w in pts.windows(2) {
            assert!(w[1].size > w[0].size);
            assert!(w[1].reuse_factor() > w[0].reuse_factor());
        }
    }

    #[test]
    fn partial_approaches_max_reuse() {
        let geom = me_geom();
        let max = max_reuse(&geom).unwrap();
        let last = partial_sweep(&geom, false).last().copied().unwrap();
        assert!(last.size < max.size);
        assert!(last.reuse_factor() < max.reuse_factor());
    }

    #[test]
    fn no_partial_points_without_a_vector() {
        let mut geom = me_geom();
        geom.class = ReuseClass::NoReuse;
        assert!(partial_sweep(&geom, false).is_empty());
        geom.class = ReuseClass::SameElement;
        assert!(partial_sweep(&geom, false).is_empty());
        geom.class = ReuseClass::Vector { bp: 1, cp: 0, anti: false };
        assert!(partial_reuse(&geom, 1, false).is_none());
    }

    #[test]
    fn repeat_same_disables_partial_points() {
        let mut geom = me_geom();
        geom.repeat_same = 4;
        assert!(partial_sweep(&geom, false).is_empty());
    }

    #[test]
    fn simulation_never_beats_analytical_by_much_at_same_size() {
        // The analytical strategy is feasible, so OPT at A(γ) fills at most
        // as much; the paper reports the analytical points lie "nearly on
        // the simulated curve".
        let src = "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }";
        let p = parse_program(src).unwrap();
        let nest = &p.nests()[0];
        let geom = PairGeometry::from_access(nest, 0, 0, 1).unwrap();
        let trace = read_addresses(&p, "A");
        for gamma in 1..7i64 {
            let pt = partial_reuse(&geom, gamma, false).unwrap();
            let sim = opt_simulate(&trace, pt.size);
            assert!(sim.fills <= pt.fills, "OPT is the lower bound");
            let ratio = pt.fills as f64 / sim.fills as f64;
            // Near A_Max the +1-sized partial scheme is beaten by full OPT
            // reuse; everywhere it stays within a small factor.
            assert!(ratio < 1.7, "γ={gamma}: analytical fills {ratio}x OPT");
        }
    }

    #[test]
    fn bypass_points_against_bypass_simulation() {
        let src = "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }";
        let p = parse_program(src).unwrap();
        let nest = &p.nests()[0];
        let geom = PairGeometry::from_access(nest, 0, 0, 1).unwrap();
        let trace = read_addresses(&p, "A");
        for gamma in 1..7i64 {
            let pt = partial_reuse(&geom, gamma, true).unwrap();
            let sim = opt_simulate_bypass(&trace, pt.size);
            // Compare upstream reads (fills + bypasses): OPT maximizes
            // hits, so its upstream traffic lower-bounds any feasible
            // scheme of the same size — including the analytical one.
            assert!(
                sim.misses() <= pt.fills + pt.bypasses,
                "γ={gamma}: OPT-bypass upstream {} > analytical {}",
                sim.misses(),
                pt.fills + pt.bypasses
            );
        }
    }

    #[test]
    fn traffic_accounting_is_conserved() {
        let geom = me_geom();
        for gamma in 1..7i64 {
            let p = partial_reuse(&geom, gamma, true).unwrap();
            // Copied + bypassed traffic covers all accesses.
            assert!(p.fills + p.bypasses <= p.c_tot);
            assert_eq!(p.c_tot, geom.total_accesses());
        }
    }
}
