//! Pairwise analytical reuse model (paper Sections 5, 6.1).
//!
//! The paper analyzes "the data reuse in the two inner loops (j,k) … for
//! one iteration of the higher loop levels at a time". [`PairGeometry`]
//! extracts everything that model needs from a [`LoopNest`] access:
//!
//! - the loop pair ranges `jRANGE`, `kRANGE` (eq. 10–11);
//! - the reuse classification / normalized `(b', c')` (eq. 5–9);
//! - the *repeat factors* of the Section 6.3 adaptation: loops inside the
//!   analyzed sub-nest other than the pair multiply either the
//!   copy-candidate size (when their iterator addresses distinct data, like
//!   loop (5) in the motion-estimation kernel) or the reuse factor (when
//!   the index is independent of them);
//! - the number of invocations of the sub-nest by the outer loops.
//!
//! [`max_reuse`] then evaluates the closed forms of Section 6.1
//! (eq. 12–15), producing a [`ReusePoint`] whose fill count is *provably
//! minimal* (one fill per first access), which the tests confirm by
//! checking it coincides with Belady-optimal simulation at the same size.

use datareuse_loopir::LoopNest;

use crate::error::AnalyzeError;
use crate::vectors::ReuseClass;

/// Geometry of one access analyzed over an inner loop pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairGeometry {
    /// Iterator name of the outer loop of the pair (the paper's `j`).
    pub j_name: String,
    /// Iterator name of the inner loop of the pair (the paper's `k`).
    pub k_name: String,
    /// `jRANGE = jU − jL + 1` (eq. 10).
    pub j_range: i64,
    /// `kRANGE = kU − kL + 1` (eq. 11).
    pub k_range: i64,
    /// Reuse classification of the `B` matrix over the pair (eq. 9).
    pub class: ReuseClass,
    /// Product of the ranges of sub-nest loops (other than the pair) whose
    /// iterators appear in the index: each addresses distinct data, so it
    /// multiplies the copy-candidate size and all traffic counts (the
    /// Section 6.3 factor `n`).
    pub repeat_distinct: u64,
    /// Product of the ranges of sub-nest loops whose iterators do *not*
    /// appear in the index: the same data is re-swept, multiplying the
    /// reuse factor.
    pub repeat_same: u64,
    /// Number of times the outer loops execute the analyzed sub-nest.
    pub invocations: u64,
    /// Number of accesses sharing this exact index expression (merged
    /// copy-candidates, as done for the SUSAN test-vehicle).
    pub group_size: u64,
    /// True when a guard makes the counts approximate (the paper's SUSAN
    /// conditional).
    pub approximate: bool,
}

impl PairGeometry {
    /// Extracts the geometry for `nest.accesses()[access]` over the loop
    /// pair at depths `(outer, inner)`.
    ///
    /// The nest is step-normalized first, so loops with steps > 1 are
    /// handled exactly as the paper prescribes ("by (temporarily)
    /// transforming the loop nest to a loop nest with a step size equal
    /// to 1").
    ///
    /// # Errors
    ///
    /// Returns an [`AnalyzeError`] when the access or loop depths do not
    /// exist, or when `outer >= inner`.
    ///
    /// # Examples
    ///
    /// Reproducing the Section 6.3 analysis of the motion-estimation inner
    /// nest (pair `(i4, i6)` with intermediate loop `i5`):
    ///
    /// ```
    /// use datareuse_core::{PairGeometry, ReuseClass};
    /// use datareuse_loopir::parse_program;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = parse_program(
    ///     "array Old[159][191] bits 8;
    ///      for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
    ///        read Old[i5][i4 + i6];
    ///      } } }",
    /// )?;
    /// let g = PairGeometry::from_access(&p.nests()[0], 0, 0, 2)?;
    /// assert_eq!(g.class, ReuseClass::Vector { bp: 1, cp: 1, anti: false });
    /// assert_eq!((g.j_range, g.k_range), (16, 8));
    /// assert_eq!(g.repeat_distinct, 8); // loop i5 addresses distinct rows
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_access(
        nest: &LoopNest,
        access: usize,
        outer: usize,
        inner: usize,
    ) -> Result<Self, AnalyzeError> {
        let raw_access = nest
            .accesses()
            .get(access)
            .ok_or(AnalyzeError::NoSuchAccess { index: access })?;
        let signature = raw_access.indices().to_vec();
        let group_size = nest
            .accesses()
            .iter()
            .filter(|a| a.indices() == signature && a.kind() == raw_access.kind())
            .count() as u64;

        let nest = nest.normalized();
        if outer >= inner {
            return Err(AnalyzeError::BadLoopPair { outer, inner });
        }
        if inner >= nest.depth() {
            return Err(AnalyzeError::NoSuchLoop { depth: inner });
        }
        let acc = &nest.accesses()[access];
        let loops = nest.loops();
        let j_name = loops[outer].name().to_string();
        let k_name = loops[inner].name().to_string();
        let rows: Vec<(i64, i64)> = acc
            .indices()
            .iter()
            .map(|e| (e.coeff(&j_name), e.coeff(&k_name)))
            .collect();
        let class = ReuseClass::classify(&rows);

        let mut repeat_distinct = 1u64;
        let mut repeat_same = 1u64;
        for (d, l) in loops.iter().enumerate() {
            if d <= outer || d == inner {
                continue;
            }
            let appears = acc.indices().iter().any(|e| e.coeff(l.name()) != 0);
            if appears {
                repeat_distinct *= l.trip_count();
            } else {
                repeat_same *= l.trip_count();
            }
        }
        let invocations = loops[..outer].iter().map(|l| l.trip_count()).product();
        Ok(Self {
            j_name,
            k_name,
            j_range: loops[outer].range(),
            k_range: loops[inner].range(),
            class,
            repeat_distinct,
            repeat_same,
            invocations,
            group_size,
            approximate: !acc.guards().is_empty(),
        })
    }

    /// Total reads this access group issues over the whole nest execution
    /// (`C_tot` summed over all invocations, repeats and merged accesses).
    pub fn total_accesses(&self) -> u64 {
        self.invocations
            * self.repeat_distinct
            * self.repeat_same
            * self.group_size
            * (self.j_range as u64)
            * (self.k_range as u64)
    }
}

/// How a [`ReusePoint`] was derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// Maximum reuse in the pair iteration space (Section 6.1).
    Max,
    /// Partial reuse without bypass at the given `γ` (eq. 16–18).
    Partial {
        /// The `γ` split parameter.
        gamma: i64,
    },
    /// Partial reuse with bypass at the given `γ` (eq. 19–22).
    PartialBypass {
        /// The `γ` split parameter.
        gamma: i64,
    },
}

/// One analytically derived copy-candidate point: a size plus the exact
/// traffic it induces over the whole nest execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReusePoint {
    /// Copy-candidate size `A` in elements (repeat factor included).
    pub size: u64,
    /// Total element writes into the copy-candidate (`C_j` over the whole
    /// execution).
    pub fills: u64,
    /// Total accesses bypassing the copy-candidate (0 without bypass).
    pub bypasses: u64,
    /// Total reads issued by the access group (`C_tot`).
    pub c_tot: u64,
    /// Derivation of the point.
    pub kind: PointKind,
}

impl ReusePoint {
    /// The paper's reuse factor for the point: `F_R = C_tot / C_j`
    /// (eq. 1/16) without bypass, `F'_R = C'_tot / C'_j` (eq. 19) with —
    /// the copied traffic over the fills.
    pub fn reuse_factor(&self) -> f64 {
        let copied = self.c_tot - self.bypasses;
        if self.fills == 0 {
            copied as f64
        } else {
            copied as f64 / self.fills as f64
        }
    }
}

/// Evaluates the Section 6.1 maximum-reuse closed forms for a geometry.
///
/// Returns `None` when the pair carries no exploitable reuse: `rank(B)=2`,
/// or the eq. 12–15 preconditions `jRANGE > c'`, `kRANGE > b'` fail.
///
/// The special cases follow the paper's footnotes: for `b=c=0`,
/// `F_RMax = C_tot` and `A_Max = 1`.
///
/// # Examples
///
/// The §6.3 motion-estimation numbers, `m = n = 8`:
///
/// ```
/// use datareuse_core::{max_reuse, PairGeometry, ReuseClass};
///
/// let geom = PairGeometry {
///     j_name: "i4".into(),
///     k_name: "i6".into(),
///     j_range: 16,          // 2m
///     k_range: 8,           // n
///     class: ReuseClass::Vector { bp: 1, cp: 1, anti: false },
///     repeat_distinct: 8,   // loop (5) range n
///     repeat_same: 1,
///     invocations: 1,
///     group_size: 1,
///     approximate: false,
/// };
/// let p = max_reuse(&geom).expect("reuse exists");
/// assert_eq!(p.size, 56);                             // A_Max = n(n-1)
/// assert!((p.reuse_factor() - 128.0 / 23.0).abs() < 1e-12); // F_RMax
/// ```
pub fn max_reuse(geom: &PairGeometry) -> Option<ReusePoint> {
    let j_range = geom.j_range;
    let k_range = geom.k_range;
    let base_c_tot = (j_range * k_range) as u64;
    let (base_fills, base_size) = match geom.class {
        ReuseClass::NoReuse => return None,
        ReuseClass::SameElement => (1u64, 1u64),
        ReuseClass::Vector { bp, cp, anti } => {
            if j_range <= cp || k_range <= bp {
                return None; // no reuse possible (Section 6 precondition)
            }
            let c_r = (j_range - cp) * (k_range - bp); // eq. 14
            let fills = base_c_tot - c_r as u64; // first accesses
            let size = if geom.repeat_same > 1 {
                // Re-swept slices keep the whole current window (every
                // element is reused by the next sweep), so the candidate
                // must span the union of the last c' j-windows.
                window_union_size(bp, cp, k_range)
            } else if anti {
                // Anti-diagonal orientation: reuse lands b' iterations
                // later in the next k sweep, extending occupancy.
                (cp * (k_range - bp) + bp).max(1) as u64
            } else {
                (cp * (k_range - bp)).max(1) as u64 // eq. 15
            };
            (fills, size)
        }
    };
    Some(ReusePoint {
        size: geom.repeat_distinct * base_size,
        fills: geom.invocations * geom.repeat_distinct * base_fills,
        bypasses: 0,
        c_tot: geom.total_accesses(),
        kind: PointKind::Max,
    })
}

/// Number of distinct elements in the union of `c'` consecutive
/// `j`-windows: `|{b'·a + c'·k : a ∈ [0, c'), k ∈ [0, kRANGE)}|`.
/// Falls back to the `c'·kRANGE` upper bound beyond an enumeration budget.
fn window_union_size(bp: i64, cp: i64, k_range: i64) -> u64 {
    let bound = (cp * k_range) as u64;
    if bound > 1 << 20 {
        return bound.max(1);
    }
    let mut values = std::collections::BTreeSet::new();
    for a in 0..cp.max(1) {
        for k in 0..k_range {
            values.insert(bp * a + cp * k);
        }
    }
    values.len().max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::{parse_program, read_addresses, Program};
    use datareuse_trace::opt_simulate;

    fn single_nest(src: &str) -> Program {
        parse_program(src).expect("valid program")
    }

    /// Analytical max-reuse fills must equal Belady fills at A_Max: the
    /// analytical point loads every element exactly once (provably minimal)
    /// and claims A_Max suffices.
    fn assert_matches_opt(src: &str, outer: usize, inner: usize) {
        let p = single_nest(src);
        let nest = &p.nests()[0];
        let geom = PairGeometry::from_access(nest, 0, outer, inner).unwrap();
        let point = max_reuse(&geom).expect("carries reuse");
        let trace = read_addresses(&p, p.arrays()[0].name());
        assert_eq!(point.c_tot, trace.len() as u64, "C_tot mismatch");
        let sim = opt_simulate(&trace, point.size);
        assert_eq!(
            point.fills, sim.fills,
            "analytical fills != OPT fills at size {} (geom {geom:?})",
            point.size
        );
    }

    #[test]
    fn canonical_window_matches_opt() {
        // b=c=1: the classic sliding diagonal.
        assert_matches_opt(
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn coprime_coefficients_match_opt() {
        assert_matches_opt(
            "array A[60]; for j in 0..12 { for k in 0..10 { read A[2*j + 3*k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn gcd_reduction_matches_opt() {
        // b=2, c=4 → b'=1, c'=2.
        assert_matches_opt(
            "array A[70]; for j in 0..12 { for k in 0..10 { read A[2*j + 4*k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn negative_coefficient_matches_opt() {
        // y = 12 + k − j: normalized to (1, 1).
        assert_matches_opt(
            "array A[30]; for j in 0..12 { for k in 0..10 { read A[12 + k - j]; } }",
            0,
            1,
        );
    }

    #[test]
    fn b_zero_outer_reuse_matches_opt() {
        // Index depends only on k: whole row must be buffered (A = kRANGE).
        assert_matches_opt(
            "array A[10]; for j in 0..6 { for k in 0..10 { read A[k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn c_zero_inner_reuse_matches_opt() {
        // Index depends only on j: one element suffices (A = 1).
        let p = single_nest("array A[6]; for j in 0..6 { for k in 0..10 { read A[j]; } }");
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        let point = max_reuse(&geom).unwrap();
        assert_eq!(point.size, 1);
        assert!((point.reuse_factor() - 10.0).abs() < 1e-12);
        assert_matches_opt(
            "array A[6]; for j in 0..6 { for k in 0..10 { read A[j]; } }",
            0,
            1,
        );
    }

    #[test]
    fn same_element_case_matches_footnotes() {
        let p = single_nest("array A[4]; for j in 0..5 { for k in 0..6 { read A[2]; } }");
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert_eq!(geom.class, ReuseClass::SameElement);
        let point = max_reuse(&geom).unwrap();
        assert_eq!(point.size, 1); // footnote 3
        assert_eq!(point.fills, 1);
        assert_eq!(point.reuse_factor(), 30.0); // footnote 2: F = C_tot
    }

    #[test]
    fn rank_two_has_no_reuse() {
        let p = single_nest("array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }");
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert_eq!(geom.class, ReuseClass::NoReuse);
        assert!(max_reuse(&geom).is_none());
    }

    #[test]
    fn reuse_precondition_rejects_small_ranges() {
        // jRANGE = 3 <= c' = 4: reuse never completes a dependency step.
        let p = single_nest("array A[40]; for j in 0..3 { for k in 0..8 { read A[j + 4*k]; } }");
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert!(max_reuse(&geom).is_none());
    }

    #[test]
    fn bp_at_k_range_boundary_is_rejected_exactly() {
        // b' = 3 with kRANGE = 3: eq. 14's (kRANGE − b') window is empty —
        // no dependency step ever completes, so there is no reuse point.
        let p = single_nest("array A[24]; for j in 0..8 { for k in 0..3 { read A[3*j + k]; } }");
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert_eq!(geom.class, ReuseClass::Vector { bp: 3, cp: 1, anti: false });
        assert!(max_reuse(&geom).is_none());
        // One more k iteration (kRANGE = 4 > b') and the closed forms
        // engage — and still agree with Belady.
        assert_matches_opt(
            "array A[25]; for j in 0..8 { for k in 0..4 { read A[3*j + k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn c_prime_zero_with_negative_b_matches_opt() {
        // Index −j + 6 over the pair: classify flips to b' = 1, c' = 0, so
        // a single-element buffer carries all the k-loop reuse.
        let src = "array A[7]; for j in 0..7 { for k in 0..5 { read A[6 - j]; } }";
        let p = single_nest(src);
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert_eq!(geom.class, ReuseClass::Vector { bp: 1, cp: 0, anti: false });
        let point = max_reuse(&geom).unwrap();
        assert_eq!(point.size, 1);
        assert_eq!(point.fills, 7); // one fill per distinct element
        assert_matches_opt(src, 0, 1);
    }

    #[test]
    fn reuse_factor_handles_zero_fills_without_dividing() {
        // A bypass-everything point has C'_j = 0; eq. 19 would divide by
        // zero. The guard returns the copied count (here 0) instead.
        let all_bypassed = ReusePoint {
            size: 0,
            fills: 0,
            bypasses: 120,
            c_tot: 120,
            kind: PointKind::PartialBypass { gamma: 0 },
        };
        assert_eq!(all_bypassed.reuse_factor(), 0.0);
        // Degenerate zero-fill with copies: finite, equals C_tot (the
        // footnote-2 convention for the same-element case).
        let zero_fills = ReusePoint {
            size: 1,
            fills: 0,
            bypasses: 0,
            c_tot: 64,
            kind: PointKind::Max,
        };
        assert_eq!(zero_fills.reuse_factor(), 64.0);
    }

    #[test]
    fn max_reuse_never_produces_zero_fills() {
        // C_R = (jRANGE − c')(kRANGE − b') < jRANGE·kRANGE whenever the
        // class is Vector (b', c' not both zero), so C_tot == C_R — the
        // fills = 0 division hazard — cannot arise from eq. 12–15.
        for (b, c) in [(0, 1), (1, 0), (1, 1), (2, 3), (3, 1), (-1, 1), (2, -4)] {
            for (jr, kr) in [(2i64, 2i64), (3, 8), (16, 8), (9, 5)] {
                let geom = PairGeometry {
                    j_name: "j".into(),
                    k_name: "k".into(),
                    j_range: jr,
                    k_range: kr,
                    class: ReuseClass::classify(&[(b, c)]),
                    repeat_distinct: 1,
                    repeat_same: 1,
                    invocations: 1,
                    group_size: 1,
                    approximate: false,
                };
                if let Some(point) = max_reuse(&geom) {
                    assert!(point.fills > 0, "zero fills for b={b} c={c} jr={jr} kr={kr}");
                    assert!(point.size >= 1);
                    assert!(point.reuse_factor().is_finite());
                }
            }
        }
    }

    #[test]
    fn partial_points_keep_finite_reuse_factors() {
        let p = single_nest("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }");
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        for bypass in [false, true] {
            for point in crate::partial::partial_sweep(&geom, bypass) {
                assert!(point.reuse_factor().is_finite());
                assert!(point.bypasses <= point.c_tot);
            }
        }
    }

    #[test]
    fn motion_estimation_inner_nest_section_6_3() {
        // Old[..+i5][..+i4+i6] over (i4, i5, i6); m = n = 8.
        let p = single_nest(
            "array Old[8][23];
             for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[i5][i4 + i6];
             } } }",
        );
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 2).unwrap();
        assert_eq!(geom.class, ReuseClass::Vector { bp: 1, cp: 1, anti: false });
        assert_eq!(geom.repeat_distinct, 8);
        assert_eq!(geom.repeat_same, 1);
        let point = max_reuse(&geom).unwrap();
        // Paper §6.3: A_Max = n·(n−1) = 56, F_RMax = 2mn/(2mn−(2m−1)(n−1)).
        assert_eq!(point.size, 56);
        let f_want = (2.0 * 8.0 * 8.0) / (2.0 * 8.0 * 8.0 - 15.0 * 7.0);
        assert!((point.reuse_factor() - f_want).abs() < 1e-12);
        // And the simulation agrees at that size.
        let trace = read_addresses(&p, "Old");
        let sim = opt_simulate(&trace, 56);
        assert_eq!(sim.fills, point.fills);
    }

    #[test]
    fn repeat_same_multiplies_reuse_factor() {
        // Middle loop m does not appear in the index: the (j,k) data is
        // re-swept trip(m) times.
        let p = single_nest(
            "array A[23]; for j in 0..16 { for m in 0..4 { for k in 0..8 {
               read A[j + k];
             } } }",
        );
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 2).unwrap();
        assert_eq!(geom.repeat_same, 4);
        assert_eq!(geom.repeat_distinct, 1);
        let point = max_reuse(&geom).unwrap();
        let trace = read_addresses(&p, "A");
        let sim = opt_simulate(&trace, point.size);
        assert_eq!(point.c_tot, trace.len() as u64);
        assert_eq!(point.fills, sim.fills);
    }

    #[test]
    fn invocations_scale_fills() {
        let p = single_nest(
            "array A[5][23]; for h in 0..5 { for j in 0..16 { for k in 0..8 {
               read A[h][j + k];
             } } }",
        );
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 1, 2).unwrap();
        assert_eq!(geom.invocations, 5);
        let point = max_reuse(&geom).unwrap();
        let trace = read_addresses(&p, "A");
        let sim = opt_simulate(&trace, point.size);
        assert_eq!(point.fills, sim.fills);
    }

    #[test]
    fn stepped_loops_are_normalized_first() {
        // for j step 2: y = j + k ≡ 2j' + k after normalization.
        let p = single_nest(
            "array A[40]; for j in 0..24 step 2 { for k in 0..8 { read A[j + k]; } }",
        );
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert_eq!(geom.class, ReuseClass::Vector { bp: 2, cp: 1, anti: false });
        assert_matches_opt(
            "array A[40]; for j in 0..24 step 2 { for k in 0..8 { read A[j + k]; } }",
            0,
            1,
        );
    }

    #[test]
    fn merged_group_counts_every_access() {
        let p = single_nest(
            "array A[23]; for j in 0..16 { for k in 0..8 {
               read A[j + k];
               read A[j + k];
             } }",
        );
        let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).unwrap();
        assert_eq!(geom.group_size, 2);
        let point = max_reuse(&geom).unwrap();
        let trace = read_addresses(&p, "A");
        assert_eq!(point.c_tot, trace.len() as u64);
        let sim = opt_simulate(&trace, point.size);
        assert_eq!(point.fills, sim.fills);
    }

    #[test]
    fn bad_pair_arguments_error() {
        let p = single_nest("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }");
        let nest = &p.nests()[0];
        assert!(matches!(
            PairGeometry::from_access(nest, 5, 0, 1),
            Err(AnalyzeError::NoSuchAccess { .. })
        ));
        assert!(matches!(
            PairGeometry::from_access(nest, 0, 1, 1),
            Err(AnalyzeError::BadLoopPair { .. })
        ));
        assert!(matches!(
            PairGeometry::from_access(nest, 0, 0, 7),
            Err(AnalyzeError::NoSuchLoop { .. })
        ));
    }
}
