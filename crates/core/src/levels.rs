//! Candidate points and copy-candidate chain enumeration.
//!
//! Section 4 of the paper builds its Pareto curve "by considering all
//! possible hierarchies combining points on the data reuse factor curve".
//! [`CandidatePoint`] is one such point (from the footprint analysis, the
//! pairwise closed forms, or raw simulation), and [`enumerate_chains`]
//! produces every well-formed multi-level hierarchy over a candidate set,
//! pruning useless levels as Section 3 prescribes.

use datareuse_memmodel::{ChainLevel, CopyChain};
use datareuse_obs::{add, Counter};

use crate::footprint::LevelCandidate;
use crate::pairwise::{PointKind, ReusePoint};

/// Where a candidate point came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateSource {
    /// Footprint analysis at the given loop depth.
    Footprint {
        /// Loops fixed above the footprint, counted from the innermost
        /// loop so that structurally identical nests align.
        depth_from_inner: usize,
    },
    /// Shared footprint candidate serving several translated accesses
    /// (the paper's merged copy-candidates, Section 6.4).
    MergedFootprint {
        /// Loops fixed above the footprint, counted from the innermost.
        depth_from_inner: usize,
    },
    /// Pairwise maximum reuse (Section 6.1).
    PairMax,
    /// Pairwise partial reuse (Section 6.2).
    PairPartial {
        /// The γ split parameter.
        gamma: i64,
        /// Whether not-reused data bypasses the candidate.
        bypass: bool,
    },
    /// Belady simulation at a chosen size.
    Simulated,
}

/// One copy-candidate option for a signal: a size plus the traffic it
/// induces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidatePoint {
    /// Capacity in elements.
    pub size: u64,
    /// Writes into the candidate over the whole execution (`C_j`).
    pub fills: u64,
    /// Accesses bypassing the candidate.
    pub bypasses: u64,
    /// Total reads of the signal (`C_tot`).
    pub c_tot: u64,
    /// Provenance.
    pub source: CandidateSource,
    /// False when the counts are approximate.
    pub exact: bool,
}

impl CandidatePoint {
    /// The reuse factor of the point (`F_R`, or `F'_R` for bypass points).
    pub fn reuse_factor(&self) -> f64 {
        let copied = self.c_tot - self.bypasses;
        if self.fills == 0 {
            copied as f64
        } else {
            copied as f64 / self.fills as f64
        }
    }

    /// Useful per the Section 3 pruning rule: strictly fewer upstream
    /// reads than `C_tot`.
    pub fn is_useful(&self) -> bool {
        self.fills + self.bypasses < self.c_tot
    }

    /// Builds a point from a footprint level candidate.
    pub fn from_footprint(level: &LevelCandidate, nest_depth: usize) -> Self {
        Self {
            size: level.size,
            fills: level.fills,
            bypasses: 0,
            c_tot: level.c_tot,
            source: CandidateSource::Footprint {
                depth_from_inner: nest_depth - level.depth,
            },
            exact: level.exact,
        }
    }

    /// Builds a point from a merged (shared) footprint level candidate.
    pub fn from_merged_footprint(level: &LevelCandidate, nest_depth: usize) -> Self {
        Self {
            size: level.size,
            fills: level.fills,
            bypasses: 0,
            c_tot: level.c_tot,
            source: CandidateSource::MergedFootprint {
                depth_from_inner: nest_depth - level.depth,
            },
            exact: level.exact,
        }
    }

    /// Builds a point from a pairwise analytical reuse point.
    pub fn from_reuse_point(point: &ReusePoint, exact: bool) -> Self {
        let source = match point.kind {
            PointKind::Max => CandidateSource::PairMax,
            PointKind::Partial { gamma } => CandidateSource::PairPartial {
                gamma,
                bypass: false,
            },
            PointKind::PartialBypass { gamma } => CandidateSource::PairPartial {
                gamma,
                bypass: true,
            },
        };
        Self {
            size: point.size,
            fills: point.fills,
            bypasses: point.bypasses,
            c_tot: point.c_tot,
            source,
            exact,
        }
    }
}

/// The fate of one offered candidate in [`dedupe_candidates_explained`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateVerdict {
    /// Survived deduplication and the dominance filter.
    Kept,
    /// Survived, and routes part of the traffic around the buffer
    /// (Section 6.2 bypass variants).
    Bypass,
    /// Dropped by the Section 3 usefulness rule: upstream traffic not
    /// strictly below `C_tot`.
    Pruned,
    /// Dropped because the candidate at the given *input index* offers
    /// the same size for less traffic, or strictly dominates it.
    DominatedBy(usize),
}

impl std::fmt::Display for CandidateVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CandidateVerdict::Kept => f.write_str("kept"),
            CandidateVerdict::Bypass => f.write_str("bypass"),
            CandidateVerdict::Pruned => f.write_str("pruned"),
            CandidateVerdict::DominatedBy(i) => write!(f, "dominated-by {i}"),
        }
    }
}

/// Deduplicates candidates by size (keeping the least upstream traffic),
/// drops useless points, and removes *dominated* candidates — those with
/// both a larger size and no less upstream traffic than another candidate
/// are never preferable at any chain position. Returned sorted by
/// decreasing size.
pub fn dedupe_candidates(candidates: Vec<CandidatePoint>) -> Vec<CandidatePoint> {
    dedupe_candidates_explained(&candidates).0
}

/// [`dedupe_candidates`] with a per-input verdict: the returned vector is
/// parallel to `candidates` and records why each offered point survived
/// or fell. The kept list is byte-identical to what `dedupe_candidates`
/// returns for the same input.
pub fn dedupe_candidates_explained(
    candidates: &[CandidatePoint],
) -> (Vec<CandidatePoint>, Vec<CandidateVerdict>) {
    let offered = candidates.len();
    let mut verdicts = vec![CandidateVerdict::Pruned; offered];
    // Indices of the useful candidates, in ascending size order with ties
    // resolved toward less upstream traffic (the stable sort preserves
    // offer order among exact duplicates, matching `dedup_by_key`).
    let upstream = |i: usize| candidates[i].fills + candidates[i].bypasses;
    let mut order: Vec<usize> = (0..offered)
        .filter(|&i| candidates[i].is_useful())
        .collect();
    order.sort_by(|&a, &b| {
        candidates[a]
            .size
            .cmp(&candidates[b].size)
            .then(upstream(a).cmp(&upstream(b)))
    });
    // Per size class the first entry wins; later ones lose to it.
    let mut survivors: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        match survivors.last() {
            Some(&w) if candidates[w].size == candidates[i].size => {
                verdicts[i] = CandidateVerdict::DominatedBy(w);
            }
            _ => survivors.push(i),
        }
    }
    // Pareto filter on (size, upstream): growing the buffer must strictly
    // reduce traffic, else the last strictly-better point dominates.
    let mut kept: Vec<usize> = Vec::with_capacity(survivors.len());
    let mut best_upstream = u64::MAX;
    for i in survivors {
        if upstream(i) < best_upstream {
            best_upstream = upstream(i);
            verdicts[i] = if candidates[i].bypasses > 0 {
                CandidateVerdict::Bypass
            } else {
                CandidateVerdict::Kept
            };
            kept.push(i);
        } else {
            // `kept` is non-empty here: the first useful point always
            // beats the u64::MAX sentinel.
            verdicts[i] = CandidateVerdict::DominatedBy(*kept.last().unwrap());
        }
    }
    kept.reverse();
    add(Counter::ExploreCandidatesPruned, (offered - kept.len()) as u64);
    (kept.into_iter().map(|i| candidates[i]).collect(), verdicts)
}

/// Enumerates every copy-candidate chain of at most `max_depth` sub-levels
/// over the candidate set, including the baseline (no hierarchy).
///
/// A chain is well-formed when sizes strictly decrease inward, fills do
/// not decrease inward, and only the innermost level bypasses — exactly
/// the [`CopyChain::validate`] invariants. Candidates with bypass traffic
/// are therefore only placed innermost.
///
/// # Examples
///
/// ```
/// use datareuse_core::{enumerate_chains, CandidatePoint, CandidateSource};
///
/// let pts = vec![
///     CandidatePoint {
///         size: 64, fills: 100, bypasses: 0, c_tot: 1000,
///         source: CandidateSource::Simulated, exact: true,
///     },
///     CandidatePoint {
///         size: 8, fills: 400, bypasses: 0, c_tot: 1000,
///         source: CandidateSource::Simulated, exact: true,
///     },
/// ];
/// let chains = enumerate_chains(&pts, 1000, 4096, 8, 2);
/// // baseline, {64}, {8}, {64, 8}
/// assert_eq!(chains.len(), 4);
/// ```
pub fn enumerate_chains(
    candidates: &[CandidatePoint],
    c_tot: u64,
    background_words: u64,
    bits: u32,
    max_depth: usize,
) -> Vec<CopyChain> {
    let candidates = dedupe_candidates(candidates.to_vec());
    let mut out = vec![CopyChain::baseline(c_tot, background_words, bits)];
    // Depth-first extension over the size-descending candidate list.
    fn extend(
        candidates: &[CandidatePoint],
        from: usize,
        stack: &mut Vec<CandidatePoint>,
        max_depth: usize,
        base: &CopyChain,
        out: &mut Vec<CopyChain>,
    ) {
        if stack.len() >= max_depth {
            return;
        }
        for (offset, cand) in candidates[from..].iter().enumerate() {
            if let Some(prev) = stack.last() {
                if cand.size >= prev.size || cand.fills < prev.fills {
                    continue;
                }
                // A bypassing level may only sit innermost; since we are
                // about to put `cand` inside `prev`, `prev` must not
                // bypass.
                if prev.bypasses > 0 {
                    continue;
                }
            } else if cand.size >= base.background_words {
                continue;
            }
            stack.push(*cand);
            let mut chain = base.clone();
            for c in stack.iter() {
                chain.push_level(ChainLevel::with_bypass(c.size, c.fills, c.bypasses));
            }
            debug_assert!(chain.validate().is_ok(), "{chain:?}");
            out.push(chain);
            extend(candidates, from + offset + 1, stack, max_depth, base, out);
            stack.pop();
        }
    }
    let base = CopyChain::baseline(c_tot, background_words, bits);
    extend(
        &candidates,
        0,
        &mut Vec::new(),
        max_depth.max(1),
        &base,
        &mut out,
    );
    add(Counter::ChainsEnumerated, out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(size: u64, fills: u64, bypasses: u64) -> CandidatePoint {
        CandidatePoint {
            size,
            fills,
            bypasses,
            c_tot: 1000,
            source: CandidateSource::Simulated,
            exact: true,
        }
    }

    #[test]
    fn dedupe_keeps_best_per_size_and_drops_useless() {
        let pts = vec![pt(64, 300, 0), pt(64, 100, 0), pt(8, 1000, 0), pt(16, 500, 0)];
        let d = dedupe_candidates(pts);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].size, d[0].fills), (64, 100));
        assert_eq!(d[1].size, 16);
    }

    #[test]
    fn explained_dedupe_names_the_winner_for_every_loser() {
        let pts = vec![
            pt(64, 300, 0),  // size-tie loser to index 1
            pt(64, 100, 0),  // kept
            pt(8, 1000, 0),  // useless: fills == c_tot
            pt(16, 500, 0),  // kept
            pt(128, 200, 0), // Pareto-dominated: bigger than 64 yet more traffic
            pt(4, 600, 300), // kept, bypassing
        ];
        let (kept, verdicts) = dedupe_candidates_explained(&pts);
        assert_eq!(kept, dedupe_candidates(pts.clone()));
        assert_eq!(verdicts.len(), pts.len());
        assert_eq!(verdicts[0], CandidateVerdict::DominatedBy(1));
        assert_eq!(verdicts[1], CandidateVerdict::Kept);
        assert_eq!(verdicts[2], CandidateVerdict::Pruned);
        assert_eq!(verdicts[3], CandidateVerdict::Kept);
        assert_eq!(verdicts[4], CandidateVerdict::DominatedBy(1));
        assert_eq!(verdicts[5], CandidateVerdict::Bypass);
        // Kept verdicts count exactly the surviving candidates.
        let survivors = verdicts
            .iter()
            .filter(|v| matches!(v, CandidateVerdict::Kept | CandidateVerdict::Bypass))
            .count();
        assert_eq!(survivors, kept.len());
        assert_eq!(CandidateVerdict::DominatedBy(1).to_string(), "dominated-by 1");
    }

    #[test]
    fn chains_are_valid_and_complete() {
        let pts = vec![pt(512, 20, 0), pt(64, 100, 0), pt(8, 400, 0)];
        let chains = enumerate_chains(&pts, 1000, 4096, 8, 3);
        // baseline + 3 singles + 3 pairs + 1 triple.
        assert_eq!(chains.len(), 8);
        for c in &chains {
            c.validate().unwrap();
        }
    }

    #[test]
    fn max_depth_limits_chains() {
        let pts = vec![pt(512, 20, 0), pt(64, 100, 0), pt(8, 400, 0)];
        let chains = enumerate_chains(&pts, 1000, 4096, 8, 1);
        assert_eq!(chains.len(), 4); // baseline + singles
    }

    #[test]
    fn bypass_candidates_only_sit_innermost() {
        let pts = vec![pt(512, 20, 0), pt(64, 100, 200)];
        let chains = enumerate_chains(&pts, 1000, 4096, 8, 2);
        for c in &chains {
            c.validate().unwrap();
        }
        // {bypass64}, {512}, {512, bypass64}, baseline.
        assert_eq!(chains.len(), 4);
        // And the bypassing one never appears with a level inside it:
        assert!(chains.iter().all(|c| {
            c.levels
                .iter()
                .enumerate()
                .all(|(i, l)| l.bypasses == 0 || i == c.levels.len() - 1)
        }));
    }

    #[test]
    fn dominated_candidates_are_pruned_before_chaining() {
        // {512, 300 fills} is dominated by {64, 100 fills}: bigger and
        // more traffic — it can never appear in a sensible hierarchy.
        let pts = vec![pt(512, 300, 0), pt(64, 100, 0)];
        assert_eq!(dedupe_candidates(pts.clone()).len(), 1);
        let chains = enumerate_chains(&pts, 1000, 4096, 8, 2);
        assert_eq!(chains.len(), 2); // baseline + {64}
    }

    #[test]
    fn oversized_candidates_are_skipped() {
        let pts = vec![pt(8192, 20, 0)];
        let chains = enumerate_chains(&pts, 1000, 4096, 8, 2);
        assert_eq!(chains.len(), 1); // baseline only
    }

    #[test]
    fn reuse_factor_accounts_for_bypass() {
        let p = pt(64, 100, 200);
        assert!((p.reuse_factor() - 8.0).abs() < 1e-12);
        assert!(p.is_useful());
        let useless = pt(64, 800, 200);
        assert!(!useless.is_useful());
    }
}
