//! Loop-order exploration.
//!
//! DTSE step 3 determines "the optimal memory hierarchy cost for each of
//! the signals *and each loop nest ordering* separately" — the loop
//! transformation step before it deliberately leaves ordering freedom on
//! the table. This module sweeps loop permutations of the nest holding a
//! signal's accesses, runs the analytical exploration per ordering, and
//! ranks the orderings by the best achievable hierarchy cost.

use datareuse_loopir::Program;
use datareuse_memmodel::{AreaModel, MemoryTechnology};

use crate::error::AnalyzeError;
use crate::explore::{explore_signal, ExploreOptions, SignalExploration};

/// One explored loop ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderChoice {
    /// `permutation[new_depth] = old_depth` applied to the original nest.
    pub permutation: Vec<usize>,
    /// Iterator names in the new order, outermost first.
    pub loop_names: Vec<String>,
    /// The per-signal exploration under this ordering.
    pub exploration: SignalExploration,
    /// The lowest normalized power on this ordering's Pareto front.
    pub best_power: f64,
    /// On-chip size (elements) of the best-power hierarchy.
    pub best_words: u64,
}

fn permutations(n: usize, cap: usize) -> Vec<Vec<usize>> {
    // Lexicographic enumeration, capped; n! can explode for deep nests.
    let mut current: Vec<usize> = (0..n).collect();
    let mut out = vec![current.clone()];
    while out.len() < cap {
        // Next lexicographic permutation.
        let Some(i) = (0..n.saturating_sub(1)).rev().find(|&i| current[i] < current[i + 1])
        else {
            break;
        };
        let j = (i + 1..n).rev().find(|&j| current[j] > current[i]).expect("exists");
        current.swap(i, j);
        current[i + 1..].reverse();
        out.push(current.clone());
    }
    out
}

/// Explores up to `max_orders` loop permutations of the (single) nest
/// accessing `array`, ranking orderings by the best achievable normalized
/// power (ties broken toward smaller on-chip size).
///
/// Only programs where all accesses to the signal live in one nest are
/// supported — re-ordering one nest of a multi-nest series would not be a
/// whole-signal ordering choice.
///
/// # Errors
///
/// Propagates [`AnalyzeError`] from the per-ordering exploration; returns
/// [`AnalyzeError::NoAccesses`] when the array is never read and
/// [`AnalyzeError::NotTranslated`] when accesses span several nests.
///
/// # Examples
///
/// ```
/// use datareuse_core::{explore_orders, ExploreOptions};
/// use datareuse_loopir::parse_program;
/// use datareuse_memmodel::{BitCount, MemoryTechnology};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "array B[8][8] bits 16;
///      for i in 0..8 { for j in 0..8 { for k in 0..8 { read B[k][j]; } } }",
/// )?;
/// let tech = MemoryTechnology::new();
/// let orders = explore_orders(&p, "B", &ExploreOptions::default(), &tech, &BitCount, 6)?;
/// assert_eq!(orders.len(), 6);
/// // The ranking is sorted best-first.
/// assert!(orders[0].best_power <= orders.last().unwrap().best_power);
/// # Ok(())
/// # }
/// ```
pub fn explore_orders(
    program: &Program,
    array: &str,
    opts: &ExploreOptions,
    tech: &MemoryTechnology,
    area: &(impl AreaModel + Sync),
    max_orders: usize,
) -> Result<Vec<OrderChoice>, AnalyzeError> {
    let reading: Vec<usize> = program
        .nests()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.accesses().iter().any(|a| a.array() == array && a.is_read()))
        .map(|(i, _)| i)
        .collect();
    let &nest_idx = match reading.as_slice() {
        [] => return Err(AnalyzeError::NoAccesses(array.to_string())),
        [one] => one,
        _ => return Err(AnalyzeError::NotTranslated),
    };
    let nest = &program.nests()[nest_idx];
    let mut out = Vec::new();
    for perm in permutations(nest.depth(), max_orders.max(1)) {
        let reordered = nest.with_loop_order(&perm);
        let mut variant = Program::new();
        for decl in program.arrays() {
            variant.declare(decl.clone()).expect("fresh program");
        }
        for (i, n) in program.nests().iter().enumerate() {
            let n = if i == nest_idx { reordered.clone() } else { n.clone() };
            variant.push_nest(n).expect("permutation keeps bounds");
        }
        let exploration = explore_signal(&variant, array, opts)?;
        let front = exploration.pareto(opts, tech, area);
        let best = front.last().expect("front includes the baseline");
        out.push(OrderChoice {
            loop_names: reordered.loops().iter().map(|l| l.name().to_string()).collect(),
            permutation: perm,
            exploration,
            best_power: best.power,
            best_words: best.size as u64,
        });
    }
    out.sort_by(|a, b| {
        a.best_power
            .total_cmp(&b.best_power)
            .then(a.best_words.cmp(&b.best_words))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::parse_program;
    use datareuse_memmodel::BitCount;

    #[test]
    fn permutation_enumeration_is_lexicographic_and_capped() {
        let p = permutations(3, 100);
        assert_eq!(
            p,
            vec![
                vec![0, 1, 2],
                vec![0, 2, 1],
                vec![1, 0, 2],
                vec![1, 2, 0],
                vec![2, 0, 1],
                vec![2, 1, 0]
            ]
        );
        assert_eq!(permutations(4, 5).len(), 5);
        assert_eq!(permutations(1, 10), vec![vec![0]]);
    }

    #[test]
    fn ordering_changes_the_reachable_hierarchy() {
        // B[k][j] in an (i, j, k) nest: with i outermost the whole B is
        // re-swept per i (great reuse); with i innermost the reuse carried
        // by i needs only one element. The sweep must find both regimes.
        let p = parse_program(
            "array B[6][6] bits 16;
             for i in 0..6 { for j in 0..6 { for k in 0..6 { read B[k][j]; } } }",
        )
        .unwrap();
        let tech = MemoryTechnology::new();
        let orders =
            explore_orders(&p, "B", &ExploreOptions::default(), &tech, &BitCount, 6).unwrap();
        assert_eq!(orders.len(), 6);
        let best = &orders[0];
        let worst = orders.last().unwrap();
        assert!(best.best_power < worst.best_power);
        // Results stay internally consistent.
        for o in &orders {
            assert_eq!(o.loop_names.len(), 3);
            assert_eq!(o.exploration.c_tot, 216);
        }
    }

    #[test]
    fn multi_nest_signals_are_rejected() {
        let p = parse_program(
            "array A[8];
             for i in 0..4 { read A[i]; }
             for i in 0..4 { read A[i + 4]; }",
        )
        .unwrap();
        let tech = MemoryTechnology::new();
        assert!(matches!(
            explore_orders(&p, "A", &ExploreOptions::default(), &tech, &BitCount, 2),
            Err(AnalyzeError::NotTranslated)
        ));
    }

    #[test]
    fn unknown_signal_is_rejected() {
        let p = parse_program("array A[8]; for i in 0..4 { read A[i]; }").unwrap();
        let tech = MemoryTechnology::new();
        assert!(matches!(
            explore_orders(&p, "Z", &ExploreOptions::default(), &tech, &BitCount, 2),
            Err(AnalyzeError::NoAccesses(_))
        ));
    }
}
