//! Errors of the analytical exploration.

use std::fmt;

/// Errors produced while setting up or running an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalyzeError {
    /// The requested access index does not exist in the nest.
    NoSuchAccess {
        /// The offending access index.
        index: usize,
    },
    /// The requested loop depth does not exist in the nest.
    NoSuchLoop {
        /// The offending depth.
        depth: usize,
    },
    /// The loop pair is not ordered outer-before-inner.
    BadLoopPair {
        /// Requested outer depth.
        outer: usize,
        /// Requested inner depth.
        inner: usize,
    },
    /// The program declares no array with this name.
    UnknownArray(String),
    /// The program contains no accesses to the array.
    NoAccesses(String),
    /// Accesses passed to a merged analysis are not translations of one
    /// another (different arrays, ranks or iterator coefficients).
    NotTranslated,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSuchAccess { index } => write!(f, "access index {index} does not exist"),
            Self::NoSuchLoop { depth } => write!(f, "loop depth {depth} does not exist"),
            Self::BadLoopPair { outer, inner } => {
                write!(f, "loop pair ({outer}, {inner}) is not outer-before-inner")
            }
            Self::UnknownArray(name) => write!(f, "array `{name}` is not declared"),
            Self::NoAccesses(name) => write!(f, "no accesses to array `{name}`"),
            Self::NotTranslated => {
                write!(f, "accesses are not translations of a common shape")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(AnalyzeError::NoSuchAccess { index: 3 }.to_string().contains('3'));
        assert!(AnalyzeError::UnknownArray("Old".into())
            .to_string()
            .contains("Old"));
    }
}
