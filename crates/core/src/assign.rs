//! Global hierarchy layer assignment across signals (DTSE step 3's
//! follow-up: "a global decision optimizing the total memory hierarchy
//! including all signals, will then be taken in a subsequent *global
//! hierarchy layer assignment* step").
//!
//! Each signal brings the Pareto set of its own copy-candidate chains; the
//! assignment picks one option per signal minimizing the combined eq. 2
//! cost `α·ΣP + β·ΣA`, optionally under a total on-chip capacity budget.
//! Exhaustive search is used while the product of option counts is small,
//! falling back to a marginal-gain greedy otherwise.

use datareuse_memmodel::{ChainCost, CopyChain};

/// One signal's menu of evaluated hierarchy options. Option 0 should be
/// the baseline (no hierarchy) so the assignment can always fall back.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalOptions {
    /// Signal name.
    pub array: String,
    /// Evaluated chains: `(chain, cost)`.
    pub options: Vec<(CopyChain, ChainCost)>,
}

/// The chosen option index per signal, plus aggregate numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `choice[i]` indexes `signals[i].options`.
    pub choice: Vec<usize>,
    /// Combined weighted cost of the selection.
    pub total_cost: f64,
    /// Combined on-chip capacity of the selection, in elements.
    pub total_words: u64,
}

/// Search limit under which the assignment is solved exhaustively.
const EXHAUSTIVE_LIMIT: u128 = 200_000;

/// Picks one chain per signal minimizing `Σ (α·energy + β·size)` subject
/// to `Σ on-chip words ≤ budget_words` (when given).
///
/// Returns `None` only when some signal has an empty option list or no
/// feasible combination exists under the budget (always include a
/// baseline option to avoid this).
///
/// # Examples
///
/// ```
/// use datareuse_core::{assign_layers, SignalOptions};
/// use datareuse_memmodel::{evaluate_chain, BitCount, ChainLevel, CopyChain, MemoryTechnology};
///
/// let tech = MemoryTechnology::new();
/// let mut options = Vec::new();
/// for fills in [50u64, 200] {
///     let mut menu = Vec::new();
///     for chain in [
///         CopyChain::baseline(1000, 4096, 8),
///         {
///             let mut c = CopyChain::baseline(1000, 4096, 8);
///             c.push_level(ChainLevel::new(128, fills));
///             c
///         },
///     ] {
///         let cost = evaluate_chain(&chain, &tech, &BitCount);
///         menu.push((chain, cost));
///     }
///     options.push(SignalOptions { array: format!("S{fills}"), options: menu });
/// }
/// let a = assign_layers(&options, 1.0, 0.0, None).expect("feasible");
/// assert_eq!(a.choice, vec![1, 1]); // hierarchy wins for both signals
/// ```
pub fn assign_layers(
    signals: &[SignalOptions],
    alpha: f64,
    beta: f64,
    budget_words: Option<u64>,
) -> Option<Assignment> {
    if signals.iter().any(|s| s.options.is_empty()) {
        return None;
    }
    let combos: u128 = signals.iter().map(|s| s.options.len() as u128).product();
    if combos <= EXHAUSTIVE_LIMIT {
        assign_exhaustive(signals, alpha, beta, budget_words)
    } else {
        assign_greedy(signals, alpha, beta, budget_words)
    }
}

fn selection_stats(
    signals: &[SignalOptions],
    choice: &[usize],
    alpha: f64,
    beta: f64,
) -> (f64, u64) {
    let mut cost = 0.0;
    let mut words = 0u64;
    for (s, &c) in signals.iter().zip(choice) {
        let (_, opt_cost) = &s.options[c];
        cost += opt_cost.weighted(alpha, beta);
        words += opt_cost.onchip_words;
    }
    (cost, words)
}

fn assign_exhaustive(
    signals: &[SignalOptions],
    alpha: f64,
    beta: f64,
    budget_words: Option<u64>,
) -> Option<Assignment> {
    let mut choice = vec![0usize; signals.len()];
    let mut best: Option<Assignment> = None;
    loop {
        let (cost, words) = selection_stats(signals, &choice, alpha, beta);
        let feasible = budget_words.is_none_or(|b| words <= b);
        if feasible && best.as_ref().is_none_or(|b| cost < b.total_cost) {
            best = Some(Assignment {
                choice: choice.clone(),
                total_cost: cost,
                total_words: words,
            });
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == signals.len() {
                return best;
            }
            choice[i] += 1;
            if choice[i] < signals[i].options.len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn assign_greedy(
    signals: &[SignalOptions],
    alpha: f64,
    beta: f64,
    budget_words: Option<u64>,
) -> Option<Assignment> {
    // Start from the per-signal minimum-size option (baselines), then take
    // the single-option swap with the best cost improvement until no swap
    // fits the budget or improves.
    let mut choice: Vec<usize> = signals
        .iter()
        .map(|s| {
            (0..s.options.len())
                .min_by_key(|&i| s.options[i].1.onchip_words)
                .unwrap_or(0)
        })
        .collect();
    loop {
        let (cost, words) = selection_stats(signals, &choice, alpha, beta);
        let mut best_delta = 0.0f64;
        let mut best_swap: Option<(usize, usize)> = None;
        for (si, s) in signals.iter().enumerate() {
            for oi in 0..s.options.len() {
                if oi == choice[si] {
                    continue;
                }
                let cur = &s.options[choice[si]].1;
                let alt = &s.options[oi].1;
                let new_words = words - cur.onchip_words + alt.onchip_words;
                if budget_words.is_some_and(|b| new_words > b) {
                    continue;
                }
                let delta = alt.weighted(alpha, beta) - cur.weighted(alpha, beta);
                if delta < best_delta {
                    best_delta = delta;
                    best_swap = Some((si, oi));
                }
            }
        }
        match best_swap {
            Some((si, oi)) => choice[si] = oi,
            None => {
                let feasible = budget_words.is_none_or(|b| words <= b);
                return feasible.then_some(Assignment {
                    choice,
                    total_cost: cost,
                    total_words: words,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_memmodel::{evaluate_chain, BitCount, ChainLevel, MemoryTechnology};

    fn menu(c_tot: u64, level: Option<(u64, u64)>) -> (CopyChain, ChainCost) {
        let tech = MemoryTechnology::new();
        let mut chain = CopyChain::baseline(c_tot, 4096, 8);
        if let Some((words, fills)) = level {
            chain.push_level(ChainLevel::new(words, fills));
        }
        let cost = evaluate_chain(&chain, &tech, &BitCount);
        (chain, cost)
    }

    fn signal(name: &str, options: Vec<(CopyChain, ChainCost)>) -> SignalOptions {
        SignalOptions {
            array: name.into(),
            options,
        }
    }

    #[test]
    fn budget_forces_baseline_for_one_signal() {
        // Both signals want a 256-word level but only one fits in 300.
        let a = signal(
            "A",
            vec![menu(10_000, None), menu(10_000, Some((256, 100)))],
        );
        let b = signal("B", vec![menu(1_000, None), menu(1_000, Some((256, 100)))]);
        let asg = assign_layers(&[a, b], 1.0, 0.0, Some(300)).unwrap();
        // The hotter signal (A, 10k accesses) gets the buffer.
        assert_eq!(asg.choice, vec![1, 0]);
        assert!(asg.total_words <= 300);
    }

    #[test]
    fn no_budget_picks_global_minimum() {
        let a = signal("A", vec![menu(10_000, None), menu(10_000, Some((256, 100)))]);
        let b = signal("B", vec![menu(10_000, None), menu(10_000, Some((128, 50)))]);
        let asg = assign_layers(&[a, b], 1.0, 0.0, None).unwrap();
        assert_eq!(asg.choice, vec![1, 1]);
    }

    #[test]
    fn beta_penalizes_size() {
        let a = signal(
            "A",
            vec![menu(1_000, None), menu(1_000, Some((2048, 900)))],
        );
        // With a heavy size weight, the marginal power gain cannot pay for
        // 2048 words.
        let asg = assign_layers(&[a], 1.0, 1e6, None).unwrap();
        assert_eq!(asg.choice, vec![0]);
    }

    #[test]
    fn empty_options_yield_none() {
        let s = SignalOptions {
            array: "X".into(),
            options: Vec::new(),
        };
        assert!(assign_layers(&[s], 1.0, 1.0, None).is_none());
    }

    #[test]
    fn greedy_matches_exhaustive_on_separable_instances() {
        // Budget-free, independent signals: greedy must find the same
        // optimum as exhaustive.
        let signals: Vec<SignalOptions> = (0..4)
            .map(|i| {
                signal(
                    &format!("S{i}"),
                    vec![
                        menu(1_000 * (i + 1), None),
                        menu(1_000 * (i + 1), Some((64 << i, 100))),
                        menu(1_000 * (i + 1), Some((16 << i, 400))),
                    ],
                )
            })
            .collect();
        let ex = assign_exhaustive(&signals, 1.0, 0.1, None).unwrap();
        let gr = assign_greedy(&signals, 1.0, 0.1, None).unwrap();
        assert!((ex.total_cost - gr.total_cost).abs() < 1e-9);
    }

    #[test]
    fn infeasible_budget_returns_none_or_baselines() {
        let a = signal("A", vec![menu(1_000, Some((256, 100)))]); // no baseline!
        assert!(assign_layers(&[a], 1.0, 0.0, Some(10)).is_none());
    }
}
