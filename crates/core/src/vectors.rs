//! Reuse dependency vectors and the rank-of-`B` classification
//! (paper Section 5.2–5.3).
//!
//! For an access `A[y₁]…[yₙ]` with `yᵢ = bᵢ·j + cᵢ·k + constᵢ` inside the
//! inner loop pair `(j, k)`, two iterations touch the same element iff
//!
//! ```text
//! B · [j_tMAX − j_tMIN, k_tMIN − k_tMAX]ᵀ = 0,   B = [[b₁, −c₁], …, [bₙ, −cₙ]]
//! ```
//!
//! (eq. 4/8). The solution structure depends only on `rank(B)` (eq. 9):
//! rank 2 ⇒ no reuse, rank 0 ⇒ every iteration reads the same element,
//! rank 1 ⇒ reuse along the *uniformly generated dependency vector*
//! `(c', −b')` with `b' = b/gcd(b,c)`, `c' = c/gcd(b,c)` (eq. 5–7).

/// Greatest common divisor of the absolute values; `gcd(0, 0) = 0`.
///
/// # Examples
///
/// ```
/// use datareuse_core::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 7), 7);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Classification of the data reuse carried by an inner loop pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseClass {
    /// `rank(B) = 0`: the index is independent of both iterators — "the
    /// same element is accessed in every iteration of the (j,k) iteration
    /// space".
    SameElement,
    /// `rank(B) = 2`: "each element is accessed only once and no gain is
    /// possible from data reuse".
    NoReuse,
    /// `rank(B) = 1`: reuse along the normalized dependency vector
    /// `(c', −b')`; `bp`/`cp` are the paper's `b'`/`c'` (non-negative, not
    /// both zero, coprime).
    Vector {
        /// `b' = |b| / gcd(|b|, |c|)`.
        bp: i64,
        /// `c' = |c| / gcd(|b|, |c|)`.
        cp: i64,
        /// True for the *anti-diagonal* orientation (`b` and `c` of
        /// opposite signs): the dependency runs `(c', +b')`, i.e. `k`
        /// *increases* along reuse. First-access counts are mirrored and
        /// unchanged, but an element's reuse arrives `b'` iterations later
        /// within the next `k` sweep, so occupancy grows by `b'`
        /// (`A_Max = c'(kRANGE − b') + b'`). This is one of the "analogous
        /// formulas for b < 0" the paper leaves to the reader; it is
        /// validated against Belady simulation in this crate's tests.
        anti: bool,
    },
}

impl ReuseClass {
    /// Classifies the `B` matrix given as `(bᵢ, cᵢ)` coefficient rows, one
    /// per signal dimension.
    ///
    /// Sign normalization: the paper derives the formulas for `b ≥ 0`,
    /// `c > 0` and notes "analogous formulas for `b < 0` and/or `c ≤ 0`
    /// can be straightforwardly derived in the same way". Reversing the
    /// direction of either loop maps every such case onto the canonical
    /// one without changing footprints, first-access counts or buffer
    /// occupancy maxima, so the classification uses `|b|`, `|c|` — this is
    /// validated against Belady simulation in the crate's tests.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_core::ReuseClass;
    ///
    /// // Old[… + 0·i4 + 1·i6][… + 1·i4 + 1·i6] (ME inner pair, §6.3)
    /// let class = ReuseClass::classify(&[(0, 0), (1, 1)]);
    /// assert_eq!(class, ReuseClass::Vector { bp: 1, cp: 1, anti: false });
    ///
    /// // Old[… + 1·i5][… + 1·i6]: rank 2, no reuse
    /// assert_eq!(ReuseClass::classify(&[(1, 0), (0, 1)]), ReuseClass::NoReuse);
    /// ```
    pub fn classify(rows: &[(i64, i64)]) -> Self {
        // rank 0: all rows zero.
        let mut pivot: Option<(i64, i64)> = None;
        for &(b, c) in rows {
            if b == 0 && c == 0 {
                continue;
            }
            match pivot {
                None => pivot = Some((b, c)),
                Some((pb, pc)) => {
                    // Rows must be parallel: b·pc − c·pb = 0.
                    if b * pc - c * pb != 0 {
                        return Self::NoReuse;
                    }
                }
            }
        }
        match pivot {
            None => Self::SameElement,
            Some((b, c)) => {
                // Flip the row so that c > 0 (or b > 0 when c == 0); the
                // row and its negation define the same constraint.
                let (b, c) = if c < 0 || (c == 0 && b < 0) {
                    (-b, -c)
                } else {
                    (b, c)
                };
                let g = gcd(b, c);
                Self::Vector {
                    bp: b.abs() / g,
                    cp: c / g,
                    anti: b < 0 && c > 0,
                }
            }
        }
    }

    /// The normalized `(b', c')` pair when reuse is carried, `None`
    /// otherwise.
    pub fn vector(&self) -> Option<(i64, i64)> {
        match *self {
            Self::Vector { bp, cp, .. } => Some((bp, cp)),
            _ => None,
        }
    }

    /// True when some reuse exists in the pair's iteration space
    /// (rank ≤ 1).
    pub fn carries_reuse(&self) -> bool {
        !matches!(self, Self::NoReuse)
    }
}

impl std::fmt::Display for ReuseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SameElement => write!(f, "rank 0 (same element everywhere)"),
            Self::NoReuse => write!(f, "rank 2 (no reuse)"),
            Self::Vector { bp, cp, anti: false } => {
                write!(f, "rank 1, reuse vector ({cp}, -{bp})")
            }
            Self::Vector { bp, cp, anti: true } => {
                write!(f, "rank 1, reuse vector ({cp}, +{bp}) [anti-diagonal]")
            }
        }
    }
}

/// Solves eq. 4 for the canonical case: given `(b', c')` and a first
/// access at `(j_min, k_min)`, accesses to the same element occur at
/// `(j_min + t·c', k_min − t·b')` for `t = 0..=L` with `L` given by eq. 8.
///
/// Returns the reuse chain length `L` for a first access at
/// `(j_min, k_min)` within `jL..=jU`, `kL..=kU`.
pub fn reuse_chain_length(
    (bp, cp): (i64, i64),
    (j_min, k_min): (i64, i64),
    (j_lower, j_upper): (i64, i64),
    (k_lower, _k_upper): (i64, i64),
) -> i64 {
    // eq. 8: L = min[(k_tMIN − kL) div b', (jU − j_tMIN) div c']
    match (bp, cp) {
        (0, 0) => 0,
        (0, cp) => (j_upper - j_min) / cp,
        (bp, 0) => (k_min - k_lower) / bp,
        (bp, cp) => std::cmp::min((k_min - k_lower) / bp, (j_upper - j_min) / cp),
    }
    .max(0)
    .min(if j_lower > j_upper { 0 } else { i64::MAX })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-8, 12), 4);
        assert_eq!(gcd(7, 7), 7);
        assert_eq!(gcd(1, 999), 1);
    }

    #[test]
    fn rank_zero_is_same_element() {
        assert_eq!(ReuseClass::classify(&[(0, 0), (0, 0)]), ReuseClass::SameElement);
        assert_eq!(ReuseClass::classify(&[]), ReuseClass::SameElement);
        assert!(ReuseClass::classify(&[(0, 0)]).carries_reuse());
    }

    #[test]
    fn rank_one_normalizes_with_gcd() {
        // y = 2j + 4k: b'=1, c'=2
        assert_eq!(
            ReuseClass::classify(&[(2, 4)]),
            ReuseClass::Vector { bp: 1, cp: 2, anti: false }
        );
        // parallel rows agree
        assert_eq!(
            ReuseClass::classify(&[(2, 4), (3, 6), (0, 0)]),
            ReuseClass::Vector { bp: 1, cp: 2, anti: false }
        );
    }

    #[test]
    fn footnote_case_b_zero() {
        // Footnote 1: b=0, c>0 → b'=0, c'=1.
        assert_eq!(
            ReuseClass::classify(&[(0, 5)]),
            ReuseClass::Vector { bp: 0, cp: 1, anti: false }
        );
        assert_eq!(
            ReuseClass::classify(&[(5, 0)]),
            ReuseClass::Vector { bp: 1, cp: 0, anti: false }
        );
    }

    #[test]
    fn negative_coefficients_normalize_to_canonical() {
        assert_eq!(
            ReuseClass::classify(&[(-1, 1)]),
            ReuseClass::Vector { bp: 1, cp: 1, anti: true }
        );
        assert_eq!(
            ReuseClass::classify(&[(2, -6)]),
            ReuseClass::Vector { bp: 1, cp: 3, anti: true }
        );
        // Both coefficients negative: plain diagonal after row negation.
        assert_eq!(
            ReuseClass::classify(&[(-2, -6)]),
            ReuseClass::Vector { bp: 1, cp: 3, anti: false }
        );
    }

    #[test]
    fn c_zero_column_flips_on_negative_b() {
        // When c == 0 the flip rule keys on b's sign: the row and its
        // negation define the same constraint, so (−5, 0) classifies like
        // (5, 0) — c' = 0, never anti-diagonal.
        assert_eq!(
            ReuseClass::classify(&[(-5, 0)]),
            ReuseClass::Vector { bp: 1, cp: 0, anti: false }
        );
        assert_eq!(
            ReuseClass::classify(&[(0, -5)]),
            ReuseClass::Vector { bp: 0, cp: 1, anti: false }
        );
        // Parallel all-c-zero rows: the pivot row normalizes via the gcd.
        assert_eq!(
            ReuseClass::classify(&[(0, 0), (-4, 0), (-2, 0)]),
            ReuseClass::Vector { bp: 1, cp: 0, anti: false }
        );
    }

    #[test]
    fn chain_length_degenerate_vectors_clamp_to_zero() {
        // (0, 0) carries no step; eq. 8 has no division to perform.
        assert_eq!(reuse_chain_length((0, 0), (3, 3), (0, 7), (0, 7)), 0);
        // First access already at the boundary: no further reuse.
        assert_eq!(reuse_chain_length((1, 1), (7, 0), (0, 7), (0, 7)), 0);
        // Empty j-range clamps rather than going negative.
        assert_eq!(reuse_chain_length((0, 1), (5, 0), (0, 3), (0, 7)), 0);
    }

    #[test]
    fn non_parallel_rows_have_no_reuse() {
        assert_eq!(ReuseClass::classify(&[(1, 1), (1, 2)]), ReuseClass::NoReuse);
        assert!(!ReuseClass::classify(&[(1, 0), (0, 1)]).carries_reuse());
    }

    #[test]
    fn chain_length_follows_eq8() {
        // b'=1, c'=1 in an 8x8 space: first access at (0, 5) is reused
        // min(5-0, 7-0) = 5 times.
        assert_eq!(reuse_chain_length((1, 1), (0, 5), (0, 7), (0, 7)), 5);
        // (0, 7): min(7, 7) = 7
        assert_eq!(reuse_chain_length((1, 1), (0, 7), (0, 7), (0, 7)), 7);
        // b'=0: reuse along j only.
        assert_eq!(reuse_chain_length((0, 1), (2, 3), (0, 7), (0, 7)), 5);
        // c'=0: reuse along k only.
        assert_eq!(reuse_chain_length((1, 0), (2, 3), (0, 7), (0, 7)), 3);
    }

    #[test]
    fn display_is_informative() {
        let s = ReuseClass::Vector { bp: 2, cp: 3, anti: false }.to_string();
        assert!(s.contains("(3, -2)"));
    }
}
