//! Per-signal exploration driver (DTSE step 3, "data reuse").
//!
//! For one array signal, the driver gathers every analytical
//! copy-candidate point the model can derive — footprint levels for all
//! loop depths, and pairwise max/partial/bypass points for all inner loop
//! pairs — merges candidates across the access groups of the program (as
//! the paper does for the SUSAN test-vehicle), enumerates copy-candidate
//! chains, and evaluates them into the power–memory-size Pareto curve.

use datareuse_loopir::{AccessKind, Program};
use datareuse_memmodel::{
    evaluate_chain, pareto_front, pareto_front_explained, AreaModel, ChainCost, CopyChain,
    MemoryTechnology, ParetoPoint,
};
use datareuse_obs::{add, span, Counter, Explain};

use crate::error::AnalyzeError;
use crate::explain::{emit_candidate_records, emit_chain_records, symbolic_record, PairVector};
use crate::footprint::{footprint_levels, footprint_levels_merged, guarded_count};
use crate::symbolic::{symbolic_profile, SymbolicFallback, SymbolicProfile};
use crate::levels::{
    dedupe_candidates, dedupe_candidates_explained, enumerate_chains, CandidatePoint,
};
use crate::pairwise::{max_reuse, PairGeometry};
use crate::partial::partial_sweep;

/// The per-reason counter behind the aggregate `sim_fallbacks`: each
/// fallback bumps both, so the prom/scorecard breakdown always sums to
/// the total and says *why* work left the symbolic fast path.
fn fallback_counter(fallback: SymbolicFallback) -> Counter {
    match fallback {
        SymbolicFallback::Guarded => Counter::SimFallbackGuarded,
        SymbolicFallback::SharedIterators => Counter::SimFallbackSharedIterators,
        SymbolicFallback::SparseDim => Counter::SimFallbackSparseDim,
        SymbolicFallback::UnalignedUnion => Counter::SimFallbackUnalignedUnion,
        SymbolicFallback::NotTranslated => Counter::SimFallbackNotTranslated,
        SymbolicFallback::Overflow => Counter::SimFallbackOverflow,
        SymbolicFallback::BadAccess => Counter::SimFallbackBadAccess,
    }
}

/// Options steering [`explore_signal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Generate partial-reuse points (Section 6.2).
    pub include_partial: bool,
    /// Generate bypass variants of the partial points.
    pub include_bypass: bool,
    /// Maximum number of sub-levels per enumerated chain.
    pub max_chain_depth: usize,
    /// Worker threads for the pair and chain sweeps. `None` resolves to
    /// the `DATAREUSE_THREADS` environment variable, then the machine's
    /// available parallelism; `Some(1)` forces the sequential path. The
    /// result is identical either way — parallel results are sorted back
    /// into input order (see [`crate::parallel_map`]).
    pub threads: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            include_partial: true,
            include_bypass: true,
            max_chain_depth: 2,
            threads: None,
        }
    }
}

/// One group of accesses sharing an index expression within one nest.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessGroup {
    /// Nest index within the program.
    pub nest: usize,
    /// Representative access index within the nest.
    pub access: usize,
    /// Accesses merged into the group.
    pub group_size: u64,
    /// Reads the group issues over the whole execution.
    pub c_tot: u64,
    /// Candidate points derived for this group.
    pub candidates: Vec<CandidatePoint>,
}

/// The exploration result for one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalExploration {
    /// The explored array.
    pub array: String,
    /// Element bit width.
    pub bits: u32,
    /// Background memory footprint (declared array size, elements).
    pub background_words: u64,
    /// Total reads of the signal (`C_tot` over all groups).
    pub c_tot: u64,
    /// Per-group detail.
    pub groups: Vec<AccessGroup>,
    /// Signal-level candidates (combined across groups, deduplicated).
    pub candidates: Vec<CandidatePoint>,
}

fn pair_candidates(
    nest: &datareuse_loopir::LoopNest,
    access: usize,
    opts: &ExploreOptions,
    annotate: bool,
) -> (Vec<CandidatePoint>, Vec<Option<PairVector>>) {
    let depth = nest.depth();
    let mut pairs = Vec::new();
    for outer in 0..depth.saturating_sub(1) {
        for inner in outer + 1..depth {
            pairs.push((outer, inner));
        }
    }
    // Each (outer, inner) geometry is independent: its max-reuse point and
    // γ sweeps read only the nest. Fan the pairs out and flatten back in
    // pair order, so the candidate stream is identical to the sequential
    // loop's.
    let _timer = span("pairs");
    add(Counter::ExplorePairsSwept, pairs.len() as u64);
    let threads = crate::par::resolve_threads(opts.threads);
    let per_pair = crate::par::parallel_map(threads, pairs, |(outer, inner)| {
        let Ok(geom) = PairGeometry::from_access(nest, access, outer, inner) else {
            return (Vec::new(), None);
        };
        let exact = !geom.approximate;
        let mut out = Vec::new();
        if let Some(point) = max_reuse(&geom) {
            out.push(tag_pair(
                CandidatePoint::from_reuse_point(&point, exact),
                outer,
                inner,
            ));
        }
        if opts.include_partial {
            for point in partial_sweep(&geom, false) {
                out.push(tag_pair(
                    CandidatePoint::from_reuse_point(&point, exact),
                    outer,
                    inner,
                ));
            }
        }
        if opts.include_bypass {
            for point in partial_sweep(&geom, true) {
                out.push(tag_pair(
                    CandidatePoint::from_reuse_point(&point, exact),
                    outer,
                    inner,
                ));
            }
        }
        // The pair's geometry annotates every point it produced; skipped
        // entirely when no audit sink is attached.
        let vector = annotate.then(|| PairVector::from_geometry(&geom)).flatten();
        (out, vector)
    });
    let mut points = Vec::new();
    let mut annots = Vec::new();
    for (pts, vector) in per_pair {
        if annotate {
            annots.resize(annots.len() + pts.len(), vector);
        }
        points.extend(pts);
    }
    (points, annots)
}

// Candidate sources from the pairwise model do not record the pair; for
// cross-group alignment we only rely on source equality, which is
// sufficient because structurally identical nests produce identical
// source streams in identical order. `tag_pair` is the seam where a pair
// id could be added if finer alignment is ever needed.
fn tag_pair(candidate: CandidatePoint, _outer: usize, _inner: usize) -> CandidatePoint {
    candidate
}

/// Explores all read accesses to `array` in `program`.
///
/// For every access group the driver derives footprint levels (Fig. 4a's
/// discontinuities `A₁…A₄`) and the pairwise max/partial/bypass points
/// (eq. 12–22), then combines and deduplicates them into the signal's
/// copy-candidates. Each candidate carries its reuse factor
/// `F_R = C_tot / C_j` (eq. 1) via
/// [`CandidatePoint::reuse_factor`](crate::CandidatePoint::reuse_factor).
///
/// When metrics are enabled ([`datareuse_obs::set_metrics_enabled`]) the
/// sweep records the `explore` span and the `explore_*` counters.
///
/// # Errors
///
/// Returns [`AnalyzeError::UnknownArray`] when the array is not declared
/// and [`AnalyzeError::NoAccesses`] when nothing reads it.
///
/// # Examples
///
/// ```
/// use datareuse_core::{explore_signal, ExploreOptions};
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "array A[23];
///      for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
/// )?;
/// let ex = explore_signal(&p, "A", &ExploreOptions::default())?;
/// assert_eq!(ex.c_tot, 128);
/// assert!(!ex.candidates.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn explore_signal(
    program: &Program,
    array: &str,
    opts: &ExploreOptions,
) -> Result<SignalExploration, AnalyzeError> {
    explore_signal_explained(program, array, opts, None)
}

/// [`explore_signal`] with an optional audit sink: when `explain` is
/// `Some`, one audit NDJSON record is emitted per offered
/// copy-candidate (the eq. 12–22 cost terms plus a terminal verdict).
/// The exploration result is identical either way, and with `None` no
/// record is built at all.
///
/// # Errors
///
/// Same as [`explore_signal`].
pub fn explore_signal_explained(
    program: &Program,
    array: &str,
    opts: &ExploreOptions,
    explain: Option<&Explain>,
) -> Result<SignalExploration, AnalyzeError> {
    let _timer = span("explore");
    let decl = program
        .array(array)
        .ok_or_else(|| AnalyzeError::UnknownArray(array.to_string()))?;
    let mut groups = Vec::new();
    // Cross-group combination sums by source over group 0's seeds, so the
    // pair-geometry annotations of the first group cover the whole pool.
    let mut first_annots: Vec<Option<PairVector>> = Vec::new();
    for (nest_idx, nest) in program.nests().iter().enumerate() {
        let mut seen: Vec<&[datareuse_loopir::AffineExpr]> = Vec::new();
        for (access_idx, acc) in nest.accesses().iter().enumerate() {
            if acc.array() != array || acc.kind() != AccessKind::Read {
                continue;
            }
            if seen.contains(&acc.indices()) {
                continue; // merged into an earlier group
            }
            seen.push(acc.indices());
            let members: Vec<&datareuse_loopir::Access> = nest
                .accesses()
                .iter()
                .filter(|a| a.indices() == acc.indices() && a.kind() == AccessKind::Read)
                .collect();
            // Guard-aware C_tot: guarded accesses (the SUSAN circular
            // mask) execute on a subset of the iteration space.
            let c_tot: u64 = members.iter().map(|a| guarded_count(nest, a).0).sum();
            let annotate = explain.is_some() && groups.is_empty();
            let mut candidates = Vec::new();
            // Default analysis path: closed-form symbolic profile. The
            // enumeration path runs only for non-conforming groups (the
            // `sim_fallbacks` counter and the `symbolic-profile` audit
            // record say which and why); where both apply their outputs
            // are identical (pinned by tests/symbolic.rs).
            match symbolic_profile(nest, access_idx) {
                Ok(profile) => {
                    add(Counter::SymbolicHits, 1);
                    if let Some(sink) = explain {
                        sink.emit(&symbolic_record(array, nest_idx, false, Ok(&profile)));
                    }
                    for level in profile.level_candidates() {
                        candidates.push(CandidatePoint::from_footprint(&level, nest.depth()));
                    }
                }
                Err(fallback) => {
                    add(Counter::SimFallbacks, 1);
                    add(fallback_counter(fallback), 1);
                    if let Some(sink) = explain {
                        sink.emit(&symbolic_record(array, nest_idx, false, Err(fallback)));
                    }
                    for level in footprint_levels(nest, access_idx)? {
                        candidates.push(CandidatePoint::from_footprint(&level, nest.depth()));
                    }
                }
            }
            let (pair_points, pair_annots) = pair_candidates(nest, access_idx, opts, annotate);
            if annotate {
                first_annots = vec![None; candidates.len()];
                first_annots.extend(pair_annots);
            }
            candidates.extend(pair_points);
            groups.push(AccessGroup {
                nest: nest_idx,
                access: access_idx,
                group_size: members.len() as u64,
                c_tot,
                candidates,
            });
        }
    }
    if groups.is_empty() {
        return Err(AnalyzeError::NoAccesses(array.to_string()));
    }
    add(Counter::ExploreGroups, groups.len() as u64);
    add(
        Counter::ExploreCandidatesGenerated,
        groups.iter().map(|g| g.candidates.len() as u64).sum(),
    );
    let c_tot: u64 = groups.iter().map(|g| g.c_tot).sum();
    let (mut pool, seed_map) = combine_groups_raw(&groups, c_tot);
    let mut pool_annots: Vec<Option<PairVector>> = if explain.is_some() {
        seed_map
            .iter()
            .map(|&i| first_annots.get(i).copied().flatten())
            .collect()
    } else {
        Vec::new()
    };
    // Shared candidates over translated accesses within one nest — the
    // paper's merged copy-candidates (Section 6.4). A single buffer
    // holding the union footprint serves all mask rows at once, turning
    // seven single-sweep accesses into one high-reuse rolling buffer.
    for (nest_idx, nest) in program.nests().iter().enumerate() {
        let members: Vec<usize> = nest
            .accesses()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.array() == array && a.kind() == AccessKind::Read)
            .map(|(i, _)| i)
            .collect();
        if members.len() < 2 {
            continue;
        }
        match SymbolicProfile::analyze(nest, &members) {
            Ok(profile) => {
                add(Counter::SymbolicHits, 1);
                if let Some(sink) = explain {
                    sink.emit(&symbolic_record(array, nest_idx, true, Ok(&profile)));
                }
                for level in profile.level_candidates() {
                    pool.push(CandidatePoint::from_merged_footprint(&level, nest.depth()));
                    if explain.is_some() {
                        pool_annots.push(None);
                    }
                }
            }
            Err(fallback) => {
                // Enumeration may still refuse (accesses that are not
                // translations of each other produce no shared candidate
                // on either path — no fallback work ran, no counter).
                if let Ok(levels) = footprint_levels_merged(nest, &members) {
                    add(Counter::SimFallbacks, 1);
                    add(fallback_counter(fallback), 1);
                    if let Some(sink) = explain {
                        sink.emit(&symbolic_record(array, nest_idx, true, Err(fallback)));
                    }
                    for level in levels {
                        pool.push(CandidatePoint::from_merged_footprint(&level, nest.depth()));
                        if explain.is_some() {
                            pool_annots.push(None);
                        }
                    }
                }
            }
        }
    }
    // One final dedupe over the whole pool. This is equivalent to the
    // nested dedupe-then-dedupe the combination used to do — dominance
    // is transitive, so dropping a point early or late never changes the
    // survivor set or the pruned-counter total — and it gives every
    // offered candidate exactly one verdict against pool-wide ids.
    let candidates = if let Some(sink) = explain {
        let (kept, verdicts) = dedupe_candidates_explained(&pool);
        emit_candidate_records(
            sink,
            array,
            c_tot,
            decl.len(),
            &pool,
            &pool_annots,
            &verdicts,
        );
        kept
    } else {
        dedupe_candidates(pool)
    };
    Ok(SignalExploration {
        array: array.to_string(),
        bits: decl.elem_bits(),
        background_words: decl.len(),
        c_tot,
        groups,
        candidates,
    })
}

/// Combines per-group candidates into one signal-level pool, *without*
/// deduplicating (the caller runs the single final dedupe).
///
/// With a single group, its candidates pass through. With several (the
/// SUSAN shape: one nest per mask row), candidates whose
/// [`CandidateSource`] appears in *every* group are summed — each group
/// keeps its own buffer partition, so sizes and traffic add. The second
/// vector maps each pooled candidate back to its seed index in group 0
/// (the identity for a single group), which carries the annotations.
fn combine_groups_raw(groups: &[AccessGroup], c_tot: u64) -> (Vec<CandidatePoint>, Vec<usize>) {
    if groups.len() == 1 {
        let pool = groups[0].candidates.clone();
        let seeds = (0..pool.len()).collect();
        return (pool, seeds);
    }
    let mut combined = Vec::new();
    let mut seeds = Vec::new();
    for (seed_idx, seed) in groups[0].candidates.iter().enumerate() {
        let mut size = 0u64;
        let mut fills = 0u64;
        let mut bypasses = 0u64;
        let mut exact = true;
        let mut complete = true;
        for g in groups {
            match g.candidates.iter().find(|c| c.source == seed.source) {
                Some(c) => {
                    size += c.size;
                    fills += c.fills;
                    bypasses += c.bypasses;
                    exact &= c.exact;
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            combined.push(CandidatePoint {
                size,
                fills,
                bypasses,
                c_tot,
                source: seed.source,
                exact,
            });
            seeds.push(seed_idx);
        }
    }
    (combined, seeds)
}

impl SignalExploration {
    /// Enumerates every copy-candidate chain over the signal candidates.
    pub fn chains(&self, opts: &ExploreOptions) -> Vec<CopyChain> {
        let _timer = span("chains");
        enumerate_chains(
            &self.candidates,
            self.c_tot,
            self.background_words,
            self.bits,
            opts.max_chain_depth,
        )
    }

    /// Evaluates all chains and returns the power–memory-size Pareto front
    /// (Fig. 4b / 10b / 11b), pairs of the chain and its cost, sorted by
    /// increasing on-chip size.
    ///
    /// Each chain is costed with the eq. 3 hierarchy power model (eq. 19
    /// bypass semantics included); the front keeps the points no other
    /// chain dominates in both power and size — the designer's trade-off
    /// curve from which eq. 2 picks a single operating point.
    pub fn pareto(
        &self,
        opts: &ExploreOptions,
        tech: &MemoryTechnology,
        area: &(impl AreaModel + Sync),
    ) -> Vec<ParetoPoint<(CopyChain, ChainCost)>> {
        self.pareto_explained(opts, tech, area, None)
    }

    /// [`SignalExploration::pareto`] with an optional audit sink: when
    /// `explain` is `Some`, every enumerated hierarchy gets one `chain`
    /// NDJSON record with its eq. 2–3 cost terms and its Pareto verdict.
    /// The front is identical either way.
    pub fn pareto_explained(
        &self,
        opts: &ExploreOptions,
        tech: &MemoryTechnology,
        area: &(impl AreaModel + Sync),
        explain: Option<&Explain>,
    ) -> Vec<ParetoPoint<(CopyChain, ChainCost)>> {
        let _timer = span("pareto");
        let threads = crate::par::resolve_threads(opts.threads);
        let points = crate::par::parallel_map(threads, self.chains(opts), |chain| {
            let cost = evaluate_chain(&chain, tech, area);
            ParetoPoint::new(cost.onchip_words as f64, cost.normalized_energy, (chain, cost))
        });
        let Some(sink) = explain else {
            return pareto_front(points);
        };
        // Record every evaluated chain in enumeration order; the clone
        // only happens on the audited path.
        let inputs: Vec<(CopyChain, ChainCost)> =
            points.iter().map(|p| p.payload.clone()).collect();
        let (front, verdicts) = pareto_front_explained(points);
        emit_chain_records(sink, &self.array, &inputs, &verdicts);
        front
    }

    /// The hierarchy minimizing the eq. 2 weighted cost
    /// `F_c = α·power + β·size` over all enumerated chains, each costed
    /// with the eq. 3 hierarchy power model.
    ///
    /// Returns the chain and its cost (the baseline when nothing beats
    /// it).
    pub fn best_chain(
        &self,
        opts: &ExploreOptions,
        tech: &MemoryTechnology,
        area: &(impl AreaModel + Sync),
        alpha: f64,
        beta: f64,
    ) -> (CopyChain, ChainCost) {
        let _timer = span("best_chain");
        let threads = crate::par::resolve_threads(opts.threads);
        crate::par::parallel_map(threads, self.chains(opts), |chain| {
            let cost = evaluate_chain(&chain, tech, area);
            (chain, cost)
        })
        .into_iter()
        .min_by(|a, b| {
            a.1.weighted(alpha, beta)
                .total_cmp(&b.1.weighted(alpha, beta))
        })
        .expect("enumeration always includes the baseline")
    }

    /// The `(size, F_R)` pairs of all signal candidates, sorted by size —
    /// the analytical overlay of Fig. 10a/11a.
    pub fn reuse_factor_points(&self) -> Vec<(u64, f64)> {
        let mut pts: Vec<(u64, f64)> = self
            .candidates
            .iter()
            .map(|c| (c.size, c.reuse_factor()))
            .collect();
        pts.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        pts
    }
}

/// Explores every array read anywhere in the program, in declaration
/// order. Arrays without read accesses are skipped.
///
/// # Errors
///
/// Propagates the first per-signal [`AnalyzeError`].
///
/// # Examples
///
/// ```
/// use datareuse_core::{explore_program, ExploreOptions};
/// use datareuse_loopir::parse_program;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program(
///     "array A[23]; array B[16];
///      for j in 0..16 { for k in 0..8 { read A[j + k]; read B[k]; } }",
/// )?;
/// let all = explore_program(&p, &ExploreOptions::default())?;
/// assert_eq!(all.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn explore_program(
    program: &Program,
    opts: &ExploreOptions,
) -> Result<Vec<SignalExploration>, AnalyzeError> {
    explore_program_explained(program, opts, None)
}

/// [`explore_program`] with an optional audit sink shared by all signals
/// (records carry the array name for filtering).
///
/// # Errors
///
/// Propagates the first per-signal [`AnalyzeError`].
pub fn explore_program_explained(
    program: &Program,
    opts: &ExploreOptions,
    explain: Option<&Explain>,
) -> Result<Vec<SignalExploration>, AnalyzeError> {
    let mut out = Vec::new();
    for decl in program.arrays() {
        let read = program.nests().iter().any(|n| {
            n.accesses()
                .iter()
                .any(|a| a.array() == decl.name() && a.kind() == AccessKind::Read)
        });
        if !read {
            continue;
        }
        out.push(explore_signal_explained(program, decl.name(), opts, explain)?);
    }
    Ok(out)
}

/// Builds the per-signal option menus for [`crate::assign_layers`] from a
/// whole-program exploration: each signal's Pareto-front hierarchies
/// (baseline included) evaluated under the given technology.
///
/// # Errors
///
/// Propagates the first per-signal [`AnalyzeError`].
pub fn assignment_menu(
    program: &Program,
    opts: &ExploreOptions,
    tech: &MemoryTechnology,
    area: &(impl AreaModel + Sync),
) -> Result<Vec<crate::assign::SignalOptions>, AnalyzeError> {
    Ok(explore_program(program, opts)?
        .into_iter()
        .map(|ex| crate::assign::SignalOptions {
            array: ex.array.clone(),
            options: ex
                .pareto(opts, tech, area)
                .into_iter()
                .map(|p| p.payload)
                .collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::CandidateSource;
    use datareuse_loopir::parse_program;
    use datareuse_memmodel::BitCount;

    fn simple() -> Program {
        parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }").unwrap()
    }

    #[test]
    fn explores_simple_window() {
        let ex = explore_signal(&simple(), "A", &ExploreOptions::default()).unwrap();
        assert_eq!(ex.c_tot, 128);
        assert_eq!(ex.background_words, 23);
        assert_eq!(ex.groups.len(), 1);
        // Candidates include the max-reuse point (size 7 or 8) and the
        // partial family.
        assert!(ex.candidates.len() >= 5);
        let pts = ex.reuse_factor_points();
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn pareto_contains_baseline_and_improves() {
        let ex = explore_signal(&simple(), "A", &ExploreOptions::default()).unwrap();
        let tech = MemoryTechnology::new();
        let front = ex.pareto(&ExploreOptions::default(), &tech, &BitCount);
        assert!(!front.is_empty());
        // Baseline (size 0, energy 1) is always on the front.
        assert_eq!(front[0].size, 0.0);
        assert!((front[0].power - 1.0).abs() < 1e-12);
        // And something beats the baseline.
        assert!(front.last().unwrap().power < 0.8);
        for w in front.windows(2) {
            assert!(w[1].size > w[0].size);
            assert!(w[1].power < w[0].power);
        }
    }

    #[test]
    fn unknown_array_and_no_access_errors() {
        let p = simple();
        assert!(matches!(
            explore_signal(&p, "Nope", &ExploreOptions::default()),
            Err(AnalyzeError::UnknownArray(_))
        ));
        let q = parse_program("array A[4]; array B[4]; for i in 0..4 { read A[i]; }").unwrap();
        assert!(matches!(
            explore_signal(&q, "B", &ExploreOptions::default()),
            Err(AnalyzeError::NoAccesses(_))
        ));
    }

    #[test]
    fn guarded_fallbacks_are_attributed_by_reason() {
        use datareuse_obs::{counter_value, set_metrics_enabled};
        // A guarded access leaves the symbolic path with the `Guarded`
        // classification; the aggregate counter and its per-reason
        // breakdown must move together so the prom/scorecard breakdown
        // always sums to `sim_fallbacks`.
        let p = parse_program(
            "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k] if j != 3; } }",
        )
        .unwrap();
        let total0 = counter_value(Counter::SimFallbacks);
        let guarded0 = counter_value(Counter::SimFallbackGuarded);
        set_metrics_enabled(true);
        explore_signal(&p, "A", &ExploreOptions::default()).unwrap();
        set_metrics_enabled(false);
        let total = counter_value(Counter::SimFallbacks) - total0;
        let guarded = counter_value(Counter::SimFallbackGuarded) - guarded0;
        assert!(guarded >= 1, "guarded nest must record a guarded fallback");
        assert_eq!(total, guarded, "every fallback here is a guard fallback");
    }

    #[test]
    fn multi_nest_groups_combine() {
        // Two structurally identical nests reading different rows — the
        // SUSAN shape in miniature.
        let p = parse_program(
            "array I[2][30];
             for x in 0..16 { for d in 0..8 { read I[0][x + d]; } }
             for x in 0..16 { for d in 0..8 { read I[1][x + d]; } }",
        )
        .unwrap();
        let ex = explore_signal(&p, "I", &ExploreOptions::default()).unwrap();
        assert_eq!(ex.groups.len(), 2);
        assert_eq!(ex.c_tot, 256);
        assert!(!ex.candidates.is_empty());
        // Combined candidates sum the two groups' buffers.
        for c in &ex.candidates {
            assert_eq!(c.c_tot, 256);
        }
    }

    #[test]
    fn best_chain_respects_the_weights() {
        let ex = explore_signal(&simple(), "A", &ExploreOptions::default()).unwrap();
        let tech = MemoryTechnology::new();
        // Energy-only: a hierarchy wins.
        let (chain, _) = ex.best_chain(&ExploreOptions::default(), &tech, &BitCount, 1.0, 0.0);
        assert!(!chain.levels.is_empty());
        // Size-dominated: the baseline wins.
        let (chain, cost) =
            ex.best_chain(&ExploreOptions::default(), &tech, &BitCount, 0.0, 1.0);
        assert!(chain.levels.is_empty());
        assert_eq!(cost.onchip_words, 0);
    }

    #[test]
    fn options_control_candidate_families() {
        let none = ExploreOptions {
            include_partial: false,
            include_bypass: false,
            ..ExploreOptions::default()
        };
        let all = ExploreOptions::default();
        let p = simple();
        let ex_none = explore_signal(&p, "A", &none).unwrap();
        let ex_all = explore_signal(&p, "A", &all).unwrap();
        assert!(ex_all.candidates.len() > ex_none.candidates.len());
        assert!(ex_none
            .candidates
            .iter()
            .all(|c| !matches!(c.source, CandidateSource::PairPartial { .. })));
    }

    #[test]
    fn parallel_sweep_matches_single_thread() {
        // A 4-deep nest gives 6 loop pairs, so the fan-out is exercised
        // with real work per worker; the Pareto points must be
        // bit-identical between the sequential fallback and any worker
        // count.
        let p = parse_program(
            "array A[1056];
             for f in 0..4 { for j in 0..16 { for k in 0..8 { for d in 0..4 {
                 read A[64*f + 2*j + k + d];
             } } } }",
        )
        .unwrap();
        let single = ExploreOptions {
            threads: Some(1),
            ..ExploreOptions::default()
        };
        let ex_single = explore_signal(&p, "A", &single).unwrap();
        let tech = MemoryTechnology::new();
        let front_single = ex_single.pareto(&single, &tech, &BitCount);
        for workers in [2usize, 4, 16] {
            let multi = ExploreOptions {
                threads: Some(workers),
                ..ExploreOptions::default()
            };
            let ex_multi = explore_signal(&p, "A", &multi).unwrap();
            assert_eq!(ex_single, ex_multi, "candidates differ at {workers} workers");
            let front_multi = ex_multi.pareto(&multi, &tech, &BitCount);
            assert_eq!(front_single.len(), front_multi.len());
            for (a, b) in front_single.iter().zip(&front_multi) {
                assert_eq!(a.size, b.size);
                assert_eq!(a.power, b.power);
                assert_eq!(a.payload.0, b.payload.0);
            }
            let best_single = ex_single.best_chain(&single, &tech, &BitCount, 1.0, 0.1);
            let best_multi = ex_multi.best_chain(&multi, &tech, &BitCount, 1.0, 0.1);
            assert_eq!(best_single.0, best_multi.0);
        }
    }

    #[test]
    fn explore_program_covers_all_read_arrays() {
        let p = parse_program(
            "array A[23]; array B[16]; array C[4];
             for j in 0..16 { for k in 0..8 { read A[j + k]; read B[k]; write C[0]; } }",
        )
        .unwrap();
        let all = explore_program(&p, &ExploreOptions::default()).unwrap();
        let names: Vec<&str> = all.iter().map(|e| e.array.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]); // C is write-only
        assert!(all.iter().all(|e| e.c_tot == 128));
    }

    #[test]
    fn assignment_menu_feeds_the_global_step() {
        let p = parse_program(
            "array A[23]; array B[16];
             for j in 0..16 { for k in 0..8 { read A[j + k]; read B[k]; } }",
        )
        .unwrap();
        let tech = MemoryTechnology::new();
        let menu =
            assignment_menu(&p, &ExploreOptions::default(), &tech, &BitCount).unwrap();
        assert_eq!(menu.len(), 2);
        // Every menu opens with the baseline (size-0) option.
        for m in &menu {
            assert_eq!(m.options[0].1.onchip_words, 0);
            assert!(m.options.len() >= 2);
        }
        let asg = crate::assign::assign_layers(&menu, 1.0, 0.0, None).unwrap();
        assert!(asg.total_words > 0, "hierarchies should win unconstrained");
    }

    #[test]
    fn write_accesses_are_ignored() {
        let p = parse_program(
            "array A[23];
             for j in 0..16 { for k in 0..8 { read A[j + k]; write A[j + k]; } }",
        )
        .unwrap();
        let ex = explore_signal(&p, "A", &ExploreOptions::default()).unwrap();
        assert_eq!(ex.c_tot, 128); // the write does not count
    }
}
