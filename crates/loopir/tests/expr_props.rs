//! Property tests of the affine-expression algebra and the DSL parser.

use proptest::prelude::*;

use datareuse_loopir::{parse_program, AffineExpr};

const ITERS: [&str; 3] = ["i", "j", "k"];

fn arb_expr() -> impl Strategy<Value = AffineExpr> {
    (
        prop::collection::vec((-6i64..=6, 0usize..ITERS.len()), 0..5),
        -20i64..=20,
    )
        .prop_map(|(terms, constant)| {
            let mut e = AffineExpr::constant(constant);
            for (coeff, which) in terms {
                e.add_term(ITERS[which], coeff);
            }
            e
        })
}

fn arb_env() -> impl Strategy<Value = [i64; 3]> {
    [-10i64..=10, -10i64..=10, -10i64..=10]
}

fn eval(e: &AffineExpr, env: &[i64; 3]) -> i64 {
    e.eval(|n| ITERS.iter().position(|&it| it == n).map(|i| env[i]))
}

proptest! {
    /// Evaluation is linear: eval(a + b) = eval(a) + eval(b),
    /// eval(s·a) = s·eval(a), eval(−a) = −eval(a).
    #[test]
    fn evaluation_is_linear(a in arb_expr(), b in arb_expr(), s in -5i64..=5, env in arb_env()) {
        prop_assert_eq!(eval(&(a.clone() + b.clone()), &env), eval(&a, &env) + eval(&b, &env));
        prop_assert_eq!(eval(&a.scaled(s), &env), s * eval(&a, &env));
        prop_assert_eq!(eval(&(-a.clone()), &env), -eval(&a, &env));
        prop_assert_eq!(eval(&(a.clone() - b.clone()), &env), eval(&a, &env) - eval(&b, &env));
    }

    /// Addition is commutative and associative on the normal form.
    #[test]
    fn addition_is_commutative_and_associative(
        a in arb_expr(), b in arb_expr(), c in arb_expr()
    ) {
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        prop_assert_eq!((a.clone() + b.clone()) + c.clone(), a + (b + c));
    }

    /// Substitution agrees with evaluation: substituting `j := r` then
    /// evaluating equals evaluating with `env[j] = eval(r, env)`.
    #[test]
    fn substitution_agrees_with_evaluation(
        e in arb_expr(), r in arb_expr(), mut env in arb_env()
    ) {
        // Substitute for "j" (index 1); the replacement must not mention
        // "j" itself for the comparison to be well-defined.
        let mut r = r;
        r.add_term("j", -r.coeff("j"));
        let substituted = e.substitute("j", &r);
        let direct = {
            env[1] = eval(&r, &env);
            eval(&e, &env)
        };
        prop_assert_eq!(eval(&substituted, &env), direct);
    }

    /// `value_range` is a tight interval: every evaluated point lies
    /// inside, and both endpoints are attained at box corners.
    #[test]
    fn value_range_is_tight(
        e in arb_expr(),
        lo0 in -5i64..=0, w0 in 0i64..=6,
        lo1 in -5i64..=0, w1 in 0i64..=6,
        lo2 in -5i64..=0, w2 in 0i64..=6,
    ) {
        let bounds = [(lo0, lo0 + w0), (lo1, lo1 + w1), (lo2, lo2 + w2)];
        let (lo, hi) = e.value_range(|n| {
            ITERS.iter().position(|&it| it == n).map(|i| bounds[i])
        });
        let mut seen_lo = false;
        let mut seen_hi = false;
        for i in bounds[0].0..=bounds[0].1 {
            for j in bounds[1].0..=bounds[1].1 {
                for k in bounds[2].0..=bounds[2].1 {
                    let v = eval(&e, &[i, j, k]);
                    prop_assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}]");
                    seen_lo |= v == lo;
                    seen_hi |= v == hi;
                }
            }
        }
        prop_assert!(seen_lo && seen_hi, "range endpoints not attained");
    }

    /// Display output of an expression parses back to the same function
    /// (checked through a generated one-loop program using it).
    #[test]
    fn display_parses_back(e in arb_expr(), env in arb_env()) {
        // Constrain to non-negative values over i,j,k in [0, 4] so the
        // access stays in bounds.
        let (lo, hi) = e.value_range(|n| {
            ITERS.iter().position(|&it| it == n).map(|_| (0i64, 4))
        });
        let offset = -lo;
        let extent = hi + offset + 1;
        let shifted = e.clone() + offset;
        let src = format!(
            "array A[{extent}];
             for i in 0..5 {{ for j in 0..5 {{ for k in 0..5 {{ read A[{shifted}]; }} }} }}"
        );
        let program = parse_program(&src).expect("generated DSL parses");
        let parsed = &program.nests()[0].accesses()[0].indices()[0];
        // Compare as functions at a sample point inside the box.
        let env = [env[0].rem_euclid(5), env[1].rem_euclid(5), env[2].rem_euclid(5)];
        prop_assert_eq!(eval(parsed, &env), eval(&shifted, &env));
        // And structurally, thanks to the normal form.
        prop_assert_eq!(parsed, &shifted);
    }

    /// `split` partitions the expression: restricted + base == original.
    #[test]
    fn split_partitions(e in arb_expr(), env in arb_env()) {
        let (restricted, base) = e.split(&["i", "k"]);
        prop_assert_eq!(restricted.coeff("j"), 0);
        prop_assert_eq!(restricted.constant_part(), 0);
        prop_assert_eq!(
            eval(&restricted, &env) + eval(&base, &env),
            eval(&e, &env)
        );
    }
}
