//! Property tests of the affine-expression algebra and the DSL parser,
//! driven by the in-repo deterministic harness (`datareuse-proptest`).

use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config, Rng};

use datareuse_loopir::{parse_program, AffineExpr};

const ITERS: [&str; 3] = ["i", "j", "k"];

/// A generated expression, as shrinkable raw parts: `(terms, constant)`
/// with each term a `(coefficient, iterator index)` pair.
type ExprSpec = (Vec<(i64, usize)>, i64);

fn gen_expr(rng: &mut Rng) -> ExprSpec {
    (
        rng.vec(0, 4, |r| (r.i64_in(-6, 6), r.usize_in(0, ITERS.len() - 1))),
        rng.i64_in(-20, 20),
    )
}

fn build(spec: &ExprSpec) -> AffineExpr {
    let mut e = AffineExpr::constant(spec.1);
    for &(coeff, which) in &spec.0 {
        e.add_term(ITERS[which % ITERS.len()], coeff);
    }
    e
}

fn gen_env(rng: &mut Rng) -> (i64, i64, i64) {
    (rng.i64_in(-10, 10), rng.i64_in(-10, 10), rng.i64_in(-10, 10))
}

fn eval(e: &AffineExpr, env: &[i64; 3]) -> i64 {
    e.eval(|n| ITERS.iter().position(|&it| it == n).map(|i| env[i]))
}

/// Evaluation is linear: eval(a + b) = eval(a) + eval(b),
/// eval(s·a) = s·eval(a), eval(−a) = −eval(a).
#[test]
fn evaluation_is_linear() {
    check(
        "evaluation_is_linear",
        &Config::default(),
        |rng| (gen_expr(rng), gen_expr(rng), rng.i64_in(-5, 5), gen_env(rng)),
        |(sa, sb, s, env)| {
            let (a, b) = (build(sa), build(sb));
            let env = [env.0, env.1, env.2];
            prop_assert_eq!(
                eval(&(a.clone() + b.clone()), &env),
                eval(&a, &env) + eval(&b, &env)
            );
            prop_assert_eq!(eval(&a.scaled(*s), &env), s * eval(&a, &env));
            prop_assert_eq!(eval(&(-a.clone()), &env), -eval(&a, &env));
            prop_assert_eq!(
                eval(&(a.clone() - b.clone()), &env),
                eval(&a, &env) - eval(&b, &env)
            );
            Ok(())
        },
    );
}

/// Addition is commutative and associative on the normal form.
#[test]
fn addition_is_commutative_and_associative() {
    check(
        "addition_is_commutative_and_associative",
        &Config::default(),
        |rng| (gen_expr(rng), gen_expr(rng), gen_expr(rng)),
        |(sa, sb, sc)| {
            let (a, b, c) = (build(sa), build(sb), build(sc));
            prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
            prop_assert_eq!((a.clone() + b.clone()) + c.clone(), a + (b + c));
            Ok(())
        },
    );
}

/// Substitution agrees with evaluation: substituting `j := r` then
/// evaluating equals evaluating with `env[j] = eval(r, env)`.
#[test]
fn substitution_agrees_with_evaluation() {
    check(
        "substitution_agrees_with_evaluation",
        &Config::default(),
        |rng| (gen_expr(rng), gen_expr(rng), gen_env(rng)),
        |(se, sr, env)| {
            let e = build(se);
            // The replacement must not mention "j" itself for the
            // comparison to be well-defined.
            let mut r = build(sr);
            r.add_term("j", -r.coeff("j"));
            let substituted = e.substitute("j", &r);
            let mut env = [env.0, env.1, env.2];
            let direct = {
                env[1] = eval(&r, &env);
                eval(&e, &env)
            };
            prop_assert_eq!(eval(&substituted, &env), direct);
            Ok(())
        },
    );
}

/// `value_range` is a tight interval: every evaluated point lies
/// inside, and both endpoints are attained at box corners.
#[test]
fn value_range_is_tight() {
    check(
        "value_range_is_tight",
        &Config::default(),
        |rng| {
            (
                gen_expr(rng),
                (rng.i64_in(-5, 0), rng.i64_in(0, 6)),
                (rng.i64_in(-5, 0), rng.i64_in(0, 6)),
                (rng.i64_in(-5, 0), rng.i64_in(0, 6)),
            )
        },
        |(se, b0, b1, b2)| {
            for (lo, w) in [b0, b1, b2] {
                if *lo > 0 || *w < 0 {
                    return Ok(()); // shrunk out of the generator domain
                }
            }
            let e = build(se);
            let bounds = [
                (b0.0, b0.0 + b0.1),
                (b1.0, b1.0 + b1.1),
                (b2.0, b2.0 + b2.1),
            ];
            let (lo, hi) =
                e.value_range(|n| ITERS.iter().position(|&it| it == n).map(|i| bounds[i]));
            let mut seen_lo = false;
            let mut seen_hi = false;
            for i in bounds[0].0..=bounds[0].1 {
                for j in bounds[1].0..=bounds[1].1 {
                    for k in bounds[2].0..=bounds[2].1 {
                        let v = eval(&e, &[i, j, k]);
                        prop_assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}]");
                        seen_lo |= v == lo;
                        seen_hi |= v == hi;
                    }
                }
            }
            prop_assert!(seen_lo && seen_hi, "range endpoints not attained");
            Ok(())
        },
    );
}

/// Display output of an expression parses back to the same function
/// (checked through a generated one-loop program using it).
#[test]
fn display_parses_back() {
    check(
        "display_parses_back",
        &Config::default(),
        |rng| (gen_expr(rng), gen_env(rng)),
        |(se, env)| {
            let e = build(se);
            // Constrain to non-negative values over i,j,k in [0, 4] so the
            // access stays in bounds.
            let (lo, hi) =
                e.value_range(|n| ITERS.iter().position(|&it| it == n).map(|_| (0i64, 4)));
            let offset = -lo;
            let extent = hi + offset + 1;
            let shifted = e.clone() + offset;
            let src = format!(
                "array A[{extent}];
                 for i in 0..5 {{ for j in 0..5 {{ for k in 0..5 {{ read A[{shifted}]; }} }} }}"
            );
            let program = parse_program(&src).expect("generated DSL parses");
            let parsed = &program.nests()[0].accesses()[0].indices()[0];
            // Compare as functions at a sample point inside the box.
            let env = [
                env.0.rem_euclid(5),
                env.1.rem_euclid(5),
                env.2.rem_euclid(5),
            ];
            prop_assert_eq!(eval(parsed, &env), eval(&shifted, &env));
            // And structurally, thanks to the normal form.
            prop_assert_eq!(parsed, &shifted);
            Ok(())
        },
    );
}

/// `split` partitions the expression: restricted + base == original.
#[test]
fn split_partitions() {
    check(
        "split_partitions",
        &Config::default(),
        |rng| (gen_expr(rng), gen_env(rng)),
        |(se, env)| {
            let e = build(se);
            let env = [env.0, env.1, env.2];
            let (restricted, base) = e.split(&["i", "k"]);
            prop_assert_eq!(restricted.coeff("j"), 0);
            prop_assert_eq!(restricted.constant_part(), 0);
            prop_assert_eq!(eval(&restricted, &env) + eval(&base, &env), eval(&e, &env));
            Ok(())
        },
    );
}
