//! Affine index expressions over loop iterators.
//!
//! Every array index handled by the analytical model of the paper is an
//! *affine* function of the loop iterators:
//!
//! ```text
//! y = b * j + c * k + constant            (paper, Section 5.2)
//! ```
//!
//! [`AffineExpr`] generalizes this to any number of iterators. Coefficients
//! and constants are `i64`; the model works on exact integer arithmetic
//! throughout (no floating point is involved until cost evaluation).

use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `Σ coefᵢ · iterᵢ + constant` over named loop
/// iterators.
///
/// Internally the terms are kept in a sorted map with all zero coefficients
/// removed, so two expressions that denote the same affine function compare
/// equal with `==`.
///
/// # Examples
///
/// ```
/// use datareuse_loopir::AffineExpr;
///
/// // 8*i1 + i3 + i5
/// let e = AffineExpr::var("i1").scaled(8) + AffineExpr::var("i3") + AffineExpr::var("i5");
/// assert_eq!(e.coeff("i1"), 8);
/// assert_eq!(e.coeff("i5"), 1);
/// assert_eq!(e.coeff("i2"), 0);
/// assert_eq!(e.to_string(), "8*i1 + i3 + i5");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    terms: BTreeMap<String, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    ///
    /// ```
    /// use datareuse_loopir::AffineExpr;
    /// assert!(AffineExpr::new().is_constant());
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(value: i64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// The expression consisting of a single iterator with coefficient 1.
    pub fn var(name: impl Into<String>) -> Self {
        Self::term(name, 1)
    }

    /// The expression `coeff * name`.
    pub fn term(name: impl Into<String>, coeff: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(name.into(), coeff);
        }
        Self { terms, constant: 0 }
    }

    /// Returns the coefficient of iterator `name` (0 when absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Returns the additive constant.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Returns this expression scaled by `factor`.
    pub fn scaled(&self, factor: i64) -> Self {
        if factor == 0 {
            return Self::new();
        }
        Self {
            terms: self
                .terms
                .iter()
                .map(|(n, c)| (n.clone(), c * factor))
                .collect(),
            constant: self.constant * factor,
        }
    }

    /// Adds `coeff * name` in place.
    pub fn add_term(&mut self, name: impl Into<String>, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let name = name.into();
        let entry = self.terms.entry(name.clone()).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.terms.remove(&name);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, value: i64) {
        self.constant += value;
    }

    /// True when the expression contains no iterator terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterator names with non-zero coefficients, in sorted order.
    pub fn iterators(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Number of iterators with non-zero coefficients.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Evaluates the expression for concrete iterator values.
    ///
    /// Iterators absent from `env` contribute `coeff * 0`; this matches the
    /// paper's treatment of outer-loop iterators as constants folded into the
    /// base offset when analyzing an inner loop pair.
    pub fn eval<'a, F>(&self, env: F) -> i64
    where
        F: Fn(&str) -> Option<i64> + 'a,
    {
        self.terms
            .iter()
            .map(|(n, c)| c * env(n).unwrap_or(0))
            .sum::<i64>()
            + self.constant
    }

    /// Evaluates against a slice of `(name, value)` bindings.
    pub fn eval_bindings(&self, bindings: &[(&str, i64)]) -> i64 {
        self.eval(|n| bindings.iter().find(|(b, _)| *b == n).map(|(_, v)| *v))
    }

    /// Substitutes `name := replacement` and returns the result.
    ///
    /// Used to normalize loops with step sizes larger than 1: the paper notes
    /// the theory "is easily extended to loops with incremental step sizes
    /// larger than 1, by (temporarily) transforming the loop nest to a loop
    /// nest with a step size equal to 1" — which is exactly the substitution
    /// `i := step * i' + lower`.
    pub fn substitute(&self, name: &str, replacement: &AffineExpr) -> Self {
        let mut out = Self::constant(self.constant);
        for (n, c) in &self.terms {
            if n == name {
                let scaled = replacement.scaled(*c);
                for (rn, rc) in &scaled.terms {
                    out.add_term(rn.clone(), *rc);
                }
                out.add_constant(scaled.constant);
            } else {
                out.add_term(n.clone(), *c);
            }
        }
        out
    }

    /// Restricts the expression to the given iterators, folding everything
    /// else (including the constant) into the returned base constant.
    ///
    /// Returns `(restricted, base)` where `restricted` contains only terms on
    /// `keep` (with zero constant) and `base` is the symbolic remainder.
    pub fn split(&self, keep: &[&str]) -> (AffineExpr, AffineExpr) {
        let mut restricted = AffineExpr::new();
        let mut base = AffineExpr::constant(self.constant);
        for (n, c) in &self.terms {
            if keep.contains(&n.as_str()) {
                restricted.add_term(n.clone(), *c);
            } else {
                base.add_term(n.clone(), *c);
            }
        }
        (restricted, base)
    }

    /// The value range `[min, max]` of this expression when each iterator
    /// ranges over the inclusive interval given by `bounds(name)`.
    ///
    /// Iterators not covered by `bounds` are treated as fixed at 0 (i.e.
    /// excluded from the range computation); callers fold outer iterators
    /// into a base offset first via [`AffineExpr::split`].
    pub fn value_range<F>(&self, bounds: F) -> (i64, i64)
    where
        F: Fn(&str) -> Option<(i64, i64)>,
    {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (n, c) in &self.terms {
            if let Some((bl, bu)) = bounds(n) {
                debug_assert!(bl <= bu, "empty iterator interval for {n}");
                if *c >= 0 {
                    lo += c * bl;
                    hi += c * bu;
                } else {
                    lo += c * bu;
                    hi += c * bl;
                }
            }
        }
        (lo, hi)
    }
}

impl std::ops::Add for AffineExpr {
    type Output = AffineExpr;

    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        for (n, c) in rhs.terms {
            self.add_term(n, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl std::ops::Add<i64> for AffineExpr {
    type Output = AffineExpr;

    fn add(mut self, rhs: i64) -> AffineExpr {
        self.constant += rhs;
        self
    }
}

impl std::ops::Sub for AffineExpr {
    type Output = AffineExpr;

    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + rhs.scaled(-1)
    }
}

impl std::ops::Neg for AffineExpr {
    type Output = AffineExpr;

    fn neg(self) -> AffineExpr {
        self.scaled(-1)
    }
}

impl From<i64> for AffineExpr {
    fn from(value: i64) -> Self {
        AffineExpr::constant(value)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    c => write!(f, "{c}*{n}")?,
                }
                first = false;
            } else {
                let sign = if *c < 0 { '-' } else { '+' };
                match c.abs() {
                    1 => write!(f, " {sign} {n}")?,
                    a => write!(f, " {sign} {a}*{n}")?,
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            let sign = if self.constant < 0 { '-' } else { '+' };
            write!(f, " {sign} {}", self.constant.abs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coefficients_are_normalized_away() {
        let mut e = AffineExpr::var("i");
        e.add_term("i", -1);
        assert!(e.is_constant());
        assert_eq!(e, AffineExpr::constant(0));
        assert_eq!(AffineExpr::term("j", 0), AffineExpr::new());
    }

    #[test]
    fn display_formats_signs_and_units() {
        let e = AffineExpr::term("i", 2) - AffineExpr::var("j") + 3;
        assert_eq!(e.to_string(), "2*i - j + 3");
        assert_eq!(AffineExpr::constant(-4).to_string(), "-4");
        assert_eq!((-AffineExpr::var("k")).to_string(), "-k");
        assert_eq!(AffineExpr::new().to_string(), "0");
    }

    #[test]
    fn eval_uses_bindings_and_defaults_missing_to_zero() {
        let e = AffineExpr::term("i", 3) + AffineExpr::term("j", -2) + 7;
        assert_eq!(e.eval_bindings(&[("i", 2), ("j", 5)]), 3);
        assert_eq!(e.eval_bindings(&[("i", 2)]), 13);
    }

    #[test]
    fn substitute_performs_step_normalization() {
        // i := 2*i' + 1 inside 3*i + j
        let e = AffineExpr::term("i", 3) + AffineExpr::var("j");
        let repl = AffineExpr::term("ip", 2) + 1;
        let out = e.substitute("i", &repl);
        assert_eq!(out.coeff("ip"), 6);
        assert_eq!(out.coeff("j"), 1);
        assert_eq!(out.constant_part(), 3);
    }

    #[test]
    fn split_separates_inner_iterators_from_base() {
        let e = AffineExpr::term("i1", 8) + AffineExpr::var("i3") + AffineExpr::var("i5") + 2;
        let (inner, base) = e.split(&["i3", "i5"]);
        assert_eq!(inner.coeff("i3"), 1);
        assert_eq!(inner.coeff("i5"), 1);
        assert_eq!(inner.constant_part(), 0);
        assert_eq!(base.coeff("i1"), 8);
        assert_eq!(base.constant_part(), 2);
    }

    #[test]
    fn value_range_handles_negative_coefficients() {
        let e = AffineExpr::term("i", -2) + AffineExpr::var("j");
        let (lo, hi) = e.value_range(|n| match n {
            "i" => Some((0, 3)),
            "j" => Some((1, 4)),
            _ => None,
        });
        assert_eq!((lo, hi), (-5, 4));
    }

    #[test]
    fn add_sub_neg_compose() {
        let a = AffineExpr::var("x") + 1;
        let b = AffineExpr::term("x", 4) - AffineExpr::var("y");
        let s = a.clone() + b.clone();
        assert_eq!(s.coeff("x"), 5);
        assert_eq!(s.coeff("y"), -1);
        assert_eq!(s.constant_part(), 1);
        let d = b - a;
        assert_eq!(d.coeff("x"), 3);
        assert_eq!(d.constant_part(), -1);
    }
}
