//! Loop nests, array declarations and array accesses.
//!
//! A [`Program`] is a sequence of perfectly nested [`LoopNest`]s over a set
//! of declared [`ArrayDecl`]s — the shape the DTSE pre-processing steps of
//! the paper (single-assignment conversion, loop transformations) hand to the
//! data reuse step. Each nest body is a list of [`Access`]es executed once
//! per innermost iteration, optionally guarded by a simple affine condition
//! (needed for the SUSAN test-vehicle, whose middle-row loop skips the
//! reference pixel position).

use std::fmt;

use crate::error::BuildNestError;
use crate::expr::AffineExpr;

/// One loop of a nest with **inclusive** integer bounds, matching the
/// paper's `jL`/`jU` notation, and a positive step.
///
/// # Examples
///
/// ```
/// use datareuse_loopir::Loop;
///
/// let l = Loop::new("j", 0, 15);        // j = 0, 1, ..., 15
/// assert_eq!(l.range(), 16);            // jRANGE = jU - jL + 1  (paper eq. 10)
/// let s = Loop::with_step("k", 0, 9, 3); // k = 0, 3, 6, 9
/// assert_eq!(s.trip_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loop {
    name: String,
    lower: i64,
    upper: i64,
    step: i64,
}

impl Loop {
    /// Creates a unit-step loop over the inclusive interval `[lower, upper]`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`. Use [`Loop::try_new`] for a fallible
    /// variant.
    pub fn new(name: impl Into<String>, lower: i64, upper: i64) -> Self {
        Self::with_step(name, lower, upper, 1)
    }

    /// Creates a loop with an explicit step.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `step < 1`.
    pub fn with_step(name: impl Into<String>, lower: i64, upper: i64, step: i64) -> Self {
        Self::try_with_step(name, lower, upper, step).expect("invalid loop")
    }

    /// Fallible constructor for a unit-step loop.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNestError::EmptyLoop`] when `lower > upper`.
    pub fn try_new(name: impl Into<String>, lower: i64, upper: i64) -> Result<Self, BuildNestError> {
        Self::try_with_step(name, lower, upper, 1)
    }

    /// Fallible constructor with an explicit step.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNestError::EmptyLoop`] when `lower > upper` and
    /// [`BuildNestError::BadStep`] when `step < 1`.
    pub fn try_with_step(
        name: impl Into<String>,
        lower: i64,
        upper: i64,
        step: i64,
    ) -> Result<Self, BuildNestError> {
        let name = name.into();
        if step < 1 {
            return Err(BuildNestError::BadStep { name, step });
        }
        if lower > upper {
            return Err(BuildNestError::EmptyLoop { name, lower, upper });
        }
        Ok(Self {
            name,
            lower,
            upper,
            step,
        })
    }

    /// The iterator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inclusive lower bound (the paper's `jL`).
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Inclusive upper bound (the paper's `jU`).
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Loop step (≥ 1).
    pub fn step(&self) -> i64 {
        self.step
    }

    /// `upper - lower + 1`, the paper's `jRANGE` (eq. 10/11). Only equals the
    /// trip count for unit-step loops.
    pub fn range(&self) -> i64 {
        self.upper - self.lower + 1
    }

    /// Number of iterations executed.
    pub fn trip_count(&self) -> u64 {
        ((self.upper - self.lower) / self.step + 1) as u64
    }

    /// Iterator values in execution order.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        (self.lower..=self.upper).step_by(self.step as usize)
    }

    /// Normalizes the loop to step 1 starting at 0, returning the new loop
    /// and the substitution `old := step * new + lower` to apply to index
    /// expressions (the paper's temporary transformation for step sizes > 1).
    pub fn normalized(&self) -> (Loop, AffineExpr) {
        let trip = self.trip_count() as i64;
        let fresh = Loop::new(self.name.clone(), 0, trip - 1);
        let subst = AffineExpr::term(self.name.clone(), self.step) + self.lower;
        (fresh, subst)
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.step == 1 {
            write!(f, "for {} in {}..={}", self.name, self.lower, self.upper)
        } else {
            write!(
                f,
                "for {} in {}..={} step {}",
                self.name, self.lower, self.upper, self.step
            )
        }
    }
}

/// A declared multi-dimensional array signal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayDecl {
    name: String,
    extents: Vec<i64>,
    elem_bits: u32,
}

impl ArrayDecl {
    /// Declares `name[extents[0]][extents[1]]...` with `elem_bits`-bit
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNestError::BadExtent`] when any extent is < 1.
    pub fn new(
        name: impl Into<String>,
        extents: impl IntoIterator<Item = i64>,
        elem_bits: u32,
    ) -> Result<Self, BuildNestError> {
        let name = name.into();
        let extents: Vec<i64> = extents.into_iter().collect();
        if let Some(&extent) = extents.iter().find(|&&e| e < 1) {
            return Err(BuildNestError::BadExtent {
                array: name,
                extent,
            });
        }
        Ok(Self {
            name,
            extents,
            elem_bits,
        })
    }

    /// The array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Element width in bits.
    pub fn elem_bits(&self) -> u32 {
        self.elem_bits
    }

    /// Total number of elements.
    pub fn len(&self) -> u64 {
        self.extents.iter().product::<i64>() as u64
    }

    /// True for a degenerate zero-dimensional declaration.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Row-major linearization of a concrete index vector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `indices` has the wrong rank or any index
    /// lies outside its extent.
    pub fn linearize(&self, indices: &[i64]) -> u64 {
        debug_assert_eq!(indices.len(), self.extents.len());
        let mut addr: i64 = 0;
        for (i, &extent) in indices.iter().zip(&self.extents) {
            debug_assert!(
                (0..extent).contains(i),
                "index {i} outside [0, {extent}) in array {}",
                self.name
            );
            addr = addr * extent + i;
        }
        addr as u64
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array {}", self.name)?;
        for e in &self.extents {
            write!(f, "[{e}]")?;
        }
        write!(f, " bits {}", self.elem_bits)
    }
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of the array element.
    Read,
    /// A write to the array element.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Read => write!(f, "read"),
            Self::Write => write!(f, "write"),
        }
    }
}

/// Comparison operator in an access guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two integers.
    pub fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Self::Eq => lhs == rhs,
            Self::Ne => lhs != rhs,
            Self::Lt => lhs < rhs,
            Self::Le => lhs <= rhs,
            Self::Gt => lhs > rhs,
            Self::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Eq => "==",
            Self::Ne => "!=",
            Self::Lt => "<",
            Self::Le => "<=",
            Self::Gt => ">",
            Self::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An affine guard `lhs op rhs` restricting when an access executes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Left-hand affine expression.
    pub lhs: AffineExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand affine expression.
    pub rhs: AffineExpr,
}

impl Guard {
    /// Creates a guard `lhs op rhs`.
    pub fn new(lhs: AffineExpr, op: CmpOp, rhs: AffineExpr) -> Self {
        Self { lhs, op, rhs }
    }

    /// Evaluates the guard for concrete iterator values.
    pub fn holds<F>(&self, env: F) -> bool
    where
        F: Fn(&str) -> Option<i64> + Copy,
    {
        self.op.holds(self.lhs.eval(env), self.rhs.eval(env))
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// One array access in a nest body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Access {
    array: String,
    kind: AccessKind,
    indices: Vec<AffineExpr>,
    guards: Vec<Guard>,
}

impl Access {
    /// Creates a read access `array[indices...]`.
    pub fn read(array: impl Into<String>, indices: impl IntoIterator<Item = AffineExpr>) -> Self {
        Self {
            array: array.into(),
            kind: AccessKind::Read,
            indices: indices.into_iter().collect(),
            guards: Vec::new(),
        }
    }

    /// Creates a write access `array[indices...]`.
    pub fn write(array: impl Into<String>, indices: impl IntoIterator<Item = AffineExpr>) -> Self {
        Self {
            kind: AccessKind::Write,
            ..Self::read(array, indices)
        }
    }

    /// Attaches a guard; the access only executes when *all* attached
    /// guards hold. May be called repeatedly to build a conjunction (the
    /// SUSAN circular mask needs `dx >= -w && dx <= w`).
    pub fn with_guard(mut self, guard: Guard) -> Self {
        self.guards.push(guard);
        self
    }

    /// The accessed array name.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// Read or write.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Per-dimension affine index expressions.
    pub fn indices(&self) -> &[AffineExpr] {
        &self.indices
    }

    /// The conjunction of guards (empty = unconditional).
    pub fn guards(&self) -> &[Guard] {
        &self.guards
    }

    /// True when this is a read.
    pub fn is_read(&self) -> bool {
        self.kind == AccessKind::Read
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.array)?;
        for idx in &self.indices {
            write!(f, "[{idx}]")?;
        }
        for (i, g) in self.guards.iter().enumerate() {
            write!(f, "{} {g}", if i == 0 { " if" } else { " &&" })?;
        }
        Ok(())
    }
}

/// A perfectly nested loop with a flat body of accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    loops: Vec<Loop>,
    accesses: Vec<Access>,
}

impl LoopNest {
    /// Creates a nest; `loops[0]` is outermost.
    pub fn new(
        loops: impl IntoIterator<Item = Loop>,
        accesses: impl IntoIterator<Item = Access>,
    ) -> Self {
        Self {
            loops: loops.into_iter().collect(),
            accesses: accesses.into_iter().collect(),
        }
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The body accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Nesting depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Looks up a loop by iterator name and returns its depth index.
    pub fn loop_index(&self, name: &str) -> Option<usize> {
        self.loops.iter().position(|l| l.name() == name)
    }

    /// Total number of innermost iterations.
    pub fn iteration_count(&self) -> u64 {
        self.loops.iter().map(Loop::trip_count).product()
    }

    /// Returns a nest with its loops re-ordered by `permutation`
    /// (`permutation[new_depth] = old_depth`); the body is unchanged.
    ///
    /// Rectangular bounds make every permutation well-formed, which is the
    /// "certain freedom in loop nest ordering ... still available" after the
    /// DTSE loop-transformation step that the data reuse step explores
    /// per ordering.
    ///
    /// # Panics
    ///
    /// Panics when `permutation` is not a permutation of `0..depth`.
    ///
    /// # Examples
    ///
    /// ```
    /// use datareuse_loopir::{Access, AffineExpr, Loop, LoopNest};
    ///
    /// let nest = LoopNest::new(
    ///     [Loop::new("i", 0, 3), Loop::new("j", 0, 7)],
    ///     [Access::read("A", [AffineExpr::var("i") + AffineExpr::var("j")])],
    /// );
    /// let swapped = nest.with_loop_order(&[1, 0]);
    /// assert_eq!(swapped.loops()[0].name(), "j");
    /// assert_eq!(swapped.iteration_count(), nest.iteration_count());
    /// ```
    pub fn with_loop_order(&self, permutation: &[usize]) -> LoopNest {
        assert_eq!(permutation.len(), self.loops.len(), "wrong permutation size");
        let mut seen = vec![false; self.loops.len()];
        for &p in permutation {
            assert!(
                p < self.loops.len() && !seen[p],
                "not a permutation of 0..depth"
            );
            seen[p] = true;
        }
        LoopNest {
            loops: permutation.iter().map(|&p| self.loops[p].clone()).collect(),
            accesses: self.accesses.clone(),
        }
    }

    /// Returns a nest with all loops normalized to step 1 from 0 and all
    /// index expressions and guards rewritten accordingly.
    pub fn normalized(&self) -> LoopNest {
        let mut loops = Vec::with_capacity(self.loops.len());
        let mut substs: Vec<(String, AffineExpr)> = Vec::new();
        for l in &self.loops {
            let (fresh, subst) = l.normalized();
            if l.step() != 1 || l.lower() != 0 {
                substs.push((l.name().to_string(), subst));
            }
            loops.push(fresh);
        }
        let rewrite = |e: &AffineExpr| {
            let mut out = e.clone();
            for (name, subst) in &substs {
                out = out.substitute(name, subst);
            }
            out
        };
        let accesses = self
            .accesses
            .iter()
            .map(|a| {
                Access {
                    array: a.array.clone(),
                    kind: a.kind,
                    indices: a.indices.iter().map(&rewrite).collect(),
                    guards: a
                        .guards
                        .iter()
                        .map(|g| Guard::new(rewrite(&g.lhs), g.op, rewrite(&g.rhs)))
                        .collect(),
                }
            })
            .collect();
        LoopNest { loops, accesses }
    }

    /// Validates iterator uniqueness and that every index expression only
    /// mentions bound iterators.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`BuildNestError`].
    pub fn validate(&self) -> Result<(), BuildNestError> {
        for (i, l) in self.loops.iter().enumerate() {
            if self.loops[..i].iter().any(|p| p.name() == l.name()) {
                return Err(BuildNestError::DuplicateIterator(l.name().to_string()));
            }
        }
        for a in &self.accesses {
            for expr in a
                .indices
                .iter()
                .chain(a.guards.iter().flat_map(|g| [&g.lhs, &g.rhs]))
            {
                for it in expr.iterators() {
                    if self.loop_index(it).is_none() {
                        return Err(BuildNestError::UnboundIterator {
                            array: a.array.clone(),
                            iterator: it.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (d, l) in self.loops.iter().enumerate() {
            writeln!(f, "{:indent$}{l} {{", "", indent = d * 2)?;
        }
        for a in &self.accesses {
            writeln!(f, "{:indent$}{a};", "", indent = self.loops.len() * 2)?;
        }
        for d in (0..self.loops.len()).rev() {
            writeln!(f, "{:indent$}}}", "", indent = d * 2)?;
        }
        Ok(())
    }
}

/// A whole program: array declarations plus loop nests in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an array declaration.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNestError::DuplicateArray`] when the name is taken.
    pub fn declare(&mut self, array: ArrayDecl) -> Result<(), BuildNestError> {
        if self.array(array.name()).is_some() {
            return Err(BuildNestError::DuplicateArray(array.name().to_string()));
        }
        self.arrays.push(array);
        Ok(())
    }

    /// Appends a loop nest, validating it against the declared arrays.
    ///
    /// # Errors
    ///
    /// Propagates any [`BuildNestError`] detected in the nest or its
    /// accesses (unknown array, dimension mismatch, reachable out-of-bounds
    /// index, ...).
    pub fn push_nest(&mut self, nest: LoopNest) -> Result<(), BuildNestError> {
        nest.validate()?;
        for a in nest.accesses() {
            let decl = self
                .array(a.array())
                .ok_or_else(|| BuildNestError::UnknownArray(a.array().to_string()))?;
            if a.indices().len() != decl.rank() {
                return Err(BuildNestError::DimensionMismatch {
                    array: a.array().to_string(),
                    declared: decl.rank(),
                    used: a.indices().len(),
                });
            }
            for (dim, (expr, &extent)) in a.indices().iter().zip(decl.extents()).enumerate() {
                let range = expr.value_range(|n| {
                    nest.loops()
                        .iter()
                        .find(|l| l.name() == n)
                        .map(|l| (l.lower(), l.upper()))
                });
                if range.0 < 0 || range.1 >= extent {
                    return Err(BuildNestError::OutOfBounds {
                        array: a.array().to_string(),
                        dim,
                        range,
                        extent,
                    });
                }
            }
        }
        self.nests.push(nest);
        Ok(())
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Loop nests in execution order.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Looks up an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name() == name)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.arrays {
            writeln!(f, "{a};")?;
        }
        for n in &self.nests {
            writeln!(f)?;
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me_like_nest() -> LoopNest {
        LoopNest::new(
            [Loop::new("j", 0, 15), Loop::new("k", 0, 7)],
            [Access::read(
                "Old",
                [AffineExpr::var("j") + AffineExpr::var("k")],
            )],
        )
    }

    #[test]
    fn loop_ranges_match_paper_notation() {
        let l = Loop::new("j", 2, 9);
        assert_eq!(l.range(), 8);
        assert_eq!(l.trip_count(), 8);
        assert_eq!(l.values().collect::<Vec<_>>(), (2..=9).collect::<Vec<_>>());
    }

    #[test]
    fn stepped_loop_normalization_rewrites_indices() {
        let nest = LoopNest::new(
            [Loop::with_step("i", 4, 10, 2)],
            [Access::read("A", [AffineExpr::var("i")])],
        );
        let norm = nest.normalized();
        let l = &norm.loops()[0];
        assert_eq!((l.lower(), l.upper(), l.step()), (0, 3, 1));
        let idx = &norm.accesses()[0].indices()[0];
        assert_eq!(idx.coeff("i"), 2);
        assert_eq!(idx.constant_part(), 4);
    }

    #[test]
    fn empty_or_bad_loops_are_rejected() {
        assert!(matches!(
            Loop::try_new("i", 5, 4),
            Err(BuildNestError::EmptyLoop { .. })
        ));
        assert!(matches!(
            Loop::try_with_step("i", 0, 4, 0),
            Err(BuildNestError::BadStep { .. })
        ));
    }

    #[test]
    fn validate_catches_duplicate_and_unbound_iterators() {
        let dup = LoopNest::new([Loop::new("i", 0, 1), Loop::new("i", 0, 1)], []);
        assert!(matches!(
            dup.validate(),
            Err(BuildNestError::DuplicateIterator(_))
        ));
        let unbound = LoopNest::new(
            [Loop::new("i", 0, 1)],
            [Access::read("A", [AffineExpr::var("q")])],
        );
        assert!(matches!(
            unbound.validate(),
            Err(BuildNestError::UnboundIterator { .. })
        ));
    }

    #[test]
    fn program_bounds_checking_rejects_reachable_overflow() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("Old", [16], 8).unwrap()).unwrap();
        // j + k reaches 22 > 15.
        let err = p.push_nest(me_like_nest()).unwrap_err();
        assert!(matches!(err, BuildNestError::OutOfBounds { dim: 0, .. }));

        let mut ok = Program::new();
        ok.declare(ArrayDecl::new("Old", [23], 8).unwrap()).unwrap();
        ok.push_nest(me_like_nest()).unwrap();
        assert_eq!(ok.nests().len(), 1);
    }

    #[test]
    fn linearize_is_row_major() {
        let a = ArrayDecl::new("A", [3, 4], 16).unwrap();
        assert_eq!(a.linearize(&[0, 0]), 0);
        assert_eq!(a.linearize(&[1, 0]), 4);
        assert_eq!(a.linearize(&[2, 3]), 11);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn guards_evaluate() {
        let g = Guard::new(AffineExpr::var("i"), CmpOp::Ne, AffineExpr::constant(3));
        assert!(g.holds(|_| Some(2)));
        assert!(!g.holds(|_| Some(3)));
        assert_eq!(g.to_string(), "i != 3");
    }

    #[test]
    fn display_round_trips_visually() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("Old", [23], 8).unwrap()).unwrap();
        p.push_nest(me_like_nest()).unwrap();
        let s = p.to_string();
        assert!(s.contains("array Old[23] bits 8;"));
        assert!(s.contains("for j in 0..=15 {"));
        assert!(s.contains("read Old[j + k];"));
    }

    #[test]
    fn duplicate_array_rejected() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [4], 8).unwrap()).unwrap();
        assert!(matches!(
            p.declare(ArrayDecl::new("A", [4], 8).unwrap()),
            Err(BuildNestError::DuplicateArray(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [4, 4], 8).unwrap()).unwrap();
        let nest = LoopNest::new(
            [Loop::new("i", 0, 3)],
            [Access::read("A", [AffineExpr::var("i")])],
        );
        assert!(matches!(
            p.push_nest(nest),
            Err(BuildNestError::DimensionMismatch { .. })
        ));
    }
}
