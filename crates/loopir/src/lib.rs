//! # datareuse-loopir
//!
//! Loop-nest intermediate representation for the `datareuse` project — a
//! reproduction of *"Data Reuse Exploration Techniques for Loop-dominated
//! Applications"* (Van Achteren, Deconinck, Catthoor, Lauwereins — DATE
//! 2002).
//!
//! The paper's data reuse step analyzes *read accesses with affine index
//! expressions in nested loops*. This crate provides exactly that substrate:
//!
//! - [`AffineExpr`] — exact integer affine expressions over loop iterators;
//! - [`Loop`], [`LoopNest`], [`Access`], [`ArrayDecl`], [`Program`] — the IR
//!   handed to the reuse step after DTSE pre-processing;
//! - [`IterSpace`] — lexicographic iteration-space walking;
//! - [`trace_array`] / [`read_addresses`] — linearized address traces used
//!   by the simulation-based validation;
//! - [`parse_program`] — a small text DSL front end.
//!
//! # Examples
//!
//! Build the paper's generic inner loop pair (Fig. 5) and trace it:
//!
//! ```
//! use datareuse_loopir::{
//!     Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program, read_addresses,
//! };
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = Program::new();
//! program.declare(ArrayDecl::new("A", [64], 16)?)?;
//! // for j in 0..=7 { for k in 0..=7 { ... A[2*j + 3*k] ... } }
//! let index = AffineExpr::term("j", 2) + AffineExpr::term("k", 3);
//! program.push_nest(LoopNest::new(
//!     [Loop::new("j", 0, 7), Loop::new("k", 0, 7)],
//!     [Access::read("A", [index])],
//! ))?;
//! let trace = read_addresses(&program, "A");
//! assert_eq!(trace.len(), 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod nest;
mod parse;
mod trace;
mod walk;

pub use error::{BuildNestError, ParseNestError};
pub use expr::AffineExpr;
pub use nest::{Access, AccessKind, ArrayDecl, CmpOp, Guard, Loop, LoopNest, Program};
pub use parse::parse_program;
pub use trace::{read_addresses, trace_array, trace_len, TraceEvent, TraceFilter};
pub use walk::{time_of, IterSpace};
