//! Iteration-space walking.
//!
//! [`IterSpace`] enumerates the points of a [`LoopNest`]'s iteration space in
//! lexicographic (execution) order — the "relative time order of the
//! accesses" the paper's Fig. 1 visualizes. It is the workhorse behind trace
//! generation and the simulation-based validation of the analytical model.

use crate::nest::{Loop, LoopNest};

/// Iterator over all points of a loop nest's iteration space in execution
/// order. Each item is the vector of iterator values, outermost first.
///
/// # Examples
///
/// ```
/// use datareuse_loopir::{IterSpace, Loop, LoopNest};
///
/// let nest = LoopNest::new([Loop::new("i", 0, 1), Loop::new("j", 0, 2)], []);
/// let points: Vec<Vec<i64>> = IterSpace::new(&nest).collect();
/// assert_eq!(points.len(), 6);
/// assert_eq!(points[0], vec![0, 0]);
/// assert_eq!(points[3], vec![1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct IterSpace<'a> {
    loops: &'a [Loop],
    current: Vec<i64>,
    done: bool,
}

impl<'a> IterSpace<'a> {
    /// Creates a walker over `nest`'s iteration space.
    pub fn new(nest: &'a LoopNest) -> Self {
        Self::over(nest.loops())
    }

    /// Creates a walker over an explicit loop list (outermost first).
    pub fn over(loops: &'a [Loop]) -> Self {
        let current: Vec<i64> = loops.iter().map(Loop::lower).collect();
        Self {
            loops,
            current,
            done: loops.is_empty(),
        }
    }

    /// Total number of points (without iterating).
    pub fn len(&self) -> u64 {
        self.loops.iter().map(Loop::trip_count).product()
    }

    /// True when the space has no points (no loops).
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    fn advance(&mut self) {
        for depth in (0..self.loops.len()).rev() {
            let l = &self.loops[depth];
            let next = self.current[depth] + l.step();
            if next <= l.upper() {
                self.current[depth] = next;
                return;
            }
            self.current[depth] = l.lower();
        }
        self.done = true;
    }
}

impl Iterator for IterSpace<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let point = self.current.clone();
        self.advance();
        Some(point)
    }
}

/// Computes the lexicographic rank of an iteration point: the number of
/// points executed strictly before it. This is the scalar "time instance
/// t(j,k)" used in the paper's copy-candidate occupancy argument
/// (Section 6.1).
///
/// # Panics
///
/// Panics (in debug builds) if `point` does not lie on the loop grid.
pub fn time_of(loops: &[Loop], point: &[i64]) -> u64 {
    debug_assert_eq!(loops.len(), point.len());
    let mut time: u64 = 0;
    for (l, &v) in loops.iter().zip(point) {
        debug_assert!(v >= l.lower() && v <= l.upper() && (v - l.lower()) % l.step() == 0);
        let ordinal = ((v - l.lower()) / l.step()) as u64;
        time = time * l.trip_count() + ordinal;
    }
    time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::LoopNest;

    #[test]
    fn walks_in_lexicographic_order() {
        let nest = LoopNest::new([Loop::new("a", 1, 2), Loop::new("b", 0, 1)], []);
        let pts: Vec<_> = IterSpace::new(&nest).collect();
        assert_eq!(pts, vec![vec![1, 0], vec![1, 1], vec![2, 0], vec![2, 1]]);
    }

    #[test]
    fn respects_steps() {
        let loops = [Loop::with_step("i", 0, 6, 3)];
        let pts: Vec<_> = IterSpace::over(&loops).collect();
        assert_eq!(pts, vec![vec![0], vec![3], vec![6]]);
    }

    #[test]
    fn len_matches_enumeration() {
        let loops = [
            Loop::new("i", -2, 2),
            Loop::with_step("j", 0, 9, 2),
            Loop::new("k", 5, 5),
        ];
        let walker = IterSpace::over(&loops);
        assert_eq!(walker.len(), 25);
        assert_eq!(walker.count(), 25);
    }

    #[test]
    fn empty_space_for_no_loops() {
        let nest = LoopNest::new([], []);
        assert_eq!(IterSpace::new(&nest).count(), 0);
        assert!(IterSpace::new(&nest).is_empty());
    }

    #[test]
    fn time_of_ranks_points() {
        let loops = [Loop::new("i", 0, 2), Loop::new("j", 0, 3)];
        for (t, p) in IterSpace::over(&loops).enumerate() {
            assert_eq!(time_of(&loops, &p), t as u64);
        }
    }
}
