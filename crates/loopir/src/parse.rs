//! A small text DSL for loop-dominated kernels.
//!
//! The prototype tool of the paper takes "the loop and index expression
//! parameters as input"; this module provides the equivalent front end: a
//! human-writable description of arrays and perfectly nested loops that
//! parses into a [`Program`].
//!
//! # Grammar
//!
//! ```text
//! program  := (array | nest)*
//! array    := "array" IDENT ("[" expr "]")+ ("bits" INT)? ";"
//! nest     := loop
//! loop     := "for" IDENT "in" expr (".." | "..=") expr ("step" INT)? "{" body "}"
//! body     := loop | access+
//! access   := ("read" | "write") IDENT ("[" expr "]")+ ("if" cond)? ";"
//! cond     := expr ("=="|"!="|"<"|"<="|">"|">=") expr
//! expr     := affine arithmetic over iterators: +, -, *, parentheses
//! ```
//!
//! `a..b` is exclusive at the top (Rust-style), `a..=b` inclusive (the
//! paper's `jL..jU`). Comments run from `#` or `//` to end of line.
//!
//! # Examples
//!
//! ```
//! use datareuse_loopir::parse_program;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "array A[23] bits 8;
//!      for j in 0..16 {
//!        for k in 0..8 {
//!          read A[j + k];
//!        }
//!      }",
//! )?;
//! assert_eq!(program.nests().len(), 1);
//! assert_eq!(program.nests()[0].depth(), 2);
//! # Ok(())
//! # }
//! ```

use crate::error::ParseNestError;
use crate::expr::AffineExpr;
use crate::nest::{Access, ArrayDecl, CmpOp, Guard, Loop, LoopNest, Program};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Plus,
    Minus,
    Star,
    DotDot,
    DotDotEq,
    AndAnd,
    Cmp(CmpOp),
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::DotDotEq => write!(f, "`..=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::Cmp(op) => write!(f, "`{op}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pos {
    line: usize,
    column: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            at: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.at += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while matches!(self.peek_byte(), Some(b) if b != b'\n') {
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.at + 1) == Some(&b'/') => {
                    while matches!(self.peek_byte(), Some(b) if b != b'\n') {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, Pos), ParseNestError> {
        self.skip_trivia();
        let pos = Pos {
            line: self.line,
            column: self.col,
        };
        let err = |p: Pos, m: String| ParseNestError::new(p.line, p.column, m);
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, pos));
        };
        let tok = match b {
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'-' => {
                self.bump();
                Tok::Minus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'.' => {
                self.bump();
                if self.peek_byte() != Some(b'.') {
                    return Err(err(pos, "expected `..`".into()));
                }
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::DotDotEq
                } else {
                    Tok::DotDot
                }
            }
            b'&' => {
                self.bump();
                if self.peek_byte() == Some(b'&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(err(pos, "expected `&&`".into()));
                }
            }
            b'=' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Eq)
                } else {
                    return Err(err(pos, "expected `==`".into()));
                }
            }
            b'!' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Ne)
                } else {
                    return Err(err(pos, "expected `!=`".into()));
                }
            }
            b'<' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Le)
                } else {
                    Tok::Cmp(CmpOp::Lt)
                }
            }
            b'>' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Ge)
                } else {
                    Tok::Cmp(CmpOp::Gt)
                }
            }
            b'0'..=b'9' => {
                let mut v: i64 = 0;
                while let Some(d) = self.peek_byte().filter(u8::is_ascii_digit) {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((d - b'0') as i64))
                        .ok_or_else(|| err(pos, "integer literal overflows i64".into()))?;
                    self.bump();
                }
                Tok::Int(v)
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.at;
                while matches!(self.peek_byte(), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.bump();
                }
                Tok::Ident(String::from_utf8_lossy(&self.src[start..self.at]).into_owned())
            }
            other => {
                return Err(err(pos, format!("unexpected character `{}`", other as char)));
            }
        };
        Ok((tok, pos))
    }
}

struct Parser {
    toks: Vec<(Tok, Pos)>,
    at: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseNestError> {
        let mut lexer = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let (tok, pos) = lexer.next_token()?;
            let eof = tok == Tok::Eof;
            toks.push((tok, pos));
            if eof {
                break;
            }
        }
        Ok(Self { toks, at: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.at].0
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].1
    }

    fn bump(&mut self) -> Tok {
        let tok = self.toks[self.at].0.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        tok
    }

    fn error(&self, message: impl Into<String>) -> ParseNestError {
        let p = self.pos();
        ParseNestError::new(p.line, p.column, message)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseNestError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseNestError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseNestError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn parse_program(&mut self) -> Result<Program, ParseNestError> {
        let mut program = Program::new();
        loop {
            if *self.peek() == Tok::Eof {
                return Ok(program);
            }
            if self.at_keyword("array") {
                let decl = self.parse_array()?;
                let pos = self.pos();
                program
                    .declare(decl)
                    .map_err(|e| ParseNestError::new(pos.line, pos.column, e.to_string()))?;
            } else if self.at_keyword("for") {
                let pos = self.pos();
                let nest = self.parse_nest()?;
                program
                    .push_nest(nest)
                    .map_err(|e| ParseNestError::new(pos.line, pos.column, e.to_string()))?;
            } else {
                return Err(self.error(format!(
                    "expected `array` or `for`, found {}",
                    self.peek()
                )));
            }
        }
    }

    fn parse_array(&mut self) -> Result<ArrayDecl, ParseNestError> {
        self.expect_keyword("array")?;
        let name = self.expect_ident()?;
        let mut extents = Vec::new();
        while *self.peek() == Tok::LBracket {
            self.bump();
            extents.push(self.parse_const_expr()?);
            self.expect(Tok::RBracket)?;
        }
        if extents.is_empty() {
            return Err(self.error("array needs at least one `[extent]`"));
        }
        let mut bits = 8u32;
        if self.at_keyword("bits") {
            self.bump();
            match self.bump() {
                Tok::Int(v) if (1..=1024).contains(&v) => bits = v as u32,
                other => return Err(self.error(format!("expected bit width, found {other}"))),
            }
        }
        let pos = self.pos();
        self.expect(Tok::Semi)?;
        ArrayDecl::new(name, extents, bits)
            .map_err(|e| ParseNestError::new(pos.line, pos.column, e.to_string()))
    }

    fn parse_nest(&mut self) -> Result<LoopNest, ParseNestError> {
        let mut loops = Vec::new();
        let accesses = self.parse_loop_chain(&mut loops)?;
        Ok(LoopNest::new(loops, accesses))
    }

    fn parse_loop_chain(&mut self, loops: &mut Vec<Loop>) -> Result<Vec<Access>, ParseNestError> {
        self.expect_keyword("for")?;
        let name = self.expect_ident()?;
        self.expect_keyword("in")?;
        let lower = self.parse_const_expr()?;
        let inclusive = match self.bump() {
            Tok::DotDot => false,
            Tok::DotDotEq => true,
            other => return Err(self.error(format!("expected `..` or `..=`, found {other}"))),
        };
        let raw_upper = self.parse_const_expr()?;
        let upper = if inclusive { raw_upper } else { raw_upper - 1 };
        let mut step = 1i64;
        if self.at_keyword("step") {
            self.bump();
            step = self.parse_const_expr()?;
        }
        let pos = self.pos();
        let l = Loop::try_with_step(name, lower, upper, step)
            .map_err(|e| ParseNestError::new(pos.line, pos.column, e.to_string()))?;
        loops.push(l);
        self.expect(Tok::LBrace)?;
        let accesses = if self.at_keyword("for") {
            let inner = self.parse_loop_chain(loops)?;
            self.expect(Tok::RBrace)?;
            inner
        } else {
            let mut accesses = Vec::new();
            while self.at_keyword("read") || self.at_keyword("write") {
                accesses.push(self.parse_access()?);
            }
            if accesses.is_empty() {
                return Err(self.error(format!(
                    "loop body must contain a nested `for` or accesses, found {}",
                    self.peek()
                )));
            }
            self.expect(Tok::RBrace)?;
            accesses
        };
        Ok(accesses)
    }

    fn parse_access(&mut self) -> Result<Access, ParseNestError> {
        let is_read = self.at_keyword("read");
        self.bump();
        let array = self.expect_ident()?;
        let mut indices = Vec::new();
        while *self.peek() == Tok::LBracket {
            self.bump();
            indices.push(self.parse_expr()?);
            self.expect(Tok::RBracket)?;
        }
        if indices.is_empty() {
            return Err(self.error("access needs at least one `[index]`"));
        }
        let mut access = if is_read {
            Access::read(array, indices)
        } else {
            Access::write(array, indices)
        };
        if self.at_keyword("if") {
            loop {
                self.bump();
                let lhs = self.parse_expr()?;
                let op = match self.bump() {
                    Tok::Cmp(op) => op,
                    other => {
                        return Err(self.error(format!("expected comparison, found {other}")))
                    }
                };
                let rhs = self.parse_expr()?;
                access = access.with_guard(Guard::new(lhs, op, rhs));
                if *self.peek() != Tok::AndAnd {
                    break;
                }
            }
        }
        self.expect(Tok::Semi)?;
        Ok(access)
    }

    fn parse_const_expr(&mut self) -> Result<i64, ParseNestError> {
        let e = self.parse_expr()?;
        if e.is_constant() {
            Ok(e.constant_part())
        } else {
            Err(self.error("expected a constant expression"))
        }
    }

    fn parse_expr(&mut self) -> Result<AffineExpr, ParseNestError> {
        let mut acc = self.parse_term()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    acc = acc + self.parse_term()?;
                }
                Tok::Minus => {
                    self.bump();
                    acc = acc - self.parse_term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_term(&mut self) -> Result<AffineExpr, ParseNestError> {
        let mut acc = self.parse_factor()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let rhs = self.parse_factor()?;
            acc = match (acc.is_constant(), rhs.is_constant()) {
                (true, _) => rhs.scaled(acc.constant_part()),
                (_, true) => acc.scaled(rhs.constant_part()),
                (false, false) => {
                    return Err(self.error("non-affine product of two iterator expressions"));
                }
            };
        }
        Ok(acc)
    }

    fn parse_factor(&mut self) -> Result<AffineExpr, ParseNestError> {
        match self.bump() {
            Tok::Int(v) => Ok(AffineExpr::constant(v)),
            Tok::Ident(name) => Ok(AffineExpr::var(name)),
            Tok::Minus => Ok(-self.parse_factor()?),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Parses a DSL source string into a validated [`Program`].
///
/// # Errors
///
/// Returns a [`ParseNestError`] with line/column information on the first
/// lexical, syntactic or semantic (validation) error.
pub fn parse_program(src: &str) -> Result<Program, ParseNestError> {
    Parser::new(src)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::AccessKind;

    #[test]
    fn parses_motion_estimation_shape() {
        let src = "
            # QCIF frame
            array Old[159][191] bits 8;
            array New[144][176] bits 8;
            for i1 in 0..18 {
              for i2 in 0..22 {
                for i3 in 0..16 {
                  for i4 in 0..16 {
                    for i5 in 0..8 {
                      for i6 in 0..8 {
                        read New[8*i1 + i5][8*i2 + i6];
                        read Old[8*i1 + i3 + i5][8*i2 + i4 + i6];
                      }
                    }
                  }
                }
              }
            }";
        let p = parse_program(src).expect("parse");
        assert_eq!(p.arrays().len(), 2);
        assert_eq!(p.nests().len(), 1);
        let nest = &p.nests()[0];
        assert_eq!(nest.depth(), 6);
        assert_eq!(nest.accesses().len(), 2);
        let old = &nest.accesses()[1];
        assert_eq!(old.indices()[0].coeff("i1"), 8);
        assert_eq!(old.indices()[0].coeff("i3"), 1);
        assert_eq!(old.indices()[1].coeff("i4"), 1);
    }

    #[test]
    fn inclusive_and_exclusive_ranges() {
        let p = parse_program("array A[10]; for i in 0..=4 { read A[i]; }").unwrap();
        assert_eq!(p.nests()[0].loops()[0].upper(), 4);
        let q = parse_program("array A[10]; for i in 0..4 { read A[i]; }").unwrap();
        assert_eq!(q.nests()[0].loops()[0].upper(), 3);
    }

    #[test]
    fn steps_and_negative_bounds() {
        let p = parse_program("array A[20]; for i in -2..=8 step 2 { read A[i + 2]; }").unwrap();
        let l = &p.nests()[0].loops()[0];
        assert_eq!((l.lower(), l.upper(), l.step()), (-2, 8, 2));
    }

    #[test]
    fn guards_and_writes() {
        let p = parse_program(
            "array A[8]; array B[8];
             for i in 0..8 { read A[i] if i != 3; write B[7 - i]; }",
        )
        .unwrap();
        let nest = &p.nests()[0];
        assert!(!nest.accesses()[0].guards().is_empty());
        assert_eq!(nest.accesses()[1].kind(), AccessKind::Write);
        assert_eq!(nest.accesses()[1].indices()[0].coeff("i"), -1);
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_program("array A[4];\nfor i in 0..4 {\n  bogus;\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_nonaffine_products() {
        let e = parse_program("array A[100]; for i in 0..4 { read A[i*i]; }").unwrap_err();
        assert!(e.message.contains("non-affine"));
    }

    #[test]
    fn rejects_out_of_bounds_access() {
        let e = parse_program("array A[3]; for i in 0..4 { read A[i]; }").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(parse_program("array A[4]").is_err());
        assert!(parse_program("for i in 0..4 {").is_err());
        assert!(parse_program("array A[4]; for i in 0 .= 4 { read A[i]; }").is_err());
    }

    #[test]
    fn parenthesized_affine_arithmetic() {
        let p =
            parse_program("array A[40]; for i in 0..4 { read A[2*(i + 3) + (7 - i)]; }").unwrap();
        let idx = &p.nests()[0].accesses()[0].indices()[0];
        assert_eq!(idx.coeff("i"), 1);
        assert_eq!(idx.constant_part(), 13);
    }

    #[test]
    fn sibling_nests_parse_as_series() {
        let p = parse_program(
            "array I[16];
             for a in 0..4 { read I[a]; }
             for b in 0..4 { read I[b + 4]; }",
        )
        .unwrap();
        assert_eq!(p.nests().len(), 2);
    }
}
