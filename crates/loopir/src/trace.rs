//! Address-trace generation.
//!
//! The simulation side of the paper (Section 4) explores "the search space
//! for accesses to one signal in nested loops". This module turns a
//! [`Program`] into the linearized address trace of all accesses to one
//! array, in program execution order, ready for the replacement-policy
//! simulators in `datareuse-trace`.

use crate::nest::{AccessKind, LoopNest, Program};
use crate::walk::IterSpace;

/// One event of an address trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Row-major linearized element address within the traced array.
    pub addr: u64,
    /// Whether the event is a read or a write.
    pub kind: AccessKind,
}

/// Which access kinds to include in a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Include read accesses.
    pub reads: bool,
    /// Include write accesses.
    pub writes: bool,
}

impl TraceFilter {
    /// Reads only — the paper's data reuse step analyzes read traffic
    /// (the code is single-assignment, so each element is written once).
    pub const READS: Self = Self {
        reads: true,
        writes: false,
    };

    /// Reads and writes.
    pub const ALL: Self = Self {
        reads: true,
        writes: true,
    };

    fn admits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.reads,
            AccessKind::Write => self.writes,
        }
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        Self::READS
    }
}

/// Pre-resolved access: index coefficients aligned to loop order.
#[derive(Debug, Clone)]
struct ResolvedAccess {
    kind: AccessKind,
    /// Per dimension: (coefficients per loop depth, constant).
    dims: Vec<(Vec<i64>, i64)>,
    /// Guards as (lhs-rhs) coefficients, constant and operator; all must
    /// hold for the access to execute.
    guards: Vec<(Vec<i64>, i64, crate::nest::CmpOp)>,
    extents: Vec<i64>,
}

impl ResolvedAccess {
    fn address(&self, point: &[i64]) -> u64 {
        let mut addr: i64 = 0;
        for ((coeffs, constant), &extent) in self.dims.iter().zip(&self.extents) {
            let idx: i64 = coeffs
                .iter()
                .zip(point)
                .map(|(c, v)| c * v)
                .sum::<i64>()
                + constant;
            debug_assert!(
                (0..extent).contains(&idx),
                "trace index {idx} outside [0, {extent})"
            );
            addr = addr * extent + idx;
        }
        addr as u64
    }

    fn guarded_in(&self, point: &[i64]) -> bool {
        self.guards.iter().all(|(coeffs, constant, op)| {
            let v: i64 = coeffs.iter().zip(point).map(|(c, p)| c * p).sum::<i64>() + constant;
            op.holds(v, 0)
        })
    }
}

fn resolve(nest: &LoopNest, program: &Program, array: &str, filter: TraceFilter) -> Vec<ResolvedAccess> {
    let Some(decl) = program.array(array) else {
        return Vec::new();
    };
    let names: Vec<&str> = nest.loops().iter().map(|l| l.name()).collect();
    nest.accesses()
        .iter()
        .filter(|a| a.array() == array && filter.admits(a.kind()))
        .map(|a| {
            let dims = a
                .indices()
                .iter()
                .map(|e| {
                    let coeffs = names.iter().map(|n| e.coeff(n)).collect();
                    (coeffs, e.constant_part())
                })
                .collect();
            let guards = a
                .guards()
                .iter()
                .map(|g| {
                    let diff = g.lhs.clone() - g.rhs.clone();
                    let coeffs = names.iter().map(|n| diff.coeff(n)).collect();
                    (coeffs, diff.constant_part(), g.op)
                })
                .collect();
            ResolvedAccess {
                kind: a.kind(),
                dims,
                guards,
                extents: decl.extents().to_vec(),
            }
        })
        .collect()
}

/// Generates the full trace of accesses to `array` across all nests of
/// `program`, in execution order, filtered by `filter`.
///
/// Addresses are row-major linearized element indices within the array.
/// Guarded accesses are skipped at iterations where their guard fails —
/// this is how the SUSAN middle-row conditional is handled exactly rather
/// than approximately.
///
/// # Examples
///
/// ```
/// use datareuse_loopir::{
///     Access, AffineExpr, ArrayDecl, Loop, LoopNest, Program, TraceFilter, trace_array,
/// };
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Program::new();
/// p.declare(ArrayDecl::new("A", [8], 8)?)?;
/// p.push_nest(LoopNest::new(
///     [Loop::new("i", 0, 3)],
///     [Access::read("A", [AffineExpr::var("i") + 1])],
/// ))?;
/// let trace = trace_array(&p, "A", TraceFilter::READS);
/// assert_eq!(trace.iter().map(|e| e.addr).collect::<Vec<_>>(), [1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub fn trace_array(program: &Program, array: &str, filter: TraceFilter) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for nest in program.nests() {
        let resolved = resolve(nest, program, array, filter);
        if resolved.is_empty() {
            continue;
        }
        for point in IterSpace::new(nest) {
            for acc in &resolved {
                if acc.guarded_in(&point) {
                    out.push(TraceEvent {
                        addr: acc.address(&point),
                        kind: acc.kind,
                    });
                }
            }
        }
    }
    out
}

/// Convenience wrapper returning only read addresses — the input shape the
/// replacement simulators expect.
pub fn read_addresses(program: &Program, array: &str) -> Vec<u64> {
    trace_array(program, array, TraceFilter::READS)
        .into_iter()
        .map(|e| e.addr)
        .collect()
}

/// Counts trace events without materializing the trace.
pub fn trace_len(program: &Program, array: &str, filter: TraceFilter) -> u64 {
    let mut total = 0u64;
    for nest in program.nests() {
        let resolved = resolve(nest, program, array, filter);
        if resolved.is_empty() {
            continue;
        }
        let unguarded = resolved.iter().filter(|a| a.guards.is_empty()).count() as u64;
        total += unguarded * nest.iteration_count();
        let guarded: Vec<_> = resolved.iter().filter(|a| !a.guards.is_empty()).collect();
        if !guarded.is_empty() {
            for point in IterSpace::new(nest) {
                total += guarded.iter().filter(|a| a.guarded_in(&point)).count() as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::nest::{Access, ArrayDecl, CmpOp, Guard, Loop, LoopNest, Program};

    fn simple_program() -> Program {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [4, 4], 8).unwrap()).unwrap();
        p.push_nest(LoopNest::new(
            [Loop::new("i", 0, 3), Loop::new("j", 0, 3)],
            [Access::read("A", [AffineExpr::var("i"), AffineExpr::var("j")])],
        ))
        .unwrap();
        p
    }

    #[test]
    fn sequential_scan_produces_sequential_addresses() {
        let p = simple_program();
        let addrs = read_addresses(&p, "A");
        assert_eq!(addrs, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn filter_excludes_writes() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [4], 8).unwrap()).unwrap();
        p.push_nest(LoopNest::new(
            [Loop::new("i", 0, 3)],
            [
                Access::read("A", [AffineExpr::var("i")]),
                Access::write("A", [AffineExpr::var("i")]),
            ],
        ))
        .unwrap();
        assert_eq!(trace_array(&p, "A", TraceFilter::READS).len(), 4);
        assert_eq!(trace_array(&p, "A", TraceFilter::ALL).len(), 8);
        assert_eq!(trace_len(&p, "A", TraceFilter::ALL), 8);
    }

    #[test]
    fn guards_skip_iterations() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [4], 8).unwrap()).unwrap();
        let guard = Guard::new(AffineExpr::var("i"), CmpOp::Ne, AffineExpr::constant(2));
        p.push_nest(LoopNest::new(
            [Loop::new("i", 0, 3)],
            [Access::read("A", [AffineExpr::var("i")]).with_guard(guard)],
        ))
        .unwrap();
        let addrs = read_addresses(&p, "A");
        assert_eq!(addrs, vec![0, 1, 3]);
        assert_eq!(trace_len(&p, "A", TraceFilter::READS), 3);
    }

    #[test]
    fn multiple_nests_concatenate_in_order() {
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [4], 8).unwrap()).unwrap();
        for base in [0i64, 2] {
            p.push_nest(LoopNest::new(
                [Loop::new("i", 0, 1)],
                [Access::read("A", [AffineExpr::var("i") + base])],
            ))
            .unwrap();
        }
        assert_eq!(read_addresses(&p, "A"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_array_yields_empty_trace() {
        let p = simple_program();
        assert!(trace_array(&p, "Nope", TraceFilter::ALL).is_empty());
    }

    #[test]
    fn overlapping_window_access_reuses_addresses() {
        // A[j + k] for j in 0..=2, k in 0..=1 → addresses 0,1,1,2,2,3
        let mut p = Program::new();
        p.declare(ArrayDecl::new("A", [8], 8).unwrap()).unwrap();
        p.push_nest(LoopNest::new(
            [Loop::new("j", 0, 2), Loop::new("k", 0, 1)],
            [Access::read(
                "A",
                [AffineExpr::var("j") + AffineExpr::var("k")],
            )],
        ))
        .unwrap();
        assert_eq!(read_addresses(&p, "A"), vec![0, 1, 1, 2, 2, 3]);
    }
}
