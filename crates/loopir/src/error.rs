//! Error types for loop-nest construction and parsing.

use std::fmt;

/// Errors produced while building or validating loop nests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildNestError {
    /// A loop iterator name occurs more than once in a nest.
    DuplicateIterator(String),
    /// A loop has an empty iteration range (`lower > upper`).
    EmptyLoop {
        /// The iterator name.
        name: String,
        /// The inclusive lower bound.
        lower: i64,
        /// The inclusive upper bound.
        upper: i64,
    },
    /// A loop step is zero or negative.
    BadStep {
        /// The iterator name.
        name: String,
        /// The offending step.
        step: i64,
    },
    /// An access refers to an array that is not declared.
    UnknownArray(String),
    /// An array is declared more than once.
    DuplicateArray(String),
    /// An access has the wrong number of index dimensions.
    DimensionMismatch {
        /// The array name.
        array: String,
        /// Number of dimensions in the declaration.
        declared: usize,
        /// Number of index expressions at the access.
        used: usize,
    },
    /// An index expression mentions an iterator not bound by any loop.
    UnboundIterator {
        /// The array name of the offending access.
        array: String,
        /// The unbound iterator.
        iterator: String,
    },
    /// An array dimension is zero or negative.
    BadExtent {
        /// The array name.
        array: String,
        /// The offending extent.
        extent: i64,
    },
    /// An access can evaluate outside the declared array extents.
    OutOfBounds {
        /// The array name.
        array: String,
        /// Zero-based dimension index.
        dim: usize,
        /// The reachable index value range.
        range: (i64, i64),
        /// The declared extent of that dimension.
        extent: i64,
    },
}

impl fmt::Display for BuildNestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateIterator(name) => {
                write!(f, "iterator `{name}` is bound by more than one loop")
            }
            Self::EmptyLoop { name, lower, upper } => {
                write!(f, "loop `{name}` has empty range [{lower}, {upper}]")
            }
            Self::BadStep { name, step } => {
                write!(f, "loop `{name}` has non-positive step {step}")
            }
            Self::UnknownArray(name) => write!(f, "array `{name}` is not declared"),
            Self::DuplicateArray(name) => write!(f, "array `{name}` is declared twice"),
            Self::DimensionMismatch {
                array,
                declared,
                used,
            } => write!(
                f,
                "access to `{array}` uses {used} indices but the array has {declared} dimensions"
            ),
            Self::UnboundIterator { array, iterator } => write!(
                f,
                "access to `{array}` mentions iterator `{iterator}` bound by no loop"
            ),
            Self::BadExtent { array, extent } => {
                write!(f, "array `{array}` has non-positive extent {extent}")
            }
            Self::OutOfBounds {
                array,
                dim,
                range,
                extent,
            } => write!(
                f,
                "access to `{array}` dimension {dim} can reach [{}, {}] outside [0, {})",
                range.0, range.1, extent
            ),
        }
    }
}

impl std::error::Error for BuildNestError {}

/// Errors produced by the loop-nest DSL parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNestError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// 1-based column where the error was detected.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseNestError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseNestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_descriptive() {
        let e = BuildNestError::DimensionMismatch {
            array: "A".into(),
            declared: 2,
            used: 3,
        };
        let s = e.to_string();
        assert!(s.contains('A') && s.contains('2') && s.contains('3'));
        let p = ParseNestError::new(3, 7, "expected `{`");
        assert_eq!(p.to_string(), "3:7: expected `{`");
    }
}
