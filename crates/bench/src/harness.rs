//! A std-only micro-benchmark harness (the Criterion replacement).
//!
//! Hermetic-workspace constraint: no crates.io, so timing is done with
//! [`std::time::Instant`] directly. Each benchmark runs a warm-up, sizes
//! its batch to the time budget, then takes a fixed number of batched
//! samples; the table reports the min / median / mean nanoseconds per
//! iteration (min is the least noisy estimator on a shared machine,
//! median is what we track across runs). Request/response style benches
//! use [`BenchGroup::bench_latency`] instead, which times every call
//! individually through a log-bucketed histogram and adds p50/p99
//! columns — batching would average the tail away.
//!
//! Results are also written as `BENCH_<group>.json` into the figures
//! directory so CI and scripts can diff runs — the same role Criterion's
//! `estimates.json` played, in one flat hand-rolled document.
//!
//! Environment knobs:
//! - `DATAREUSE_BENCH_BUDGET_MS`: per-sample time budget (default 100).
//! - `DATAREUSE_BENCH_SAMPLES`: number of samples (default 10).
//! - `DATAREUSE_BENCH_METRICS`: when set (any non-empty value), enable the
//!   observability registry for the run and write a companion
//!   `METRICS_<group>.json` snapshot next to `BENCH_<group>.json`.
//!   Leave unset for timing runs: with metrics enabled, counters and
//!   spans add their (small but nonzero) recording cost to the measured
//!   loops.

use std::time::Instant;

use datareuse_core::Json;

use crate::{figures_dir, fmt_f, print_table};

/// One benchmark's aggregated timings.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id within the group.
    pub id: String,
    /// Iterations per sample batch.
    pub batch: u64,
    /// Number of sample batches taken.
    pub samples: u64,
    /// Fastest per-iteration time over all batches, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Median (p50) of per-iteration latencies, nanoseconds. Only set by
    /// [`BenchGroup::bench_latency`], which times iterations
    /// individually instead of batching.
    pub p50_ns: Option<f64>,
    /// 99th percentile of per-iteration latencies, nanoseconds
    /// (see [`Measurement::p50_ns`]).
    pub p99_ns: Option<f64>,
    /// Optional element count for throughput reporting.
    pub elements: Option<u64>,
}

impl Measurement {
    /// Million elements per second at the median time, when a throughput
    /// element count was set.
    pub fn melems_per_sec(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / self.median_ns * 1e3)
            .filter(|v| v.is_finite())
    }
}

/// A named group of benchmarks, printed and persisted together.
pub struct BenchGroup {
    name: String,
    budget_ns: u128,
    samples: u64,
    elements: Option<u64>,
    results: Vec<Measurement>,
    metrics: bool,
}

fn env_u64_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl BenchGroup {
    /// Starts a group named `name` (used in the table header and the
    /// `BENCH_<name>.json` artifact).
    pub fn new(name: &str) -> Self {
        let metrics = std::env::var("DATAREUSE_BENCH_METRICS")
            .map(|v| !v.trim().is_empty())
            .unwrap_or(false);
        if metrics {
            // Fresh registry per group so each METRICS_<group>.json
            // reflects only its own benches.
            datareuse_obs::reset_metrics();
            datareuse_obs::set_metrics_enabled(true);
        }
        Self {
            name: name.to_string(),
            budget_ns: env_u64_or("DATAREUSE_BENCH_BUDGET_MS", 100) as u128 * 1_000_000,
            samples: env_u64_or("DATAREUSE_BENCH_SAMPLES", 10).max(1),
            elements: None,
            results: Vec::new(),
            metrics,
        }
    }

    /// Sets the element count used for throughput columns of subsequent
    /// benches (until changed). Pass through [`BenchGroup::no_throughput`]
    /// to clear.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Clears the throughput element count.
    pub fn no_throughput(&mut self) -> &mut Self {
        self.elements = None;
        self
    }

    /// Times `f`, preventing the result from being optimized away.
    ///
    /// The batch size is chosen so one batch fits the time budget; the
    /// budget then bounds total runtime at roughly
    /// `samples × budget` per bench.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Warm-up + calibration: run once, derive the batch size.
        let start = Instant::now();
        std::hint::black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1);
        let batch = (self.budget_ns / once_ns).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let min_ns = per_iter[0];
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.results.push(Measurement {
            id: id.to_string(),
            batch,
            samples: self.samples,
            min_ns,
            median_ns,
            mean_ns,
            p50_ns: None,
            p99_ns: None,
            elements: self.elements,
        });
    }

    /// Times `f` one call at a time and reports latency percentiles
    /// (p50/p99) alongside min/median/mean.
    ///
    /// [`BenchGroup::bench`] amortizes the clock over a batch, which is
    /// right for nanosecond-scale kernels but erases the latency
    /// *distribution* — exactly what matters for request/response
    /// benches ("The Tail at Scale": percentiles, not means, govern
    /// service behavior). Here every iteration is clocked individually
    /// into a log-bucketed histogram, so the tail survives aggregation.
    /// Use for operations costing ≳1µs, where the per-call `Instant`
    /// overhead (~20ns) is noise.
    pub fn bench_latency<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Calibration as in `bench`: one warm-up call sizes how many
        // iterations fit the budget; samples multiply the budget.
        let start = Instant::now();
        std::hint::black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1);
        let iters = ((self.budget_ns * self.samples as u128) / once_ns).clamp(1, 1_000_000) as u64;

        let hist = datareuse_obs::Histogram::new();
        let mut total_ns = 0u128;
        let mut min_ns = u64::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed().as_nanos();
            hist.record(elapsed as u64);
            total_ns += elapsed;
            min_ns = min_ns.min(elapsed as u64);
        }
        let snap = hist.snapshot();
        self.results.push(Measurement {
            id: id.to_string(),
            batch: 1,
            samples: iters,
            min_ns: min_ns as f64,
            median_ns: snap.p50() as f64,
            mean_ns: total_ns as f64 / iters as f64,
            p50_ns: Some(snap.p50() as f64),
            p99_ns: Some(snap.p99() as f64),
            elements: self.elements,
        });
    }

    /// Prints the group table and writes `BENCH_<name>.json`; returns the
    /// measurements for further inspection.
    pub fn finish(self) -> Vec<Measurement> {
        println!("\n== {} ==", self.name);
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|m| {
                vec![
                    m.id.clone(),
                    fmt_f(m.min_ns, 1),
                    fmt_f(m.median_ns, 1),
                    fmt_f(m.mean_ns, 1),
                    m.p50_ns.map(|v| fmt_f(v, 1)).unwrap_or_else(|| "-".into()),
                    m.p99_ns.map(|v| fmt_f(v, 1)).unwrap_or_else(|| "-".into()),
                    m.melems_per_sec()
                        .map(|v| fmt_f(v, 2))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        print_table(
            &[
                "bench",
                "min ns/iter",
                "median ns/iter",
                "mean ns/iter",
                "p50 ns",
                "p99 ns",
                "Melem/s",
            ],
            &rows,
        );

        let doc = Json::obj([
            ("group", Json::str(&self.name)),
            (
                "benches",
                Json::arr(self.results.iter().map(|m| {
                    Json::obj([
                        ("id", Json::str(&m.id)),
                        ("batch", Json::UInt(m.batch)),
                        ("samples", Json::UInt(m.samples)),
                        ("min_ns", Json::Num(m.min_ns)),
                        ("median_ns", Json::Num(m.median_ns)),
                        ("mean_ns", Json::Num(m.mean_ns)),
                        ("p50_ns", m.p50_ns.map(Json::Num).unwrap_or(Json::Null)),
                        ("p99_ns", m.p99_ns.map(Json::Num).unwrap_or(Json::Null)),
                        (
                            "elements",
                            m.elements.map(Json::UInt).unwrap_or(Json::Null),
                        ),
                    ])
                })),
            ),
        ]);
        let path = figures_dir().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, doc.to_string()).expect("write bench json");
        println!("[bench data written to {}]", path.display());

        if self.metrics {
            let mpath = figures_dir().join(format!("METRICS_{}.json", self.name));
            let snapshot = datareuse_obs::snapshot().to_json().to_string();
            std::fs::write(&mpath, snapshot).expect("write metrics json");
            println!("[metrics written to {}]", mpath.display());
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_persists() {
        let mut g = BenchGroup::new("harness_selftest");
        g.throughput(1000);
        g.bench("sum_1000", || (0u64..1000).sum::<u64>());
        g.no_throughput();
        g.bench("noop", || 1u64);
        g.bench_latency("sleepless", || {
            std::thread::sleep(std::time::Duration::from_micros(5))
        });
        let results = g.finish();
        assert_eq!(results.len(), 3);
        assert!(results[0].min_ns > 0.0);
        assert!(results[0].min_ns <= results[0].median_ns);
        assert!(results[0].melems_per_sec().is_some());
        assert!(results[1].melems_per_sec().is_none());
        // Batched benches carry no percentiles; latency benches do, and
        // they must be ordered around the other estimators.
        assert!(results[0].p50_ns.is_none() && results[0].p99_ns.is_none());
        let lat = &results[2];
        let (p50, p99) = (lat.p50_ns.unwrap(), lat.p99_ns.unwrap());
        assert!(lat.min_ns <= p50, "min {} > p50 {p50}", lat.min_ns);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        let path = figures_dir().join("BENCH_harness_selftest.json");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"group\":\"harness_selftest\""));
        assert!(json.contains("\"id\":\"sum_1000\""));
        assert!(json.contains("\"p50_ns\":null"));
        assert!(json.contains("\"id\":\"sleepless\",\"batch\":1"));
        let _ = std::fs::remove_file(path);
    }
}
