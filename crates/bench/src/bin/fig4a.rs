//! Fig. 4a — Data reuse factor for array `Old[][]` of the motion
//! estimation kernel as a function of the copy-candidate size, under
//! Belady-optimal replacement, with the analytical footprint levels
//! (`A_1 … A_4`) overlaid.
//!
//! Paper reference points (QCIF, n = m = 8): maximum average reuse factor
//! ≈ 209.5 at size 2745 (≈ 16 lines of the Old frame); discontinuities at
//! the sizes where maximum reuse is reached for a sub-nest.
//!
//! Run: `cargo run --release -p datareuse-bench --bin fig4a [-- --small]`

use datareuse_bench::{fmt_f, log_sizes, print_table, write_figure};
use datareuse_codegen::{gnuplot_script, Series};
use datareuse_core::footprint_levels;
use datareuse_kernels::MotionEstimation;
use datareuse_loopir::read_addresses;
use datareuse_trace::{CurvePolicy, ReuseCurve, TraceStats};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let me = if small {
        MotionEstimation::SMALL
    } else {
        MotionEstimation::QCIF
    };
    println!(
        "Fig. 4a: ME data reuse factor curve (H={}, W={}, n={}, m={})",
        me.height, me.width, me.block, me.search
    );
    let program = me.program();
    let trace = read_addresses(&program, MotionEstimation::OLD);
    let stats = TraceStats::compute(&trace);
    println!(
        "trace: C_tot = {}, footprint = {}, saturation reuse = {:.1}",
        stats.accesses,
        stats.footprint,
        stats.average_reuse()
    );

    let levels = footprint_levels(&program.nests()[0], 1).expect("Old access");
    println!("\nanalytical footprint levels (paper's A_j discontinuities):");
    let rows: Vec<Vec<String>> = levels
        .iter()
        .map(|l| {
            vec![
                format!("A_{}", l.depth),
                l.size.to_string(),
                l.fills.to_string(),
                fmt_f(l.reuse_factor(), 2),
            ]
        })
        .collect();
    print_table(&["level", "size", "fills", "F_R"], &rows);

    // Simulated curve at log-spaced sizes plus the analytical knees.
    let mut sizes = log_sizes(stats.footprint, 6);
    sizes.extend(levels.iter().map(|l| l.size));
    let curve = ReuseCurve::simulate(&trace, sizes, CurvePolicy::Optimal);
    println!("\nBelady-optimal simulated curve:");
    let rows: Vec<Vec<String>> = curve
        .points()
        .iter()
        .map(|p| {
            vec![
                p.size.to_string(),
                p.fills.to_string(),
                fmt_f(p.reuse_factor, 2),
            ]
        })
        .collect();
    print_table(&["size", "fills", "F_R"], &rows);

    println!(
        "\nmax simulated reuse factor: {:.1} (paper: 209.5 at size 2745 on the clamped frame)",
        curve.max_reuse_factor()
    );
    let knees = curve.knees();
    println!(
        "simulated knee sizes: {:?}",
        knees.iter().map(|p| p.size).collect::<Vec<_>>()
    );

    let sim: Vec<(f64, f64)> = curve
        .points()
        .iter()
        .map(|p| (p.size as f64, p.reuse_factor))
        .collect();
    let ana: Vec<(f64, f64)> = levels
        .iter()
        .map(|l| (l.size as f64, l.reuse_factor()))
        .collect();
    write_figure(
        "fig4a.gp",
        &gnuplot_script(
            "Fig 4a: ME data reuse factor for Old[][]",
            "copy-candidate size [elements]",
            "data reuse factor F_R",
            true,
            &[
                Series::new("Belady simulation", sim),
                Series::new("analytical levels", ana).with_style("points pt 7 ps 2"),
            ],
        ),
    );
}
