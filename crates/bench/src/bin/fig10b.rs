//! Fig. 10b — Motion estimation inner nest: analytically computed points
//! on the simulated power–memory-size Pareto curve, showing the bypass
//! points dominating the plain partial-reuse points ("copy-candidates
//! with partial reuse \[become\] much more interesting solutions … when
//! there is not enough memory space available for maximum reuse").
//!
//! Run: `cargo run --release -p datareuse-bench --bin fig10b`

use datareuse_bench::{fmt_f, print_table, write_figure};
use datareuse_codegen::{gnuplot_script, Series};
use datareuse_core::{max_reuse, partial_sweep, PairGeometry, ReusePoint};
use datareuse_loopir::{parse_program, read_addresses};
use datareuse_memmodel::{
    evaluate_chain, BitCount, ChainLevel, CopyChain, MemoryTechnology,
};
use datareuse_trace::{opt_simulate, TraceStats};

fn chain_cost(
    point: &ReusePoint,
    c_tot: u64,
    background: u64,
    tech: &MemoryTechnology,
) -> (u64, f64) {
    let mut chain = CopyChain::baseline(c_tot, background, 8);
    chain.push_level(ChainLevel::with_bypass(
        point.size,
        point.fills,
        point.bypasses,
    ));
    chain.validate().expect("analytic chain");
    let cost = evaluate_chain(&chain, tech, &BitCount);
    (point.size, cost.normalized_energy)
}

fn main() {
    let (n, m) = (8i64, 8i64);
    println!("Fig. 10b: ME inner nest power-size trade-off, n = m = {n}");
    let src = format!(
        "array Old[{n}][{cols}];
         for i4 in 0..{w} {{ for i5 in 0..{n} {{ for i6 in 0..{n} {{
           read Old[i5][i4 + i6];
         }} }} }}",
        cols = 2 * m + n - 1,
        w = 2 * m
    );
    let program = parse_program(&src).expect("kernel parses");
    let trace = read_addresses(&program, "Old");
    let stats = TraceStats::compute(&trace);
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 2).expect("pair (i4, i6)");
    let tech = MemoryTechnology::new();

    let maxp = max_reuse(&geom).expect("reuse exists");
    let mut rows = Vec::new();
    let mut plain_series = Vec::new();
    let mut bypass_series = Vec::new();
    let mut sim_series = Vec::new();

    for p in partial_sweep(&geom, false)
        .iter()
        .chain(std::iter::once(&maxp))
    {
        let (size, power) = chain_cost(p, stats.accesses, stats.footprint, &tech);
        // Simulated comparison point: Belady traffic at the same size.
        let sim = opt_simulate(&trace, size);
        let mut sim_chain = CopyChain::baseline(stats.accesses, stats.footprint, 8);
        sim_chain.push_level(ChainLevel::new(size, sim.fills));
        let sim_power = evaluate_chain(&sim_chain, &tech, &BitCount).normalized_energy;
        rows.push(vec![
            format!("{:?}", p.kind),
            size.to_string(),
            fmt_f(power, 4),
            fmt_f(sim_power, 4),
        ]);
        plain_series.push((size as f64, power));
        sim_series.push((size as f64, sim_power));
    }
    for p in partial_sweep(&geom, true) {
        let (size, power) = chain_cost(&p, stats.accesses, stats.footprint, &tech);
        rows.push(vec![
            format!("{:?}", p.kind),
            size.to_string(),
            fmt_f(power, 4),
            String::from("-"),
        ]);
        bypass_series.push((size as f64, power));
    }
    println!("\nnormalized power of single-level hierarchies:");
    print_table(
        &["point", "size A", "analytic power", "simulated power"],
        &rows,
    );

    // Paper claim: bypass strictly reduces power at matched gamma.
    let improved = bypass_series
        .iter()
        .zip(&plain_series)
        .filter(|(b, p)| b.1 < p.1)
        .count();
    println!(
        "\nbypass improves power at {improved}/{} partial points (paper: triangles below bullets)",
        bypass_series.len()
    );

    write_figure(
        "fig10b.gp",
        &gnuplot_script(
            "Fig 10b: ME inner nest power vs memory size",
            "copy-candidate size [elements]",
            "normalized power",
            false,
            &[
                Series::new("simulated (Belady traffic)", sim_series),
                Series::new("analytical (no bypass)", plain_series)
                    .with_style("points pt 7 ps 1.5"),
                Series::new("analytical (bypass)", bypass_series)
                    .with_style("points pt 9 ps 1.5"),
            ],
        ),
    );
}
