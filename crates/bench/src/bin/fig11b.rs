//! Fig. 11b — SUSAN principle: combined power–memory-size Pareto curve.
//! The paper reports "a factor of 1,6 to 6 decrease in power consumption"
//! for the non-bypass analytical candidates, with "even more power gain
//! for the smaller copy-candidate sizes" once the bypass is introduced.
//!
//! Run: `cargo run --release -p datareuse-bench --bin fig11b [-- --small]`

use datareuse_bench::{fmt_f, print_table, write_figure};
use datareuse_codegen::{gnuplot_script, Series};
use datareuse_core::{explore_signal, ExploreOptions};
use datareuse_kernels::Susan;
use datareuse_memmodel::{BitCount, MemoryTechnology};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let susan = if small { Susan::SMALL } else { Susan::QCIF };
    println!(
        "Fig. 11b: SUSAN combined power-memory size Pareto curve ({}x{})",
        susan.height, susan.width
    );
    let folded = susan.program();
    let tech = MemoryTechnology::new();

    let mut tables = Vec::new();
    let mut series = Vec::new();
    for (bypass, label) in [(false, "no bypass"), (true, "with bypass")] {
        let opts = ExploreOptions {
            include_bypass: bypass,
            ..ExploreOptions::default()
        };
        let ex = explore_signal(&folded, Susan::IMAGE, &opts).expect("SUSAN explores");
        let front = ex.pareto(&opts, &tech, &BitCount);
        let pts: Vec<(f64, f64)> = front
            .iter()
            .filter(|p| p.size > 0.0)
            .map(|p| (p.size, p.power))
            .collect();
        let reductions: Vec<f64> = pts.iter().map(|(_, p)| 1.0 / p).collect();
        println!(
            "\n{label}: {} Pareto points, power reduction {:.1}x .. {:.1}x",
            pts.len(),
            reductions.iter().copied().fold(f64::INFINITY, f64::min),
            reductions.iter().copied().fold(0.0, f64::max),
        );
        for p in &front {
            tables.push(vec![
                label.to_string(),
                (p.size as u64).to_string(),
                fmt_f(p.power, 4),
                fmt_f(1.0 / p.power, 2),
            ]);
        }
        series.push(Series::new(label, pts).with_style(if bypass {
            "points pt 9 ps 1.5"
        } else {
            "linespoints pt 7"
        }));
    }
    println!("\nPareto fronts:");
    print_table(&["variant", "onchip size", "norm power", "reduction"], &tables);
    println!("\n(paper band for the non-bypass bullets: 1.6x .. 6x)");

    write_figure(
        "fig11b.gp",
        &gnuplot_script(
            "Fig 11b: SUSAN combined power vs memory size Pareto curve",
            "combined copy-candidate size [elements]",
            "normalized power",
            true,
            &series,
        ),
    );
}
