//! Fig. 10a — Motion estimation, analytically computed points for the
//! inner (i4-i5-i6) loop nest on the simulated data reuse factor curve:
//! the §6.3 closed forms (max reuse `A_Max = n(n−1)`,
//! `F_RMax = 2mn/(2mn − (2m−1)(n−1))`, partial reuse `A(γ) = nγ+1`) and
//! the bypass triangles (`A'(γ) = nγ`, `F'_R`).
//!
//! Run: `cargo run --release -p datareuse-bench --bin fig10a`

use datareuse_bench::{fmt_f, print_table, write_figure};
use datareuse_codegen::{gnuplot_script, Series};
use datareuse_core::{max_reuse, partial_sweep, PairGeometry};
use datareuse_loopir::{parse_program, read_addresses};
use datareuse_trace::{CurvePolicy, ReuseCurve};

fn main() {
    let (n, m) = (8i64, 8i64);
    println!("Fig. 10a: ME inner (i4-i5-i6) nest, n = m = {n}");
    let src = format!(
        "array Old[{n}][{cols}];
         for i4 in 0..{w} {{ for i5 in 0..{n} {{ for i6 in 0..{n} {{
           read Old[i5][i4 + i6];
         }} }} }}",
        cols = 2 * m + n - 1,
        w = 2 * m
    );
    let program = parse_program(&src).expect("kernel parses");
    let trace = read_addresses(&program, "Old");
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 2).expect("pair (i4, i6)");

    let maxp = max_reuse(&geom).expect("reuse exists");
    let partial = partial_sweep(&geom, false);
    let bypass = partial_sweep(&geom, true);

    let curve = ReuseCurve::simulate_exhaustive(&trace, CurvePolicy::Optimal);
    let sim_at = |size: u64| {
        curve
            .points()
            .iter()
            .rev()
            .find(|p| p.size <= size)
            .map(|p| p.reuse_factor)
            .unwrap_or(1.0)
    };

    println!("\nanalytical points vs Belady simulation at the same size:");
    let mut rows = Vec::new();
    for p in partial.iter().chain(std::iter::once(&maxp)) {
        rows.push(vec![
            format!("{:?}", p.kind),
            p.size.to_string(),
            fmt_f(p.reuse_factor(), 3),
            fmt_f(sim_at(p.size), 3),
        ]);
    }
    for p in &bypass {
        rows.push(vec![
            format!("{:?}", p.kind),
            p.size.to_string(),
            fmt_f(p.reuse_factor(), 3),
            fmt_f(sim_at(p.size), 3),
        ]);
    }
    print_table(&["point", "size A", "analytic F_R", "simulated F_R"], &rows);

    println!(
        "\nF_RMax = {:.3} (paper closed form: 2mn/(2mn-(2m-1)(n-1)) = {:.3}), A_Max = {} (= n(n-1) = {})",
        maxp.reuse_factor(),
        (2 * m * n) as f64 / ((2 * m * n) - (2 * m - 1) * (n - 1)) as f64,
        maxp.size,
        n * (n - 1)
    );

    let sim: Vec<(f64, f64)> = curve
        .points()
        .iter()
        .map(|p| (p.size as f64, p.reuse_factor))
        .collect();
    let ana: Vec<(f64, f64)> = partial
        .iter()
        .chain(std::iter::once(&maxp))
        .map(|p| (p.size as f64, p.reuse_factor()))
        .collect();
    let byp: Vec<(f64, f64)> = bypass
        .iter()
        .map(|p| (p.size as f64, p.reuse_factor()))
        .collect();
    write_figure(
        "fig10a.gp",
        &gnuplot_script(
            "Fig 10a: ME inner nest reuse factor curve",
            "copy-candidate size [elements]",
            "data reuse factor",
            false,
            &[
                Series::new("Belady simulation", sim),
                Series::new("analytical (no bypass)", ana).with_style("points pt 7 ps 1.5"),
                Series::new("analytical (bypass)", byp).with_style("points pt 9 ps 1.5"),
            ],
        ),
    );
}
