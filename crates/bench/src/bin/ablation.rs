//! Ablation study for the design choices DESIGN.md calls out:
//!
//! 1. **Replacement policy** — Belady-optimal (the paper's compile-time
//!    knowledge) vs the hardware policies (LRU / FIFO / direct-mapped)
//!    that "only use knowledge about previous accesses";
//! 2. **Bypass on/off** — the Section 6.2 extension;
//! 3. **Chain depth** — one vs two hierarchy levels (eq. 3 trade-off).
//!
//! Run: `cargo run --release -p datareuse-bench --bin ablation [-- --small]`

use datareuse_bench::{fmt_f, print_table};
use datareuse_core::{explore_signal, ExploreOptions};
use datareuse_kernels::MotionEstimation;
use datareuse_loopir::read_addresses;
use datareuse_memmodel::{BitCount, MemoryTechnology};
use datareuse_trace::{
    direct_mapped_simulate, fifo_simulate, interleave, lru_simulate, opt_simulate,
    opt_simulate_bypass, to_lines,
};

fn main() {
    let small = !std::env::args().any(|a| a == "--full");
    let me = if small {
        MotionEstimation::SMALL
    } else {
        MotionEstimation::QCIF
    };
    println!(
        "Ablations on motion estimation (H={}, W={}, n={}, m={})\n",
        me.height, me.width, me.block, me.search
    );
    let program = me.program();
    let trace = read_addresses(&program, MotionEstimation::OLD);

    // 1. Replacement policies at the analytical candidate sizes.
    let opts = ExploreOptions::default();
    let ex = explore_signal(&program, MotionEstimation::OLD, &opts).expect("explores");
    println!("1. reuse factor by replacement policy (copy-candidate sizes from the model):");
    let mut rows = Vec::new();
    let mut sizes: Vec<u64> = ex.candidates.iter().map(|c| c.size).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &size in sizes.iter().rev().take(6) {
        let opt = opt_simulate(&trace, size);
        let optb = opt_simulate_bypass(&trace, size);
        let lru = lru_simulate(&trace, size);
        let fifo = fifo_simulate(&trace, size);
        let dm = direct_mapped_simulate(&trace, size);
        rows.push(vec![
            size.to_string(),
            fmt_f(opt.reuse_factor(), 2),
            fmt_f(optb.reuse_factor(), 2),
            fmt_f(lru.reuse_factor(), 2),
            fmt_f(fifo.reuse_factor(), 2),
            fmt_f(dm.reuse_factor(), 2),
        ]);
    }
    print_table(
        &["size", "Belady", "Belady+bypass", "LRU", "FIFO", "direct"],
        &rows,
    );

    // 2. Bypass on/off on the Pareto front.
    let tech = MemoryTechnology::new();
    println!("\n2. bypass ablation (best normalized power on the Pareto front):");
    let mut rows = Vec::new();
    for (bypass, label) in [(false, "no bypass"), (true, "with bypass")] {
        let o = ExploreOptions {
            include_bypass: bypass,
            ..ExploreOptions::default()
        };
        let e = explore_signal(&program, MotionEstimation::OLD, &o).expect("explores");
        let front = e.pareto(&o, &tech, &BitCount);
        let best = front.last().expect("non-empty");
        let smallest_useful = front.iter().find(|p| p.size > 0.0);
        rows.push(vec![
            label.into(),
            fmt_f(best.power, 4),
            smallest_useful
                .map(|p| format!("{} @ {:.4}", p.size as u64, p.power))
                .unwrap_or_default(),
        ]);
    }
    print_table(&["variant", "best power", "smallest useful level"], &rows);

    // 3b. Line granularity: spatial locality closes part of the gap for
    // the hardware cache, but element-granular compile-time placement
    // still wins per byte of storage.
    println!("\n3b. line-granularity ablation (capacity in ELEMENTS, LRU):");
    let mut rows = Vec::new();
    for line in [1u64, 4, 8] {
        let lined = to_lines(&trace, line);
        let caps_elems = [64u64, 256, 1024];
        let mut cells = vec![format!("{line}")];
        for &cap in &caps_elems {
            let r = lru_simulate(&lined, (cap / line).max(1));
            // Misses now transfer whole lines: traffic in elements.
            let traffic = r.misses() * line;
            cells.push(fmt_f(trace.len() as f64 / traffic as f64, 2));
        }
        rows.push(cells);
    }
    print_table(&["line", "F_R @64", "F_R @256", "F_R @1024"], &rows);

    // 3c. Shared vs per-signal buffers: the paper assigns each signal its
    // own copy-candidate; a shared cache mixes Old and New.
    let new_trace = read_addresses(&program, MotionEstimation::NEW);
    let shared_trace = interleave(&[&trace, &new_trace], 1 << 20);
    println!("\n3c. shared vs per-signal buffers (LRU misses, 80 total elements):");
    let shared = lru_simulate(&shared_trace, 80).misses();
    let split = lru_simulate(&trace, 64).misses() + lru_simulate(&new_trace, 16).misses();
    let rows = vec![
        vec!["shared 80".to_string(), shared.to_string()],
        vec!["split 64+16".to_string(), split.to_string()],
    ];
    print_table(&["organisation", "upstream reads"], &rows);

    // 3. Chain depth.
    println!("\n3. chain-depth ablation:");
    let mut rows = Vec::new();
    for depth in 1..=3usize {
        let o = ExploreOptions {
            max_chain_depth: depth,
            ..ExploreOptions::default()
        };
        let e = explore_signal(&program, MotionEstimation::OLD, &o).expect("explores");
        let chains = e.chains(&o).len();
        let front = e.pareto(&o, &tech, &BitCount);
        let best = front.last().expect("non-empty");
        rows.push(vec![
            depth.to_string(),
            chains.to_string(),
            fmt_f(best.power, 4),
        ]);
    }
    print_table(&["max levels", "chains evaluated", "best power"], &rows);
}
