//! Runtime comparison: the analytical model vs trace simulation.
//!
//! The paper's motivation for the analytical model: "Simulation is very
//! time-consuming when large applications and signal sizes are
//! considered." This harness times, on the full QCIF motion-estimation
//! kernel, (a) the complete analytical exploration, (b) trace generation,
//! (c) one Belady point, and (d) a whole simulated curve — the cost the
//! model eliminates.
//!
//! Run: `cargo run --release -p datareuse-bench --bin timing`

use std::time::Instant;

use datareuse_bench::{fmt_f, log_sizes, print_table};
use datareuse_core::{explore_signal, ExploreOptions};
use datareuse_kernels::MotionEstimation;
use datareuse_loopir::read_addresses;
use datareuse_trace::{opt_simulate, opt_simulate_many, sampled_reuse_curve, CurvePolicy};

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn main() {
    let me = MotionEstimation::QCIF;
    let program = me.program();
    println!(
        "timing on QCIF motion estimation ({} reads of Old)\n",
        me.old_reads()
    );

    let sequential = ExploreOptions {
        threads: Some(1),
        ..ExploreOptions::default()
    };
    let (_, t_analytic_seq) = time(|| {
        explore_signal(&program, MotionEstimation::OLD, &sequential).expect("explores")
    });
    let workers = datareuse_core::resolve_threads(None);
    let (ex, t_analytic) = time(|| {
        explore_signal(&program, MotionEstimation::OLD, &ExploreOptions::default())
            .expect("explores")
    });
    let (trace, t_trace) = time(|| read_addresses(&program, MotionEstimation::OLD));
    let (_, t_one_point) = time(|| opt_simulate(&trace, 2745));
    let sizes = log_sizes(30_369, 4);
    let n_sizes = sizes.len();
    let (_, t_curve) = time(|| opt_simulate_many(&trace, &sizes));
    let (_, t_sampled) = time(|| {
        sampled_reuse_curve(&trace, sizes.iter().copied(), 0.05, CurvePolicy::Optimal)
    });

    let rows = vec![
        vec![
            "analytical exploration, 1 thread".into(),
            fmt_f(t_analytic_seq * 1e3, 2),
        ],
        vec![
            format!("analytical exploration, {workers} threads"),
            fmt_f(t_analytic * 1e3, 2),
        ],
        vec!["trace generation (6.5M accesses)".into(), fmt_f(t_trace * 1e3, 2)],
        vec!["one Belady point (size 2745)".into(), fmt_f(t_one_point * 1e3, 2)],
        vec![
            format!("Belady curve, {n_sizes} sizes (shared table)"),
            fmt_f(t_curve * 1e3, 2),
        ],
        vec![
            format!("sampled curve, {n_sizes} sizes @ 5%"),
            fmt_f(t_sampled * 1e3, 2),
        ],
    ];
    print_table(&["stage", "ms"], &rows);
    println!(
        "\nanalytical speedup over the simulated curve: {:.0}x \
         ({} analytical candidates produced)",
        t_curve / t_analytic.max(1e-9),
        ex.candidates.len()
    );
}
