//! Fig. 4b — Power–memory-size Pareto curve for array `Old[][]` of the
//! motion estimation kernel, "obtained by considering all possible
//! hierarchies combining points on the data reuse factor curve" (eq. 3),
//! normalized to the all-external-accesses baseline.
//!
//! Run: `cargo run --release -p datareuse-bench --bin fig4b [-- --small]`

use datareuse_bench::{fmt_f, log_sizes, print_table, write_figure};
use datareuse_codegen::{gnuplot_script, Series};
use datareuse_core::{enumerate_chains, CandidatePoint, CandidateSource};
use datareuse_kernels::MotionEstimation;
use datareuse_loopir::read_addresses;
use datareuse_memmodel::{evaluate_chain, pareto_front, BitCount, MemoryTechnology, ParetoPoint};
use datareuse_trace::{opt_simulate, TraceStats};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let me = if small {
        MotionEstimation::SMALL
    } else {
        MotionEstimation::QCIF
    };
    println!(
        "Fig. 4b: ME power-memory size Pareto curve (H={}, W={}, n={}, m={})",
        me.height, me.width, me.block, me.search
    );
    let program = me.program();
    let trace = read_addresses(&program, MotionEstimation::OLD);
    let stats = TraceStats::compute(&trace);

    // Candidate points from the simulated reuse-factor curve, as in the
    // paper's Section 4 (simulation-based exploration).
    let sizes = log_sizes(stats.footprint, if small { 8 } else { 4 });
    let candidates: Vec<CandidatePoint> = sizes
        .iter()
        .map(|&s| {
            let r = opt_simulate(&trace, s);
            CandidatePoint {
                size: s,
                fills: r.fills,
                bypasses: 0,
                c_tot: r.accesses,
                source: CandidateSource::Simulated,
                exact: true,
            }
        })
        .collect();
    let chains = enumerate_chains(&candidates, stats.accesses, stats.footprint, 8, 2);
    println!("evaluating {} candidate hierarchies...", chains.len());

    let tech = MemoryTechnology::new();
    let points: Vec<ParetoPoint<(Vec<u64>, f64)>> = chains
        .iter()
        .map(|chain| {
            let cost = evaluate_chain(chain, &tech, &BitCount);
            let levels: Vec<u64> = chain.levels.iter().map(|l| l.words).collect();
            ParetoPoint::new(
                cost.onchip_words as f64,
                cost.normalized_energy,
                (levels, cost.normalized_energy),
            )
        })
        .collect();
    let front = pareto_front(points);

    println!("\nPareto front (normalized to all-background accesses):");
    let rows: Vec<Vec<String>> = front
        .iter()
        .map(|p| {
            vec![
                (p.size as u64).to_string(),
                fmt_f(p.power, 4),
                format!(
                    "[{}]",
                    p.payload
                        .0
                        .iter()
                        .map(|w| w.to_string())
                        .collect::<Vec<_>>()
                        .join(" > ")
                ),
            ]
        })
        .collect();
    print_table(&["onchip size", "norm power", "hierarchy"], &rows);

    let best = front.last().expect("non-empty front");
    println!(
        "\nbest power: {:.4} of baseline ({}x reduction) at {} on-chip elements",
        best.power,
        fmt_f(1.0 / best.power, 1),
        best.size
    );

    let series: Vec<(f64, f64)> = front.iter().map(|p| (p.size.max(1.0), p.power)).collect();
    write_figure(
        "fig4b.gp",
        &gnuplot_script(
            "Fig 4b: ME power vs memory size Pareto curve (Old[][])",
            "on-chip copy-candidate size [elements]",
            "normalized power",
            true,
            &[Series::new("Pareto front", series)],
        ),
    );
}
