//! `BENCH_explore` — the audit-hook regression guard.
//!
//! The explain layer threads an `Option<&Explain>` through the whole
//! exploration; its contract is *zero cost when disabled* — no
//! allocation, no annotation bookkeeping, nothing on the hot path. This
//! harness times three variants of the same sweep:
//!
//! - `baseline`: the public `explore_signal` entry point (what every
//!   caller used before the audit layer existed),
//! - `explain_off`: `explore_signal_explained` with `None` — the new
//!   plumbing with the sink disabled,
//! - `explain_on`: the audited sweep into a live sink (its overhead is
//!   reported, not guarded — emitting records is allowed to cost).
//!
//! The guard asserts `explain_off` stays within noise of `baseline`
//! (generous 1.5x on the median: they share ~everything, so a real
//! hot-path regression shows up far above that) and exits nonzero on
//! violation so `scripts/verify.sh` can gate on it.
//!
//! Run: `cargo run --release -p datareuse-bench --bin explore`

use datareuse_bench::BenchGroup;
use datareuse_core::{explore_signal, explore_signal_explained, ExploreOptions};
use datareuse_kernels::load_kernel;
use datareuse_obs::Explain;

fn main() {
    let program = load_kernel("me-small").expect("builtin kernel loads");
    // Single-threaded so the guard measures the algorithm, not the
    // thread pool's scheduling noise.
    let opts = ExploreOptions {
        threads: Some(1),
        ..ExploreOptions::default()
    };

    let mut group = BenchGroup::new("explore");
    group.bench("baseline", || {
        explore_signal(&program, "Old", &opts).expect("explores")
    });
    group.bench("explain_off", || {
        explore_signal_explained(&program, "Old", &opts, None).expect("explores")
    });
    group.bench("explain_on", || {
        let sink = Explain::new();
        explore_signal_explained(&program, "Old", &opts, Some(&sink)).expect("explores")
    });
    let results = group.finish();

    let median = |id: &str| {
        results
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.median_ns)
            .expect("bench ran")
    };
    let (baseline, off, on) = (median("baseline"), median("explain_off"), median("explain_on"));
    println!(
        "\nexplain-off overhead: {:+.1}%   explain-on overhead: {:+.1}%",
        (off / baseline - 1.0) * 100.0,
        (on / baseline - 1.0) * 100.0,
    );
    // The guard: a disabled sink must not slow the sweep down. 1.5x is
    // far outside timer noise for a sweep this size but well inside any
    // accidental always-on allocation or cloning of the pool.
    assert!(
        off <= baseline * 1.5,
        "explain-off sweep regressed: {off:.0}ns vs baseline {baseline:.0}ns"
    );
    println!("guard ok: explain-off within noise of the baseline sweep");
}
