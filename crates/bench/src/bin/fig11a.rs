//! Fig. 11a — SUSAN principle: combined data reuse factor curve for the
//! image pixel accesses. The simulated curve runs on the original
//! interleaved access order; the analytical points come from the
//! pre-processed series-of-loops form, with each access handled
//! separately and the per-access copy-candidates combined (paper
//! Section 6.4).
//!
//! Run: `cargo run --release -p datareuse-bench --bin fig11a [-- --small]`

use datareuse_bench::{fmt_f, log_sizes, print_table, write_figure};
use datareuse_codegen::{gnuplot_script, Series};
use datareuse_core::{explore_signal, CandidateSource, ExploreOptions};
use datareuse_kernels::Susan;
use datareuse_loopir::read_addresses;
use datareuse_trace::{CurvePolicy, ReuseCurve, TraceStats};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let susan = if small { Susan::SMALL } else { Susan::QCIF };
    println!(
        "Fig. 11a: SUSAN combined reuse factor curve ({}x{} image, 37-pixel mask)",
        susan.height, susan.width
    );
    // Simulation: the original interleaved order.
    let trace = read_addresses(&susan.program(), Susan::IMAGE);
    let stats = TraceStats::compute(&trace);
    println!(
        "trace: C_tot = {}, footprint = {}, saturation reuse = {:.1}",
        stats.accesses,
        stats.footprint,
        stats.average_reuse()
    );

    // Analytics on the same interleaved order (merged copy-candidates
    // capture the shared rolling row buffer across mask rows).
    let folded = susan.program();
    let ex = explore_signal(&folded, Susan::IMAGE, &ExploreOptions::default())
        .expect("SUSAN explores");
    println!(
        "analytical: {} access groups, {} combined candidates",
        ex.groups.len(),
        ex.candidates.len()
    );

    let mut sizes = log_sizes(stats.footprint, 6);
    sizes.extend(ex.candidates.iter().map(|c| c.size));
    let curve = ReuseCurve::simulate(&trace, sizes, CurvePolicy::Optimal);
    let sim_at = |size: u64| {
        curve
            .points()
            .iter()
            .rev()
            .find(|p| p.size <= size)
            .map(|p| p.reuse_factor)
            .unwrap_or(1.0)
    };

    println!("\ncombined analytical candidates vs simulation:");
    let rows: Vec<Vec<String>> = ex
        .candidates
        .iter()
        .map(|c| {
            let kind = match c.source {
                CandidateSource::Footprint { depth_from_inner } => {
                    format!("footprint(+{depth_from_inner})")
                }
                CandidateSource::MergedFootprint { depth_from_inner } => {
                    format!("merged(+{depth_from_inner})")
                }
                CandidateSource::PairMax => "pair max".into(),
                CandidateSource::PairPartial { gamma, bypass } => {
                    format!("partial γ={gamma}{}", if bypass { " bypass" } else { "" })
                }
                CandidateSource::Simulated => "simulated".into(),
            };
            vec![
                kind,
                c.size.to_string(),
                fmt_f(c.reuse_factor(), 2),
                fmt_f(sim_at(c.size), 2),
            ]
        })
        .collect();
    print_table(&["candidate", "size", "analytic F_R", "simulated F_R"], &rows);

    let sim: Vec<(f64, f64)> = curve
        .points()
        .iter()
        .map(|p| (p.size as f64, p.reuse_factor))
        .collect();
    let (byp, ana): (
        Vec<&datareuse_core::CandidatePoint>,
        Vec<&datareuse_core::CandidatePoint>,
    ) = ex.candidates.iter().partition(|c| c.bypasses > 0);
    let ana: Vec<(f64, f64)> = ana
        .iter()
        .map(|c| (c.size as f64, c.reuse_factor()))
        .collect();
    let byp: Vec<(f64, f64)> = byp
        .iter()
        .map(|c| (c.size as f64, c.reuse_factor()))
        .collect();
    write_figure(
        "fig11a.gp",
        &gnuplot_script(
            "Fig 11a: SUSAN combined data reuse factor curve",
            "combined copy-candidate size [elements]",
            "data reuse factor",
            true,
            &[
                Series::new("Belady simulation", sim),
                Series::new("analytical (no bypass)", ana).with_style("points pt 7 ps 1.5"),
                Series::new("analytical (bypass)", byp).with_style("points pt 9 ps 1.5"),
            ],
        ),
    );
}
