//! Shared helpers for the figure-regeneration harnesses (`src/bin/fig*`)
//! and the std-only micro-benchmarks of the `datareuse` project.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{BenchGroup, Measurement};

use std::path::PathBuf;

/// Logarithmically spaced sizes in `[1, max]`, `per_decade` points per
/// decade, deduplicated and sorted — the x-axis sampling used for the
/// simulated curves of Fig. 4a/11a.
///
/// # Examples
///
/// ```
/// use datareuse_bench::log_sizes;
/// let s = log_sizes(1000, 4);
/// assert_eq!(*s.first().unwrap(), 1);
/// assert_eq!(*s.last().unwrap(), 1000);
/// assert!(s.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn log_sizes(max: u64, per_decade: usize) -> Vec<u64> {
    assert!(max >= 1 && per_decade >= 1);
    let mut out = vec![1u64];
    let decades = (max as f64).log10();
    let steps = (decades * per_decade as f64).ceil() as usize;
    for i in 1..=steps {
        let v = 10f64.powf(i as f64 / per_decade as f64).round() as u64;
        out.push(v.min(max));
    }
    out.push(max);
    out.sort_unstable();
    out.dedup();
    out
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = *w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Directory where figure scripts/data are written
/// (`target/figures`, created on demand).
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or("target".into()))
        .join("figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Writes a figure artifact and reports where it went.
pub fn write_figure(name: &str, contents: &str) {
    let path = figures_dir().join(name);
    std::fs::write(&path, contents).expect("write figure");
    println!("[figure written to {}]", path.display());
}

/// Formats a float with a fixed number of decimals for table cells.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sizes_cover_endpoints_and_are_strictly_increasing() {
        for max in [1u64, 7, 100, 25_344] {
            let s = log_sizes(max, 8);
            assert_eq!(*s.first().unwrap(), 1);
            assert_eq!(*s.last().unwrap(), max);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(2.465, 2), "2.46");
        assert_eq!(fmt_f(209.5, 1), "209.5");
    }
}
