//! The tentpole perf claim of the symbolic engine, measured: computing a
//! reuse profile for a depth-3 affine nest in closed form versus
//! materializing the address trace and running one Belady point over it.
//! The simulation bench deliberately includes trace generation — that is
//! the work the symbolic path avoids entirely.
//!
//! Run with `cargo bench --bench symbolic`; results land in
//! `target/figures/BENCH_symbolic_vs_simulation.json`. The committed
//! baseline in `benchmarks/` is asserted (≥10x) by
//! `tests/bench_artifacts.rs` and the `scripts/verify.sh` bench gate.

use std::hint::black_box;

use datareuse_bench::BenchGroup;
use datareuse_core::symbolic_profile;
use datareuse_kernels::MotionEstimation;
use datareuse_loopir::{parse_program, read_addresses};
use datareuse_trace::opt_simulate;

/// A depth-3 rolling-band nest: 32768 accesses over a 53×16 array, with
/// reuse carried by `i1` (the symbolic engine sees it in O(depth × dims)
/// arithmetic; the simulator walks every access).
const DEPTH3: &str = "array A[53][16];
for i1 in 0..16 { for i3 in 0..16 { for i5 in 0..8 {
  for i6 in 0..16 { read A[2*i1 + i3 + i5][i6]; }
} } }";

fn main() {
    let mut group = BenchGroup::new("symbolic_vs_simulation");
    let program = parse_program(DEPTH3).expect("bench kernel parses");
    let nest = &program.nests()[0];
    let profile = symbolic_profile(nest, 0).expect("depth-3 nest is conforming");
    let capacity = profile.level_candidates()[0].size;
    group.bench("symbolic_profile_depth3", || {
        symbolic_profile(black_box(nest), 0).expect("conforming")
    });
    group.throughput(profile.c_tot());
    group.bench("simulate_one_point_depth3", || {
        let trace = read_addresses(black_box(&program), "A");
        opt_simulate(&trace, capacity)
    });
    // The same comparison on the deepest shipped kernel (6 loops).
    let me = MotionEstimation::SMALL.program();
    let me_nest = &me.nests()[0];
    let me_profile = symbolic_profile(me_nest, 1).expect("ME Old access is conforming");
    let me_capacity = me_profile.level_candidates()[0].size;
    group.bench("symbolic_profile_me_small", || {
        symbolic_profile(black_box(me_nest), 1).expect("conforming")
    });
    group.bench("simulate_one_point_me_small", || {
        let trace = read_addresses(black_box(&me), MotionEstimation::OLD);
        opt_simulate(&trace, me_capacity)
    });
    group.finish();
}
