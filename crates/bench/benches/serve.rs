//! Benches of the serving layer: cold request vs cache hit, and
//! saturation throughput of the bounded worker pool.
//!
//! These run against an in-process [`datareuse_server::Server`] bound to
//! an ephemeral loopback port, so the numbers include the full path a
//! real client pays — socket write, NDJSON parse, cache probe or
//! exploration, envelope write, socket read — without any inter-process
//! noise.
//!
//! Run with `cargo bench --bench serve`; results land in
//! `target/figures/BENCH_*.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use datareuse_bench::BenchGroup;
use datareuse_server::{Server, ServerConfig};

/// Starts a server and returns its address plus the running thread.
fn start(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("binds");
    let addr = server.local_addr().expect("bound").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    (addr, handle)
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).expect("nodelay");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        // One write per request: split writes re-introduce Nagle stalls.
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        response
    }
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut conn = Conn::open(addr);
    conn.roundtrip(r#"{"op":"shutdown"}"#);
    handle.join().expect("clean exit");
}

/// Cold request (cache disabled) vs cache hit for the same explore body:
/// the gap is the entire analytical exploration the cache saves.
fn bench_cold_vs_cached() {
    let mut group = BenchGroup::new("serve_latency");
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;

    let (addr, handle) = start(ServerConfig {
        cache_entries: 0, // every request recomputes
        threads: 1,
        ..ServerConfig::default()
    });
    let mut conn = Conn::open(&addr);
    // Latency benches: request/response round-trips are tail-sensitive,
    // so time each call individually for p50/p99 columns.
    group.bench_latency("explore_cold", || conn.roundtrip(request).len());
    drop(conn);
    shutdown(&addr, handle);

    let (addr, handle) = start(ServerConfig {
        cache_entries: 64,
        threads: 1,
        ..ServerConfig::default()
    });
    let mut conn = Conn::open(&addr);
    conn.roundtrip(request); // warm the cache
    group.bench_latency("explore_cache_hit", || conn.roundtrip(request).len());
    group.bench_latency("ping", || conn.roundtrip(r#"{"op":"ping"}"#).len());
    drop(conn);
    shutdown(&addr, handle);
    group.finish();
}

/// Saturation throughput: 4 connections issuing distinct (uncacheable by
/// each other) requests as fast as the pool drains them.
fn bench_saturation() {
    let mut group = BenchGroup::new("serve_throughput");
    let (addr, handle) = start(ServerConfig {
        cache_entries: 1024,
        queue_depth: 256,
        default_deadline: Duration::from_secs(60),
        ..ServerConfig::default()
    });
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;
    // Warm every distinct request once so the measured loop exercises the
    // full concurrent cache-hit path (the steady state of a busy server).
    let mut warm = Conn::open(&addr);
    for k in 0..PER_CLIENT {
        warm.roundtrip(&format!(
            r#"{{"op":"explore","kernel":"me-small","array":"Old","depth":{}}}"#,
            2 + k % 2
        ));
    }
    drop(warm);
    group.throughput((CLIENTS * PER_CLIENT) as u64);
    group.bench("concurrent_cache_hits", || {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut conn = Conn::open(&addr);
                    let mut bytes = 0usize;
                    for k in 0..PER_CLIENT {
                        bytes += conn
                            .roundtrip(&format!(
                                r#"{{"op":"explore","kernel":"me-small","array":"Old","depth":{}}}"#,
                                2 + k % 2
                            ))
                            .len();
                    }
                    bytes
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client")).sum::<usize>()
    });
    shutdown(&addr, handle);
    group.finish();
}

/// Framing and coalescing economics: one `batch` frame versus the same
/// sixteen requests as pipelined single frames, and the singleflight
/// fan-out where identical concurrent requests share one computation.
fn bench_ops() {
    let mut group = BenchGroup::new("serve_ops");
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;
    const N: usize = 16;

    let (addr, handle) = start(ServerConfig {
        cache_entries: 64,
        threads: 1,
        ..ServerConfig::default()
    });
    let mut conn = Conn::open(&addr);
    conn.roundtrip(request); // warm: every sub-request below is a hit
    let batch = format!(
        r#"{{"op":"batch","requests":[{}]}}"#,
        vec![request; N].join(",")
    );
    group.bench_latency("batch_16_cache_hits", || conn.roundtrip(&batch).len());
    // The same sixteen requests as individual frames, pipelined in one
    // write: the delta against `batch_16_cache_hits` is pure framing —
    // sixteen envelopes and response lines instead of one.
    let singles: String = format!("{request}\n").repeat(N);
    group.bench_latency("singles_16_pipelined", || {
        conn.writer.write_all(singles.as_bytes()).expect("send");
        let mut bytes = 0usize;
        for _ in 0..N {
            let mut line = String::new();
            conn.reader.read_line(&mut line).expect("receive");
            bytes += line.len();
        }
        bytes
    });
    drop(conn);
    shutdown(&addr, handle);

    // Singleflight fan-out with the cache off: eight identical frames
    // arrive in one read pass, the leader computes once, seven followers
    // coalesce onto the flight. Compare against `explore_cold` in
    // `serve_latency` — eight answers for roughly one computation.
    let (addr, handle) = start(ServerConfig {
        cache_entries: 0,
        threads: 1,
        ..ServerConfig::default()
    });
    let mut conn = Conn::open(&addr);
    const FAN: usize = 8;
    let fan: String = format!("{request}\n").repeat(FAN);
    group.bench_latency("coalesced_fanout_8", || {
        conn.writer.write_all(fan.as_bytes()).expect("send");
        let mut bytes = 0usize;
        for _ in 0..FAN {
            let mut line = String::new();
            conn.reader.read_line(&mut line).expect("receive");
            bytes += line.len();
        }
        bytes
    });
    drop(conn);
    shutdown(&addr, handle);
    group.finish();
}

fn main() {
    bench_cold_vs_cached();
    bench_saturation();
    bench_ops();
}
