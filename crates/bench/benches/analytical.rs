//! Criterion benches of the paper's headline claim: the analytical model
//! "avoids long simulation times". We time the full analytical
//! exploration of the QCIF motion-estimation kernel (which never touches
//! the 6.5M-access trace) against simulating a single Belady point on the
//! small instance, plus the individual model stages.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use datareuse_codegen::{run_schedule, Strategy};
use datareuse_core::{
    explore_signal, footprint_levels, max_reuse, partial_sweep, ExploreOptions, PairGeometry,
};
use datareuse_kernels::{MotionEstimation, Susan};
use datareuse_loopir::read_addresses;
use datareuse_memmodel::{BitCount, MemoryTechnology};
use datareuse_trace::opt_simulate;

fn bench_analytical_vs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytical_vs_simulation");
    // Analytical exploration of the FULL QCIF kernel: pure closed forms.
    let qcif = MotionEstimation::QCIF.program();
    group.bench_function("analytic_explore_qcif", |b| {
        b.iter(|| {
            explore_signal(
                black_box(&qcif),
                MotionEstimation::OLD,
                &ExploreOptions::default(),
            )
            .expect("explores")
        })
    });
    // One Belady point on the scaled-down instance (the full QCIF trace
    // takes seconds per point — exactly the cost the model avoids).
    let small = MotionEstimation::SMALL.program();
    let trace = read_addresses(&small, MotionEstimation::OLD);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("simulate_one_point_small", |b| {
        b.iter(|| opt_simulate(black_box(&trace), 121))
    });
    group.finish();
}

fn bench_model_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_stages");
    let qcif = MotionEstimation::QCIF.program();
    let nest = &qcif.nests()[0];
    group.bench_function("footprint_levels_me", |b| {
        b.iter(|| footprint_levels(black_box(nest), 1).expect("levels"))
    });
    let geom = PairGeometry::from_access(nest, 1, 3, 5).expect("pair (i4, i6)");
    group.bench_function("max_reuse_point", |b| {
        b.iter(|| max_reuse(black_box(&geom)))
    });
    group.bench_function("partial_sweep_bypass", |b| {
        b.iter(|| partial_sweep(black_box(&geom), true))
    });
    let susan = Susan::QCIF.unfolded_program();
    group.bench_function("explore_susan_unfolded", |b| {
        b.iter(|| {
            explore_signal(black_box(&susan), Susan::IMAGE, &ExploreOptions::default())
                .expect("explores")
        })
    });
    group.finish();
}

fn bench_pareto_and_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_and_codegen");
    let qcif = MotionEstimation::QCIF.program();
    let opts = ExploreOptions::default();
    let ex = explore_signal(&qcif, MotionEstimation::OLD, &opts).expect("explores");
    let tech = MemoryTechnology::new();
    group.bench_function("chain_enumeration_and_pareto", |b| {
        b.iter(|| ex.pareto(black_box(&opts), &tech, &BitCount))
    });
    let small = MotionEstimation::SMALL.program();
    group.bench_function("verify_schedule_small", |b| {
        b.iter(|| run_schedule(black_box(&small), 0, 1, 3, 5, Strategy::MaxReuse).expect("runs"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_analytical_vs_simulation,
    bench_model_stages,
    bench_pareto_and_codegen
);
criterion_main!(benches);
