//! Benches of the paper's headline claim: the analytical model "avoids
//! long simulation times". We time the full analytical exploration of the
//! QCIF motion-estimation kernel (which never touches the 6.5M-access
//! trace) against simulating a single Belady point on the small instance,
//! plus the individual model stages.
//!
//! Run with `cargo bench --bench analytical`; results land in
//! `target/figures/BENCH_*.json`.

use std::hint::black_box;

use datareuse_bench::BenchGroup;
use datareuse_codegen::{run_schedule, Strategy};
use datareuse_core::{
    explore_signal, footprint_levels, max_reuse, partial_sweep, ExploreOptions, PairGeometry,
};
use datareuse_kernels::{MotionEstimation, Susan};
use datareuse_loopir::read_addresses;
use datareuse_memmodel::{BitCount, MemoryTechnology};
use datareuse_trace::opt_simulate;

fn bench_analytical_vs_simulation() {
    let mut group = BenchGroup::new("analytical_vs_simulation");
    // Analytical exploration of the FULL QCIF kernel: pure closed forms.
    let qcif = MotionEstimation::QCIF.program();
    group.bench("analytic_explore_qcif", || {
        explore_signal(
            black_box(&qcif),
            MotionEstimation::OLD,
            &ExploreOptions::default(),
        )
        .expect("explores")
    });
    // One Belady point on the scaled-down instance (the full QCIF trace
    // takes seconds per point — exactly the cost the model avoids).
    let small = MotionEstimation::SMALL.program();
    let trace = read_addresses(&small, MotionEstimation::OLD);
    group.throughput(trace.len() as u64);
    group.bench("simulate_one_point_small", || {
        opt_simulate(black_box(&trace), 121)
    });
    group.finish();
}

fn bench_model_stages() {
    let mut group = BenchGroup::new("model_stages");
    let qcif = MotionEstimation::QCIF.program();
    let nest = &qcif.nests()[0];
    group.bench("footprint_levels_me", || {
        footprint_levels(black_box(nest), 1).expect("levels")
    });
    let geom = PairGeometry::from_access(nest, 1, 3, 5).expect("pair (i4, i6)");
    group.bench("max_reuse_point", || max_reuse(black_box(&geom)));
    group.bench("partial_sweep_bypass", || {
        partial_sweep(black_box(&geom), true)
    });
    let susan = Susan::QCIF.unfolded_program();
    group.bench("explore_susan_unfolded", || {
        explore_signal(black_box(&susan), Susan::IMAGE, &ExploreOptions::default())
            .expect("explores")
    });
    group.finish();
}

fn bench_pareto_and_codegen() {
    let mut group = BenchGroup::new("pareto_and_codegen");
    let qcif = MotionEstimation::QCIF.program();
    let opts = ExploreOptions::default();
    let ex = explore_signal(&qcif, MotionEstimation::OLD, &opts).expect("explores");
    let tech = MemoryTechnology::new();
    group.bench("chain_enumeration_and_pareto", || {
        ex.pareto(black_box(&opts), &tech, &BitCount)
    });
    let small = MotionEstimation::SMALL.program();
    group.bench("verify_schedule_small", || {
        run_schedule(black_box(&small), 0, 1, 3, 5, Strategy::MaxReuse).expect("runs")
    });
    group.finish();
}

fn main() {
    bench_analytical_vs_simulation();
    bench_model_stages();
    bench_pareto_and_codegen();
}
