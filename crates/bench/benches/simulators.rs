//! Benches of the trace-simulation substrate: Belady OPT (with and
//! without bypass), LRU, FIFO, direct-mapped and one-pass stack
//! distances, on the motion-estimation trace.
//!
//! Run with `cargo bench --bench simulators`; results land in
//! `target/figures/BENCH_*.json`.

use std::hint::black_box;

use datareuse_bench::BenchGroup;
use datareuse_kernels::MotionEstimation;
use datareuse_loopir::read_addresses;
use datareuse_trace::{
    direct_mapped_simulate, fifo_simulate, hierarchy_simulate, lru_simulate, opt_simulate,
    opt_simulate_bypass, opt_simulate_many, sampled_reuse_curve, CurvePolicy, StackDistances,
};

fn trace() -> Vec<u64> {
    read_addresses(&MotionEstimation::SMALL.program(), MotionEstimation::OLD)
}

fn bench_policies() {
    let trace = trace();
    let mut group = BenchGroup::new("policies");
    group.throughput(trace.len() as u64);
    for capacity in [16u64, 121] {
        group.bench(&format!("belady/{capacity}"), || {
            opt_simulate(black_box(&trace), capacity)
        });
        group.bench(&format!("belady_bypass/{capacity}"), || {
            opt_simulate_bypass(black_box(&trace), capacity)
        });
        group.bench(&format!("lru/{capacity}"), || {
            lru_simulate(black_box(&trace), capacity)
        });
        group.bench(&format!("fifo/{capacity}"), || {
            fifo_simulate(black_box(&trace), capacity)
        });
        group.bench(&format!("direct/{capacity}"), || {
            direct_mapped_simulate(black_box(&trace), capacity)
        });
    }
    group.finish();
}

fn bench_stack_distances() {
    let trace = trace();
    let mut group = BenchGroup::new("stack_distances");
    group.throughput(trace.len() as u64);
    group.bench("mattson_one_pass", || {
        StackDistances::compute(black_box(&trace))
    });
    group.finish();
}

fn bench_batch_and_hierarchy() {
    let trace = trace();
    let mut group = BenchGroup::new("batch_and_hierarchy");
    group.throughput(trace.len() as u64);
    let sizes = [4u64, 16, 64, 121, 429];
    group.bench("opt_many_5_sizes_shared_table", || {
        opt_simulate_many(black_box(&trace), &sizes)
    });
    group.bench("hierarchy_cascade_3_levels", || {
        hierarchy_simulate(black_box(&trace), &[16, 44, 429])
    });
    group.bench("sampled_curve_10pct", || {
        sampled_reuse_curve(black_box(&trace), [16, 64, 429], 0.1, CurvePolicy::Optimal)
    });
    group.finish();
}

fn main() {
    bench_policies();
    bench_stack_distances();
    bench_batch_and_hierarchy();
}
