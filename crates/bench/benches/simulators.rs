//! Criterion benches of the trace-simulation substrate: Belady OPT (with
//! and without bypass), LRU, FIFO, direct-mapped and one-pass stack
//! distances, on the motion-estimation trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datareuse_kernels::MotionEstimation;
use datareuse_loopir::read_addresses;
use datareuse_trace::{
    direct_mapped_simulate, fifo_simulate, hierarchy_simulate, lru_simulate, opt_simulate,
    opt_simulate_bypass, opt_simulate_many, sampled_reuse_curve, CurvePolicy, StackDistances,
};

fn trace() -> Vec<u64> {
    read_addresses(&MotionEstimation::SMALL.program(), MotionEstimation::OLD)
}

fn bench_policies(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("policies");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for capacity in [16u64, 121] {
        group.bench_with_input(BenchmarkId::new("belady", capacity), &capacity, |b, &cap| {
            b.iter(|| opt_simulate(black_box(&trace), cap))
        });
        group.bench_with_input(
            BenchmarkId::new("belady_bypass", capacity),
            &capacity,
            |b, &cap| b.iter(|| opt_simulate_bypass(black_box(&trace), cap)),
        );
        group.bench_with_input(BenchmarkId::new("lru", capacity), &capacity, |b, &cap| {
            b.iter(|| lru_simulate(black_box(&trace), cap))
        });
        group.bench_with_input(BenchmarkId::new("fifo", capacity), &capacity, |b, &cap| {
            b.iter(|| fifo_simulate(black_box(&trace), cap))
        });
        group.bench_with_input(
            BenchmarkId::new("direct", capacity),
            &capacity,
            |b, &cap| b.iter(|| direct_mapped_simulate(black_box(&trace), cap)),
        );
    }
    group.finish();
}

fn bench_stack_distances(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("stack_distances");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("mattson_one_pass", |b| {
        b.iter(|| StackDistances::compute(black_box(&trace)))
    });
    group.finish();
}

fn bench_batch_and_hierarchy(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("batch_and_hierarchy");
    group.throughput(Throughput::Elements(trace.len() as u64));
    let sizes = [4u64, 16, 64, 121, 429];
    group.bench_function("opt_many_5_sizes_shared_table", |b| {
        b.iter(|| opt_simulate_many(black_box(&trace), &sizes))
    });
    group.bench_function("hierarchy_cascade_3_levels", |b| {
        b.iter(|| hierarchy_simulate(black_box(&trace), &[16, 44, 429]))
    });
    group.bench_function("sampled_curve_10pct", |b| {
        b.iter(|| {
            sampled_reuse_curve(black_box(&trace), [16, 64, 429], 0.1, CurvePolicy::Optimal)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_stack_distances,
    bench_batch_and_hierarchy
);
criterion_main!(benches);
