//! # datareuse-steps
//!
//! The DTSE steps immediately downstream of the data reuse decision, for
//! the `datareuse` project (reproduction of the DATE 2002 data-reuse
//! exploration paper).
//!
//! The paper's Section 3 situates the data reuse step inside the DTSE
//! script and defers two concerns to later steps; this crate implements
//! working versions of both so a copy-candidate decision can be carried
//! through to an implementable buffer:
//!
//! - [`distribute_cycles`] — *storage cycle budget distribution* (step 4):
//!   per-iteration port pressure of a copy decision, with and without the
//!   software-pipelining freedom of the single-assignment template;
//! - [`map_inplace`] — *in-place mapping* (step 6): folds the enlarged
//!   single-assignment buffer back to the exact peak liveness, recovering
//!   the analytical `A`.
//!
//! # Examples
//!
//! ```
//! use datareuse_codegen::Strategy;
//! use datareuse_loopir::parse_program;
//! use datareuse_steps::{distribute_cycles, map_inplace, PortBudget};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
//! let scbd = distribute_cycles(&p, 0, 0, 0, 1, Strategy::MaxReuse, PortBudget::default())?;
//! let inplace = map_inplace(&p, 0, 0, 0, 1, Strategy::MaxReuse)?;
//! assert!(inplace.inplace_words <= inplace.single_assignment_words);
//! assert!(scbd.cycles_required_spread <= scbd.cycles_required);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inplace;
mod scbd;

pub use inplace::{map_inplace, InplaceReport};
pub use scbd::{distribute_cycles, PortBudget, ScbdReport};
