//! Storage cycle budget distribution (DTSE step 4), for one
//! copy-candidate decision.
//!
//! After the data reuse step fixes *what* is copied, SCBD determines "the
//! bandwidth/latency requirements and the balancing of the available
//! cycle budget over the different memory accesses". This module computes
//! the per-iteration access pressure of a chosen copy strategy, with and
//! without the scheduling freedom of the single-assignment template
//! variant ("the SCBD can then trade off a larger final copy-candidate
//! size with better timings for performance", Section 6.1), and checks it
//! against the available memory ports.

use datareuse_codegen::{run_schedule, ScheduleError, Strategy};
use datareuse_core::PairGeometry;
use datareuse_loopir::Program;

/// Port configuration of the two memories a single copy level touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortBudget {
    /// Simultaneous accesses per cycle on the copy-candidate buffer.
    pub buffer_ports: u64,
    /// Simultaneous accesses per cycle on the next-higher level.
    pub upstream_ports: u64,
    /// Cycles available per innermost iteration.
    pub cycles_per_iteration: u64,
}

impl Default for PortBudget {
    fn default() -> Self {
        Self {
            buffer_ports: 1,
            upstream_ports: 1,
            cycles_per_iteration: 1,
        }
    }
}

/// The SCBD analysis for one copy decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScbdReport {
    /// Buffer operations in the worst innermost iteration: the data read
    /// plus any fill write landing in the same iteration.
    pub peak_buffer_ops_per_iteration: u64,
    /// Upstream reads in the worst innermost iteration (fill or bypass).
    pub peak_upstream_ops_per_iteration: u64,
    /// Fills in the worst iteration of the pair's outer loop — the burst
    /// the single-assignment variant may spread across that whole
    /// iteration.
    pub peak_fills_per_outer_iteration: u64,
    /// Inner iterations available to spread that burst over.
    pub spread_window: u64,
    /// Fills per innermost iteration after single-assignment spreading
    /// (rounded up).
    pub spread_fills_per_iteration: u64,
    /// Cycles per innermost iteration needed without spreading.
    pub cycles_required: u64,
    /// Cycles per innermost iteration needed with spreading.
    pub cycles_required_spread: u64,
    /// Whether the budget holds without the single-assignment freedom.
    pub feasible: bool,
    /// Whether the budget holds once updates are moved out of the critical
    /// kernel ("the conditional update will be moved out … by the SCBD
    /// step to allow for software pipelining").
    pub feasible_spread: bool,
}

fn cycles_for(buffer_ops: u64, upstream_ops: u64, ports: PortBudget) -> u64 {
    let b = buffer_ops.div_ceil(ports.buffer_ports.max(1));
    let u = upstream_ops.div_ceil(ports.upstream_ports.max(1));
    b.max(u)
}

/// Analyzes the cycle budget of one copy decision.
///
/// # Errors
///
/// Fails like [`run_schedule`] (bad indices, no reuse, invalid γ).
///
/// # Examples
///
/// ```
/// use datareuse_codegen::Strategy;
/// use datareuse_loopir::parse_program;
/// use datareuse_steps::{distribute_cycles, PortBudget};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let r = distribute_cycles(&p, 0, 0, 0, 1, Strategy::MaxReuse, PortBudget::default())?;
/// // A fill and the read can land in the same iteration: 2 buffer ops on
/// // 1 port needs 2 cycles, so a 1-cycle budget only holds after
/// // single-assignment spreading... which cannot reduce below 1 fill here.
/// assert_eq!(r.peak_buffer_ops_per_iteration, 2);
/// assert!(!r.feasible);
/// # Ok(())
/// # }
/// ```
pub fn distribute_cycles(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    strategy: Strategy,
    ports: PortBudget,
) -> Result<ScbdReport, ScheduleError> {
    let report = run_schedule(program, nest, access, outer, inner, strategy)?;
    let raw_nest = &program.nests()[nest];
    let geom = PairGeometry::from_access(raw_nest, access, outer, inner)?;
    // Inner iterations per outer (j) iteration: everything below `outer`.
    let spread_window: u64 = raw_nest.loops()[outer + 1..]
        .iter()
        .map(|l| l.trip_count())
        .product::<u64>()
        .max(1);
    let _ = &geom;

    // Worst innermost iteration without spreading: the data read (a hit or
    // the fill's own read-back) plus a fill write on the buffer; the
    // upstream sees the fill's read (or a bypass read).
    let fill_burst = report.max_fills_per_iteration;
    let peak_buffer = 1 + fill_burst; // read + fill write
    let peak_upstream = fill_burst.max(u64::from(report.bypasses > 0));
    let cycles_required = cycles_for(peak_buffer, peak_upstream, ports);

    let spread_fills = report.max_fills_per_outer_iteration.div_ceil(spread_window);
    let spread_buffer = 1 + spread_fills;
    let spread_upstream = spread_fills.max(u64::from(report.bypasses > 0));
    let cycles_required_spread = cycles_for(spread_buffer, spread_upstream, ports);

    Ok(ScbdReport {
        peak_buffer_ops_per_iteration: peak_buffer,
        peak_upstream_ops_per_iteration: peak_upstream,
        peak_fills_per_outer_iteration: report.max_fills_per_outer_iteration,
        spread_window,
        spread_fills_per_iteration: spread_fills,
        cycles_required,
        cycles_required_spread,
        feasible: cycles_required <= ports.cycles_per_iteration,
        feasible_spread: cycles_required_spread <= ports.cycles_per_iteration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_loopir::parse_program;

    fn window() -> Program {
        parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }").unwrap()
    }

    #[test]
    fn spreading_never_hurts() {
        let p = window();
        let r = distribute_cycles(
            &p,
            0,
            0,
            0,
            1,
            Strategy::MaxReuse,
            PortBudget::default(),
        )
        .unwrap();
        assert!(r.cycles_required_spread <= r.cycles_required);
        assert!(r.spread_fills_per_iteration <= r.peak_fills_per_outer_iteration);
        assert_eq!(r.spread_window, 8);
    }

    #[test]
    fn dual_port_buffer_makes_max_reuse_single_cycle() {
        let p = window();
        let ports = PortBudget {
            buffer_ports: 2,
            upstream_ports: 1,
            cycles_per_iteration: 1,
        };
        let r = distribute_cycles(&p, 0, 0, 0, 1, Strategy::MaxReuse, ports).unwrap();
        // 2 buffer ops on 2 ports + 1 upstream op on 1 port -> 1 cycle.
        assert!(r.feasible);
    }

    #[test]
    fn bypass_keeps_upstream_pressure() {
        let p = window();
        let r = distribute_cycles(
            &p,
            0,
            0,
            0,
            1,
            Strategy::PartialBypass { gamma: 2 },
            PortBudget::default(),
        )
        .unwrap();
        assert!(r.peak_upstream_ops_per_iteration >= 1);
    }

    #[test]
    fn me_inner_nest_spreads_the_slice_burst() {
        let p = parse_program(
            "array Old[8][23];
             for i4 in 0..16 { for i5 in 0..8 { for i6 in 0..8 {
               read Old[i5][i4 + i6]; } } }",
        )
        .unwrap();
        let r = distribute_cycles(
            &p,
            0,
            0,
            0,
            2,
            Strategy::MaxReuse,
            PortBudget::default(),
        )
        .unwrap();
        // First i4 iteration loads a whole 56-element window over a
        // 64-iteration spread window.
        assert_eq!(r.spread_window, 64);
        assert!(r.peak_fills_per_outer_iteration >= 56);
        assert_eq!(r.spread_fills_per_iteration, 1);
    }

    #[test]
    fn errors_propagate() {
        let p = parse_program("array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }")
            .unwrap();
        assert!(distribute_cycles(
            &p,
            0,
            0,
            0,
            1,
            Strategy::MaxReuse,
            PortBudget::default()
        )
        .is_err());
    }
}
