//! In-place mapping (DTSE step 6), for one copy-candidate buffer.
//!
//! The Section 6.1 template deliberately over-allocates when the
//! single-assignment variant is used ("enlarging the dimensions of the
//! copy to `A_sub[c'][((jU−jL)/c')·b' + kU + 1]`"), leaving it to the
//! in-place mapping step to "exploit the limited life-time of signals to
//! further decrease the storage size requirements". This module computes
//! all three sizes for a copy decision — the enlarged single-assignment
//! buffer, the analytical `A`, and the exact peak liveness realized by
//! the executed schedule — and the modulo folding that achieves the
//! smallest one.

use datareuse_codegen::{run_schedule, ScheduleError, Strategy};
use datareuse_core::{max_reuse, partial_reuse, PairGeometry, ReuseClass};
use datareuse_loopir::Program;

/// Sizes of one copy-candidate under the three storage disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InplaceReport {
    /// The enlarged single-assignment buffer the SCBD step schedules into.
    pub single_assignment_words: u64,
    /// The analytical copy-candidate size `A` (eq. 15/18/22).
    pub analytical_words: u64,
    /// Exact peak number of simultaneously live elements, from executing
    /// the schedule.
    pub inplace_words: u64,
    /// Elements reclaimed by in-place folding relative to the
    /// single-assignment buffer.
    pub words_saved: u64,
    /// The modulo factor folding the single-assignment columns back into
    /// the in-place buffer (the Fig. 8 `% (kRANGE − b')` divisor).
    pub fold_modulo: u64,
}

impl InplaceReport {
    /// Fraction of the single-assignment storage reclaimed.
    pub fn savings_ratio(&self) -> f64 {
        if self.single_assignment_words == 0 {
            0.0
        } else {
            self.words_saved as f64 / self.single_assignment_words as f64
        }
    }
}

/// Computes the in-place mapping report for one copy decision.
///
/// # Errors
///
/// Fails like [`run_schedule`]; additionally when the pair carries no
/// reuse (there is no buffer to map).
///
/// # Examples
///
/// ```
/// use datareuse_codegen::Strategy;
/// use datareuse_loopir::parse_program;
/// use datareuse_steps::map_inplace;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")?;
/// let r = map_inplace(&p, 0, 0, 0, 1, Strategy::MaxReuse)?;
/// assert_eq!(r.single_assignment_words, 23); // 15·1 + 8 columns
/// assert_eq!(r.analytical_words, 7);         // A_Max = c'(kRANGE − b')
/// assert_eq!(r.inplace_words, 7);            // the closed form is tight
/// # Ok(())
/// # }
/// ```
pub fn map_inplace(
    program: &Program,
    nest: usize,
    access: usize,
    outer: usize,
    inner: usize,
    strategy: Strategy,
) -> Result<InplaceReport, ScheduleError> {
    let raw_nest = program
        .nests()
        .get(nest)
        .ok_or(ScheduleError::NoSuchNest { nest })?;
    let geom = PairGeometry::from_access(raw_nest, access, outer, inner)?;
    let (bp, cp) = match geom.class {
        ReuseClass::NoReuse => return Err(ScheduleError::NoReuse),
        ReuseClass::SameElement => (0, 1),
        ReuseClass::Vector { bp, cp, .. } => (bp, cp.max(1)),
    };
    let analytical = match strategy {
        Strategy::MaxReuse => max_reuse(&geom).ok_or(ScheduleError::NoReuse)?,
        Strategy::Partial { gamma } => {
            partial_reuse(&geom, gamma, false).ok_or(ScheduleError::BadGamma { gamma })?
        }
        Strategy::PartialBypass { gamma } => {
            partial_reuse(&geom, gamma, true).ok_or(ScheduleError::BadGamma { gamma })?
        }
    };
    // Single-assignment buffer: c' rows × ((jU−jL)/c')·b' + kU + 1 columns,
    // one copy per repeat-distinct slice (Section 6.1).
    let sa_cols = ((geom.j_range - 1) / cp) * bp + geom.k_range;
    let single_assignment_words = (cp * sa_cols) as u64 * geom.repeat_distinct;
    let fold_modulo = match strategy {
        Strategy::MaxReuse => (geom.k_range - bp).max(1) as u64,
        Strategy::Partial { gamma } => (gamma + 1) as u64,
        Strategy::PartialBypass { gamma } => gamma.max(1) as u64,
    };
    let executed = run_schedule(program, nest, access, outer, inner, strategy)?;
    Ok(InplaceReport {
        single_assignment_words,
        analytical_words: analytical.size,
        inplace_words: executed.max_occupancy,
        words_saved: single_assignment_words.saturating_sub(executed.max_occupancy),
        fold_modulo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datareuse_kernels::MotionEstimation;
    use datareuse_loopir::parse_program;

    #[test]
    fn sizes_are_ordered_and_max_reuse_is_tight() {
        let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        let r = map_inplace(&p, 0, 0, 0, 1, Strategy::MaxReuse).unwrap();
        assert!(r.inplace_words <= r.analytical_words);
        assert!(r.analytical_words <= r.single_assignment_words);
        assert_eq!(r.inplace_words, r.analytical_words);
        assert!(r.savings_ratio() > 0.5);
        assert_eq!(r.fold_modulo, 7);
    }

    #[test]
    fn partial_buffers_fold_to_gamma() {
        let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .unwrap();
        for gamma in [1i64, 3, 5] {
            let r = map_inplace(&p, 0, 0, 0, 1, Strategy::Partial { gamma }).unwrap();
            assert!(r.inplace_words <= r.analytical_words, "γ={gamma}");
            assert_eq!(r.fold_modulo, (gamma + 1) as u64);
            let rb = map_inplace(&p, 0, 0, 0, 1, Strategy::PartialBypass { gamma }).unwrap();
            assert!(rb.inplace_words <= rb.analytical_words, "γ={gamma}");
            assert!(rb.inplace_words <= r.inplace_words);
        }
    }

    #[test]
    fn me_inner_nest_single_assignment_blowup_is_reclaimed() {
        let p = MotionEstimation::SMALL.program();
        let r = map_inplace(&p, 0, 1, 3, 5, Strategy::MaxReuse).unwrap();
        // §6.3: A = n(n−1) with n=4 → 12; the single-assignment variant
        // allocates a full (2m−1)b'+n column span per slice.
        assert_eq!(r.analytical_words, 12);
        assert_eq!(r.inplace_words, 12);
        assert!(r.single_assignment_words > 2 * r.inplace_words);
    }

    #[test]
    fn no_reuse_errors() {
        let p = parse_program("array A[8][8]; for j in 0..8 { for k in 0..8 { read A[j][k]; } }")
            .unwrap();
        assert!(matches!(
            map_inplace(&p, 0, 0, 0, 1, Strategy::MaxReuse),
            Err(ScheduleError::NoReuse)
        ));
    }
}
