//! Deterministic property-based testing with zero external dependencies.
//!
//! A small in-repo replacement for the `proptest` crate, built on a
//! SplitMix64 generator with *fixed seeds*: every run of the test suite
//! exercises the identical case sequence, so CI and local runs agree
//! bit-for-bit and a failure is reproducible from its printed `(seed,
//! case)` pair alone.
//!
//! # Usage
//!
//! ```
//! use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config};
//!
//! check("addition_commutes", &Config::default(), |rng| {
//!     (rng.i64_in(-100, 100), rng.i64_in(-100, 100))
//! }, |&(a, b)| {
//!     prop_assert_eq!(a + b, b + a);
//!     prop_assert!(a + b >= a.min(b) * 2 - 200, "bounds sanity");
//!     Ok(())
//! });
//! ```
//!
//! # Reproducing a failure
//!
//! A failing property panics with the shrunk counterexample, the seed and
//! the case index. Re-run just that case with
//! `DATAREUSE_PROPTEST_SEED=<seed> DATAREUSE_PROPTEST_CASES=<n>` set, or
//! paste the shrunk value into a named `#[test]` (the convention used in
//! `tests/properties.rs` for previously recorded regressions).
//!
//! # Shrinking
//!
//! When a case fails, the harness greedily applies [`Shrink::shrinks`]
//! candidates while they keep failing, bounded by
//! [`Config::max_shrink_steps`]. Integers shrink toward zero, vectors
//! shrink by removing elements and shrinking members, tuples shrink one
//! component at a time — the same shapes `proptest` produced for the
//! regression seeds this repo recorded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

/// Golden-ratio increment of SplitMix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic SplitMix64 pseudo-random generator.
///
/// Passes through every 64-bit state exactly once; plenty for test-case
/// generation and far simpler than anything crates.io offers.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 output function).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection-free modulo is fine at test-case scale: the bias over
        // spans < 2^32 is < 2^-32.
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.u64_in(0, span) as i64)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A vector with length in `[min_len, max_len]`, elements drawn by `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Produces simpler variants of a failing value, tried in order.
pub trait Shrink: Sized {
    /// Candidate simplifications, simplest first. Must not contain the
    /// value itself, and must be finitely productive (each candidate is
    /// strictly "smaller"), so the greedy shrink loop terminates.
    fn shrinks(&self) -> Vec<Self>;
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrinks(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrinks(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v - v.signum(), v.checked_abs().unwrap_or(v)] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
shrink_signed!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrinks(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl Shrink for f64 {
    fn shrinks(&self) -> Vec<Self> {
        let v = *self;
        let mut out = Vec::new();
        for c in [0.0, v / 2.0, v.trunc()] {
            if c != v && !out.iter().any(|&o: &f64| o == c) {
                out.push(c);
            }
        }
        out
    }
}

impl Shrink for String {
    fn shrinks(&self) -> Vec<Self> {
        if self.is_empty() {
            Vec::new()
        } else {
            vec![String::new(), self[..self.len() / 2].to_string()]
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrinks(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Drop whole chunks first (fast length reduction)...
        out.push(self[..n / 2].to_vec());
        out.push(self[n / 2..].to_vec());
        // ...then single elements...
        for i in 0..n.min(24) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // ...then shrink members in place (first candidate only, to keep
        // the fan-out bounded).
        for i in 0..n.min(24) {
            if let Some(s) = self[i].shrinks().into_iter().next() {
                let mut v = self.clone();
                v[i] = s;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrinks(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrinks() {
                        let mut t = self.clone();
                        t.$idx = c;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
shrink_tuple!(A: 0);
shrink_tuple!(A: 0, B: 1);
shrink_tuple!(A: 0, B: 1, C: 2);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u64,
    /// Base seed; each case `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// Upper bound on greedy shrink iterations after a failure.
    pub max_shrink_steps: u64,
}

/// The default seed. Every suite in the workspace runs from this value
/// unless `DATAREUSE_PROPTEST_SEED` overrides it.
pub const DEFAULT_SEED: u64 = 0xDA7A_2EB5_E000_2002;

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            seed: DEFAULT_SEED,
            max_shrink_steps: 2_048,
        }
    }
}

impl Config {
    /// A config running `cases` cases with the default seed.
    pub fn with_cases(cases: u64) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// Applies `DATAREUSE_PROPTEST_SEED` / `DATAREUSE_PROPTEST_CASES`
    /// environment overrides, for reproducing or stressing.
    fn resolved(&self) -> Self {
        let mut cfg = *self;
        if let Some(seed) = env_u64("DATAREUSE_PROPTEST_SEED") {
            cfg.seed = seed;
        }
        if let Some(cases) = env_u64("DATAREUSE_PROPTEST_CASES") {
            cfg.cases = cases;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name}={v} is not a u64")))
}

/// Per-case generator stream: decorrelates the case index through one
/// SplitMix64 round so neighbouring cases share no structure.
fn case_rng(seed: u64, case: u64) -> Rng {
    let mut r = Rng::new(seed ^ case.wrapping_mul(GOLDEN));
    r.next_u64();
    r
}

/// Runs `prop` over `cfg.cases` values drawn by `gen`, shrinking and
/// panicking on the first failure.
///
/// `prop` returns `Err(reason)` (usually via [`prop_assert!`] /
/// [`prop_assert_eq!`]) when the property is violated.
///
/// # Panics
///
/// Panics with the shrunk counterexample, seed and case index when the
/// property fails.
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let cfg = cfg.resolved();
    for case in 0..cfg.cases {
        let value = gen(&mut case_rng(cfg.seed, case));
        if let Err(first_err) = prop(&value) {
            let (shrunk, err, steps) = shrink_failure(value, first_err, &prop, &cfg);
            panic!(
                "property `{name}` failed (seed {:#x}, case {case}, {steps} shrink steps)\n\
                 counterexample: {shrunk:?}\n{err}",
                cfg.seed
            );
        }
    }
}

/// Greedy shrink: repeatedly move to the first candidate that still
/// fails, until none does or the step budget runs out.
fn shrink_failure<T, P>(mut value: T, mut err: String, prop: &P, cfg: &Config) -> (T, String, u64)
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0u64;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in value.shrinks() {
            steps += 1;
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
            if let Err(e) = prop(&candidate) {
                value = candidate;
                err = e;
                continue 'outer;
            }
        }
        break; // no candidate fails: locally minimal
    }
    (value, err, steps)
}

/// Asserts a condition inside a property, returning `Err` with the
/// formatted message (and the stringified condition) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}\n  {}",
                file!(), line!(), stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property, returning `Err` with both values
/// on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n  right: {:?}",
                file!(), line!(), stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n  right: {:?}\n  {}",
                file!(), line!(), stringify!($left), stringify!($right), l, r,
                format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 with seed 1234567: first outputs from the reference
        // implementation (Steele, Lea & Flood / xoshiro.di.unimi.it).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(r.next_u64(), 0x2c73_f084_5854_0fa5);
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_case() {
        let a: Vec<u64> = (0..8).map(|c| case_rng(7, c).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|c| case_rng(7, c).next_u64()).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8).map(|c| case_rng(8, c).next_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_inclusive_and_in_bounds() {
        let mut r = Rng::new(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = r.i64_in(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
            let u = r.u64_in(5, 9);
            assert!((5..=9).contains(&u));
        }
        assert!(seen_lo && seen_hi, "range endpoints never drawn");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let runs = std::cell::Cell::new(0u64);
        check(
            "counts",
            &Config::with_cases(100),
            |rng| rng.i64_in(0, 10),
            |v| {
                runs.set(runs.get() + 1);
                prop_assert!((0..=10).contains(v));
                Ok(())
            },
        );
        assert_eq!(runs.get(), 100);
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        // Property "v < 50" over [0, 1000]: the minimal counterexample is
        // exactly 50 and greedy integer shrinking must find it.
        let result = std::panic::catch_unwind(|| {
            check(
                "shrinks",
                &Config::with_cases(256),
                |rng| rng.i64_in(0, 1000),
                |&v| {
                    prop_assert!(v < 50, "v = {v}");
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("counterexample: 50"), "got: {msg}");
    }

    #[test]
    fn tuple_shrinking_minimizes_each_component() {
        let result = std::panic::catch_unwind(|| {
            check(
                "tuple",
                &Config::with_cases(256),
                |rng| (rng.i64_in(0, 40), rng.i64_in(0, 40)),
                |&(a, b)| {
                    prop_assert!(a + b < 25);
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // Greedy shrink drives the sum to exactly 25 with one coordinate 0.
        assert!(
            msg.contains("(0, 25)") || msg.contains("(25, 0)"),
            "got: {msg}"
        );
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        let result = std::panic::catch_unwind(|| {
            check(
                "vec",
                &Config::with_cases(64),
                |rng| rng.vec(0, 30, |r| r.u64_in(0, 9)),
                |v: &Vec<u64>| {
                    prop_assert!(v.len() < 5, "len {}", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // A minimal failing vector has exactly 5 (shrunk-to-zero) elements.
        assert!(msg.contains("[0, 0, 0, 0, 0]"), "got: {msg}");
    }

    #[test]
    fn shrink_candidates_never_contain_self() {
        for v in [-9i64, -1, 0, 1, 2, 17] {
            assert!(!v.shrinks().contains(&v));
        }
        for v in [0u64, 1, 2, 99] {
            assert!(!v.shrinks().contains(&v));
        }
    }
}
