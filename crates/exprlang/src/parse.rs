//! Lexer and recursive-descent parser for the einsum statement grammar.
//!
//! The surface syntax is deliberately tiny — one line per statement —
//! but the diagnostics follow the same contract as the `.dr` DSL in
//! `datareuse-loopir`: every error is a [`ParseNestError`] carrying the
//! 1-based line and column of the offending token.

use datareuse_loopir::{AffineExpr, ParseNestError};

use crate::ast::{Pos, Statement, TensorRef};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Semi,
    Plus,
    PlusEq,
    Minus,
    Star,
    Eq,
    Tilde,
    Colon,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::PlusEq => write!(f, "`+=`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Tilde => write!(f, "`~`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            at: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.at += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while matches!(self.peek_byte(), Some(b) if b != b'\n') {
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.at + 1) == Some(&b'/') => {
                    while matches!(self.peek_byte(), Some(b) if b != b'\n') {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, Pos), ParseNestError> {
        self.skip_trivia();
        let pos = Pos {
            line: self.line,
            column: self.col,
        };
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, pos));
        };
        let tok = match b {
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'-' => {
                self.bump();
                Tok::Minus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'~' => {
                self.bump();
                Tok::Tilde
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'+' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::PlusEq
                } else {
                    Tok::Plus
                }
            }
            b'0'..=b'9' => {
                let mut value: i64 = 0;
                while let Some(d) = self.peek_byte().filter(u8::is_ascii_digit) {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i64::from(d - b'0')))
                        .ok_or_else(|| {
                            ParseNestError {
                                line: pos.line,
                                column: pos.column,
                                message: "integer literal overflows i64".into(),
                            }
                        })?;
                    self.bump();
                }
                Tok::Int(value)
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let mut name = String::new();
                while let Some(c) = self
                    .peek_byte()
                    .filter(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    name.push(c as char);
                    self.bump();
                }
                Tok::Ident(name)
            }
            other => {
                return Err(ParseNestError {
                    line: pos.line,
                    column: pos.column,
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        };
        Ok((tok, pos))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    pos: Pos,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseNestError> {
        let mut lexer = Lexer::new(src);
        let (tok, pos) = lexer.next_token()?;
        Ok(Self { lexer, tok, pos })
    }

    fn err(&self, message: impl Into<String>) -> ParseNestError {
        ParseNestError {
            line: self.pos.line,
            column: self.pos.column,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Result<(), ParseNestError> {
        let (tok, pos) = self.lexer.next_token()?;
        self.tok = tok;
        self.pos = pos;
        Ok(())
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseNestError> {
        if self.tok == want {
            self.advance()
        } else {
            Err(self.err(format!("expected {want}, found {}", self.tok)))
        }
    }

    fn take_ident(&mut self, what: &str) -> Result<(String, Pos), ParseNestError> {
        match self.tok.clone() {
            Tok::Ident(name) => {
                let pos = self.pos;
                self.advance()?;
                Ok((name, pos))
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn take_int(&mut self, what: &str) -> Result<i64, ParseNestError> {
        // A leading minus is accepted so "i=-4" fails with a bounds
        // message rather than a token soup.
        let negative = self.tok == Tok::Minus;
        if negative {
            self.advance()?;
        }
        match self.tok {
            Tok::Int(v) => {
                self.advance()?;
                Ok(if negative { -v } else { v })
            }
            ref other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    /// `IDENT "[" expr ("," expr)* "]"`, recording iterator first
    /// appearances into `seen`.
    fn tensor(&mut self, seen: &mut Vec<String>) -> Result<TensorRef, ParseNestError> {
        let (name, pos) = self.take_ident("a tensor name")?;
        self.expect(Tok::LBracket)?;
        let mut indices = vec![self.affine(seen)?];
        while self.tok == Tok::Comma {
            self.advance()?;
            indices.push(self.affine(seen)?);
        }
        self.expect(Tok::RBracket)?;
        Ok(TensorRef { name, indices, pos })
    }

    fn affine(&mut self, seen: &mut Vec<String>) -> Result<AffineExpr, ParseNestError> {
        let mut expr = self.affine_term(seen)?;
        loop {
            match self.tok {
                Tok::Plus => {
                    self.advance()?;
                    expr = expr + self.affine_term(seen)?;
                }
                Tok::Minus => {
                    self.advance()?;
                    expr = expr - self.affine_term(seen)?;
                }
                _ => return Ok(expr),
            }
        }
    }

    fn affine_term(&mut self, seen: &mut Vec<String>) -> Result<AffineExpr, ParseNestError> {
        let mut expr = self.affine_factor(seen)?;
        while self.tok == Tok::Star {
            let at = self.pos;
            self.advance()?;
            let rhs = self.affine_factor(seen)?;
            expr = if rhs.is_constant() {
                expr.scaled(rhs.constant_part())
            } else if expr.is_constant() {
                rhs.scaled(expr.constant_part())
            } else {
                return Err(ParseNestError {
                    line: at.line,
                    column: at.column,
                    message: "non-affine product of two iterator expressions".into(),
                });
            };
        }
        Ok(expr)
    }

    fn affine_factor(&mut self, seen: &mut Vec<String>) -> Result<AffineExpr, ParseNestError> {
        match self.tok.clone() {
            Tok::Int(v) => {
                self.advance()?;
                Ok(AffineExpr::constant(v))
            }
            Tok::Ident(name) => {
                self.advance()?;
                if !seen.iter().any(|s| *s == name) {
                    seen.push(name.clone());
                }
                Ok(AffineExpr::var(name))
            }
            Tok::Minus => {
                self.advance()?;
                Ok(-self.affine_factor(seen)?)
            }
            Tok::LParen => {
                self.advance()?;
                let inner = self.affine(seen)?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected an index expression, found {other}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseNestError> {
        let mut iterators = Vec::new();
        let output = self.tensor(&mut iterators)?;
        let accumulate = match self.tok {
            Tok::PlusEq => true,
            Tok::Eq => false,
            ref other => return Err(self.err(format!("expected `+=` or `=`, found {other}"))),
        };
        self.advance()?;
        let mut inputs = vec![self.tensor(&mut iterators)?];
        while self.tok == Tok::Star {
            self.advance()?;
            inputs.push(self.tensor(&mut iterators)?);
        }
        let mut order = None;
        if self.tok == Tok::Tilde {
            self.advance()?;
            let mut names = Vec::new();
            loop {
                match self.tok.clone() {
                    Tok::Ident(name) if name != "where" => {
                        names.push((name, self.pos));
                        self.advance()?;
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        }
                    }
                    _ => break,
                }
            }
            if names.is_empty() {
                return Err(self.err("`~` expects a loop order (iterator names)"));
            }
            order = Some(names);
        }
        let mut extents = std::collections::BTreeMap::new();
        let mut bits = std::collections::BTreeMap::new();
        if matches!(&self.tok, Tok::Ident(w) if w == "where") {
            self.advance()?;
            loop {
                let (name, pos) = self.take_ident("an iterator or array name")?;
                match self.tok {
                    Tok::Eq => {
                        self.advance()?;
                        let v = self.take_int("an iterator extent")?;
                        if v <= 0 {
                            return Err(ParseNestError {
                                line: pos.line,
                                column: pos.column,
                                message: format!("iterator `{name}` has non-positive extent {v}"),
                            });
                        }
                        if extents.insert(name.clone(), (v, pos)).is_some() {
                            return Err(ParseNestError {
                                line: pos.line,
                                column: pos.column,
                                message: format!("iterator `{name}` is bound twice in `where`"),
                            });
                        }
                    }
                    Tok::Colon => {
                        self.advance()?;
                        let v = self.take_int("a bit width")?;
                        if !(1..=64).contains(&v) {
                            return Err(ParseNestError {
                                line: pos.line,
                                column: pos.column,
                                message: format!("array `{name}` has bit width {v} outside 1..=64"),
                            });
                        }
                        if bits.insert(name.clone(), (v as u32, pos)).is_some() {
                            return Err(ParseNestError {
                                line: pos.line,
                                column: pos.column,
                                message: format!("array `{name}` has two bit widths in `where`"),
                            });
                        }
                    }
                    ref other => {
                        return Err(self.err(format!(
                            "expected `=` (iterator extent) or `:` (array bits), found {other}"
                        )))
                    }
                }
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        Ok(Statement {
            output,
            accumulate,
            inputs,
            order,
            extents,
            bits,
            iterators,
        })
    }
}

/// Parses an expression program into its statements.
///
/// # Errors
///
/// A [`ParseNestError`] at the first offending token.
///
/// # Examples
///
/// ```
/// use datareuse_exprlang::parse_statements;
///
/// let stmts = parse_statements("S[q,k] += Q[q,d] * K[k,d] where d=16").unwrap();
/// assert_eq!(stmts.len(), 1);
/// assert_eq!(stmts[0].iterators(), ["q", "k", "d"]);
/// assert!(stmts[0].is_accumulate());
/// ```
pub fn parse_statements(src: &str) -> Result<Vec<Statement>, ParseNestError> {
    let mut parser = Parser::new(src)?;
    let mut statements = Vec::new();
    loop {
        while parser.tok == Tok::Semi {
            parser.advance()?;
        }
        if parser.tok == Tok::Eof {
            break;
        }
        statements.push(parser.statement()?);
        match parser.tok {
            Tok::Semi | Tok::Eof => {}
            ref other => {
                return Err(parser.err(format!("expected `;` or end of input, found {other}")))
            }
        }
    }
    if statements.is_empty() {
        return Err(parser.err("expected at least one statement"));
    }
    Ok(statements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_statement_shape() {
        let s = &parse_statements("C[i,j] += A[i,k] * B[k,j] ~ ijk where i=4, j=4, k=4").unwrap()[0];
        assert_eq!(s.output().name(), "C");
        assert_eq!(s.inputs().len(), 2);
        assert_eq!(s.iterators(), ["i", "j", "k"]);
        assert_eq!(s.order.as_ref().unwrap().len(), 1); // `ijk` split during lowering
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse_statements("C[i,j] += A[i,k * B[k,j]").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 17, "{e}");
        let e = parse_statements("C[i,j]\n  -= A[i]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected `+=` or `=`"), "{e}");
    }

    #[test]
    fn rejects_nonaffine_products_and_bad_clauses() {
        assert!(parse_statements("C[i] += A[i*i]").unwrap_err().message.contains("non-affine"));
        assert!(parse_statements("C[i] += A[i] where i=0")
            .unwrap_err()
            .message
            .contains("non-positive"));
        assert!(parse_statements("C[i] += A[i] where A:99")
            .unwrap_err()
            .message
            .contains("outside 1..=64"));
        assert!(parse_statements("").is_err());
    }

    #[test]
    fn shifted_and_scaled_indices_parse() {
        let s = &parse_statements("y[n] += x[2*n - t + 63] * h[t]").unwrap()[0];
        let idx = &s.inputs()[0].indices()[0];
        assert_eq!(idx.coeff("n"), 2);
        assert_eq!(idx.coeff("t"), -1);
        assert_eq!(idx.constant_part(), 63);
    }

    #[test]
    fn statements_split_on_semicolons() {
        let stmts = parse_statements("a[i] = b[i]; c[j] += d[j] * e[j];").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(!stmts[0].is_accumulate());
    }
}
