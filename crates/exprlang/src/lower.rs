//! Domain inference and lowering: from parsed [`Statement`]s to a
//! validated loop-nest [`Program`].
//!
//! The inference rules are the ones the paper's kernels imply:
//!
//! - every iterator ranges over `0 ..= extent-1`, with the extent taken
//!   from the `where` clause or defaulting to [`DEFAULT_EXTENT`];
//! - each array dimension's extent is the maximum reachable index value
//!   plus one (so a shifted window like `x[n + t]` gets the familiar
//!   `outputs + taps - 1` halo automatically); an index that can reach
//!   a negative value is an error at the tensor's position;
//! - the lowered access list is the reads in right-hand-side order
//!   followed by the single write of the output — exactly the shape of
//!   the hand-coded kernels in `datareuse-kernels`, so an expression
//!   matmul and the builtin `matmul` produce *equal* programs.

use std::collections::BTreeMap;

use datareuse_loopir::{Access, ArrayDecl, Loop, LoopNest, ParseNestError, Program};

use crate::ast::{Pos, Statement, TensorRef};

/// Extent given to iterators the `where` clause does not mention.
pub const DEFAULT_EXTENT: i64 = 32;

fn err(pos: Pos, message: impl Into<String>) -> ParseNestError {
    ParseNestError {
        line: pos.line,
        column: pos.column,
        message: message.into(),
    }
}

/// What lowering has learned about one array, merged across every
/// occurrence in the program.
struct ArrayInfo {
    extents: Vec<i64>,
    written: bool,
    bits: Option<(u32, Pos)>,
    first: Pos,
    appearance: usize,
}

/// Resolves the statement's loop order: the `~` clause (with one-word
/// forms like `ijk` split into single-letter iterators) checked to be a
/// permutation of the inferred iterators, or first-appearance order.
fn loop_order(stmt: &Statement) -> Result<Vec<String>, ParseNestError> {
    let iters = &stmt.iterators;
    let Some(order) = &stmt.order else {
        return Ok(iters.clone());
    };
    let mut names: Vec<(String, Pos)> = order.clone();
    if names.len() == 1 && !iters.contains(&names[0].0) {
        // `~ ijk`: split into per-character iterators when every letter
        // names one.
        let (word, pos) = names[0].clone();
        let split: Vec<(String, Pos)> =
            word.chars().map(|c| (c.to_string(), pos)).collect();
        if split.iter().all(|(n, _)| iters.contains(n)) {
            names = split;
        }
    }
    for (name, pos) in &names {
        if !iters.contains(name) {
            return Err(err(
                *pos,
                format!("loop order names `{name}`, which appears in no index expression"),
            ));
        }
    }
    for (i, (name, pos)) in names.iter().enumerate() {
        if names[..i].iter().any(|(n, _)| n == name) {
            return Err(err(*pos, format!("loop order mentions `{name}` twice")));
        }
    }
    if names.len() != iters.len() {
        let missing: Vec<&str> = iters
            .iter()
            .filter(|i| !names.iter().any(|(n, _)| n == *i))
            .map(String::as_str)
            .collect();
        return Err(err(
            names[0].1,
            format!("loop order misses iterator(s): {}", missing.join(", ")),
        ));
    }
    Ok(names.into_iter().map(|(n, _)| n).collect())
}

/// Per-iterator extent for one statement.
fn extent_of(stmt: &Statement, name: &str) -> i64 {
    stmt.extents.get(name).map_or(DEFAULT_EXTENT, |(v, _)| *v)
}

/// Folds one tensor occurrence into the array table, inferring each
/// dimension's extent from the reachable index range.
fn merge_tensor(
    arrays: &mut BTreeMap<String, ArrayInfo>,
    stmt: &Statement,
    t: &TensorRef,
    written: bool,
    next_appearance: &mut usize,
) -> Result<(), ParseNestError> {
    let mut extents = Vec::with_capacity(t.indices.len());
    for expr in &t.indices {
        let (lo, hi) = expr.value_range(|n| {
            stmt.iterators
                .iter()
                .any(|i| i == n)
                .then(|| (0, extent_of(stmt, n) - 1))
        });
        if lo < 0 {
            return Err(err(
                t.pos,
                format!(
                    "index `{expr}` of `{}` can reach {lo}; add a constant offset \
                     so every index stays non-negative",
                    t.name
                ),
            ));
        }
        extents.push(hi + 1);
    }
    match arrays.get_mut(&t.name) {
        None => {
            arrays.insert(
                t.name.clone(),
                ArrayInfo {
                    extents,
                    written,
                    bits: None,
                    first: t.pos,
                    appearance: *next_appearance,
                },
            );
            *next_appearance += 1;
        }
        Some(info) => {
            if info.extents.len() != extents.len() {
                return Err(err(
                    t.pos,
                    format!(
                        "array `{}` is used with {} indices here but {} elsewhere",
                        t.name,
                        extents.len(),
                        info.extents.len()
                    ),
                ));
            }
            for (have, new) in info.extents.iter_mut().zip(extents) {
                *have = (*have).max(new);
            }
            info.written |= written;
        }
    }
    Ok(())
}

/// Lowers parsed statements into a loop-nest program: one nest per
/// statement, arrays declared in first-appearance order (inputs before
/// the output, as the hand-coded kernels declare them).
///
/// # Errors
///
/// A [`ParseNestError`] at the offending tensor or clause for domain
/// errors: negative reachable indices, rank mismatches across
/// statements, unknown names in `~` or `where`, conflicting bit widths.
///
/// # Examples
///
/// ```
/// use datareuse_exprlang::{lower, parse_statements};
///
/// let stmts = parse_statements("y[n] += x[n + t] * h[t] where n=16, t=4").unwrap();
/// let p = lower(&stmts).unwrap();
/// assert_eq!(p.array("x").unwrap().extents(), &[19]);
/// assert_eq!(p.nests()[0].iteration_count(), 64);
/// ```
pub fn lower(statements: &[Statement]) -> Result<Program, ParseNestError> {
    let mut arrays: BTreeMap<String, ArrayInfo> = BTreeMap::new();
    let mut next_appearance = 0usize;
    let mut nests = Vec::with_capacity(statements.len());
    for stmt in statements {
        // `where` clauses must talk about this statement's names.
        for (name, (_, pos)) in &stmt.extents {
            if !stmt.iterators.contains(name) {
                return Err(err(
                    *pos,
                    format!("`where {name}=...` names an iterator used in no index expression"),
                ));
            }
        }
        for t in &stmt.inputs {
            merge_tensor(&mut arrays, stmt, t, false, &mut next_appearance)?;
        }
        merge_tensor(&mut arrays, stmt, &stmt.output, true, &mut next_appearance)?;
        for (name, (bits, pos)) in &stmt.bits {
            let used = stmt.output.name == *name || stmt.inputs.iter().any(|t| t.name == *name);
            if !used {
                return Err(err(
                    *pos,
                    format!("`where {name}:...` names an array this statement does not use"),
                ));
            }
            let info = arrays.get_mut(name).expect("checked above");
            match info.bits {
                None => info.bits = Some((*bits, *pos)),
                Some((have, _)) if have == *bits => {}
                Some((have, _)) => {
                    return Err(err(
                        *pos,
                        format!("array `{name}` is declared {have}-bit elsewhere, {bits}-bit here"),
                    ));
                }
            }
        }
        let order = loop_order(stmt)?;
        let loops: Vec<Loop> = order
            .iter()
            .map(|n| Loop::new(n.clone(), 0, extent_of(stmt, n) - 1))
            .collect();
        let mut accesses: Vec<Access> = stmt
            .inputs
            .iter()
            .map(|t| Access::read(t.name.clone(), t.indices.iter().cloned()))
            .collect();
        accesses.push(Access::write(
            stmt.output.name.clone(),
            stmt.output.indices.iter().cloned(),
        ));
        nests.push((LoopNest::new(loops, accesses), stmt.output.pos));
    }
    let mut program = Program::new();
    let mut ordered: Vec<(&String, &ArrayInfo)> = arrays.iter().collect();
    ordered.sort_by_key(|(_, info)| info.appearance);
    for (name, info) in ordered {
        let bits = info
            .bits
            .map(|(b, _)| b)
            .unwrap_or(if info.written { 32 } else { 16 });
        let decl = ArrayDecl::new(name.clone(), info.extents.iter().copied(), bits)
            .map_err(|e| err(info.first, e.to_string()))?;
        program.declare(decl).map_err(|e| err(info.first, e.to_string()))?;
    }
    for (nest, pos) in nests {
        program.push_nest(nest).map_err(|e| err(pos, e.to_string()))?;
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statements;

    fn lowered(src: &str) -> Program {
        lower(&parse_statements(src).unwrap()).unwrap()
    }

    #[test]
    fn default_extent_applies_to_unmentioned_iterators() {
        let p = lowered("C[i,j] += A[i,k] * B[k,j]");
        for l in p.nests()[0].loops() {
            assert_eq!((l.lower(), l.upper()), (0, DEFAULT_EXTENT - 1));
        }
        assert_eq!(p.array("C").unwrap().extents(), &[32, 32]);
    }

    #[test]
    fn arrays_declare_inputs_first_then_output() {
        let p = lowered("C[i,j] += A[i,k] * B[k,j]");
        let names: Vec<&str> = p.arrays().iter().map(|a| a.name()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(p.array("A").unwrap().elem_bits(), 16);
        assert_eq!(p.array("C").unwrap().elem_bits(), 32);
    }

    #[test]
    fn one_word_order_splits_into_letters() {
        let p = lowered("C[i,j] += A[i,k] * B[k,j] ~ kij where i=4, j=5, k=6");
        let names: Vec<&str> = p.nests()[0].loops().iter().map(|l| l.name()).collect();
        assert_eq!(names, ["k", "i", "j"]);
    }

    #[test]
    fn negative_reach_is_an_error_with_position() {
        let e = lower(&parse_statements("y[n] += x[n - t] * h[t] where n=8, t=4").unwrap())
            .unwrap_err();
        assert!(e.message.contains("can reach -3"), "{e}");
        assert_eq!((e.line, e.column), (1, 9));
    }

    #[test]
    fn order_errors_name_the_problem() {
        let stmts = parse_statements("C[i,j] += A[i,k] * B[k,j] ~ i j").unwrap();
        assert!(lower(&stmts).unwrap_err().message.contains("misses iterator(s): k"));
        let stmts = parse_statements("C[i,j] += A[i,k] * B[k,j] ~ i j k q").unwrap();
        assert!(lower(&stmts).unwrap_err().message.contains("`q`"));
        let stmts = parse_statements("C[i,j] += A[i,k] * B[k,j] ~ i i k").unwrap();
        assert!(lower(&stmts).unwrap_err().message.contains("twice"));
    }

    #[test]
    fn rank_mismatch_across_statements_is_rejected() {
        let stmts = parse_statements("a[i] = b[i]; c[i,j] += b[i,j] * d[j]").unwrap();
        assert!(lower(&stmts).unwrap_err().message.contains("indices"));
    }

    #[test]
    fn shared_arrays_take_the_max_extent_and_union_bits() {
        let p = lowered("a[i] = b[i] where i=8; c[j] += b[2*j] * d[j] where j=8, b:8");
        assert_eq!(p.array("b").unwrap().extents(), &[15]);
        assert_eq!(p.array("b").unwrap().elem_bits(), 8);
        assert_eq!(p.nests().len(), 2);
    }

    #[test]
    fn where_clause_must_name_used_things() {
        let stmts = parse_statements("a[i] = b[i] where q=8").unwrap();
        assert!(lower(&stmts).unwrap_err().message.contains("no index expression"));
        let stmts = parse_statements("a[i] = b[i] where z:8").unwrap();
        assert!(lower(&stmts).unwrap_err().message.contains("does not use"));
    }
}
