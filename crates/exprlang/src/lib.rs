//! # datareuse-exprlang
//!
//! Einsum-style array-expression front end for the `datareuse` project
//! (reproduction of the DATE 2002 data-reuse exploration paper).
//!
//! The paper's exploration step consumes *read accesses with affine
//! index expressions in nested loops*; this crate lets any tensor
//! contraction or stencil reach that IR from a one-line description:
//!
//! ```text
//! C[i,j] += A[i,k] * B[k,j] ~ i j k  where i=32, j=32, k=32
//! ```
//!
//! The pipeline has three stages, each with its own module:
//!
//! 1. **parse** ([`parse_statements`]) — a lexer and recursive-descent
//!    parser producing [`Statement`]s, with line/column diagnostics in
//!    the shared [`ParseNestError`] shape;
//! 2. **domain inference** — iterators are collected in first-appearance
//!    order, extents come from the `where` clause (default
//!    [`DEFAULT_EXTENT`]), and array extents are inferred per dimension
//!    as the maximum reachable index plus one;
//! 3. **lowering** ([`lower`]) — each statement becomes one
//!    [`LoopNest`](datareuse_loopir::LoopNest): reads in right-hand-side
//!    order followed by a single write of the output, so the lowered
//!    nest of `C[i,j] += A[i,k] * B[k,j]` is *identical* to the
//!    hand-coded `matmul` kernel and flows through the symbolic-first
//!    exploration unchanged.
//!
//! [`parse_expression`] runs all three stages.
//!
//! # Grammar
//!
//! ```text
//! program := stmt (";" stmt)* ";"?
//! stmt    := tensor ("+=" | "=") tensor ("*" tensor)*
//!            ("~" order)? ("where" clause ("," clause)*)?
//! tensor  := IDENT "[" expr ("," expr)* "]"
//! order   := IDENT ("," IDENT)*      -- or one word like `ijk`, split
//!                                       into single-letter iterators
//! clause  := IDENT "=" INT           -- iterator extent (loop 0..INT-1)
//!          | IDENT ":" INT           -- array element width in bits
//! expr    := affine arithmetic over iterators: +, -, *, parentheses
//! ```
//!
//! Defaults: unmentioned iterators get extent [`DEFAULT_EXTENT`]; arrays
//! that are only read are 16-bit, the written output is 32-bit (matching
//! the hand-coded kernel library). Comments run from `#` or `//` to end
//! of line.
//!
//! # Examples
//!
//! ```
//! use datareuse_exprlang::parse_expression;
//!
//! let program = parse_expression(
//!     "C[i,j] += A[i,k] * B[k,j] ~ i j k  where i=8, j=8, k=8",
//! ).unwrap();
//! assert_eq!(program.nests()[0].depth(), 3);
//! assert_eq!(program.array("A").unwrap().extents(), &[8, 8]);
//!
//! // A shifted-index FIR: the x window is inferred as outputs+taps-1.
//! let fir = parse_expression("y[n] += x[n + t] * h[t] where n=64, t=8").unwrap();
//! assert_eq!(fir.array("x").unwrap().extents(), &[71]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod lower;
mod parse;

pub use ast::{Statement, TensorRef};
pub use datareuse_loopir::ParseNestError;
pub use lower::{lower, DEFAULT_EXTENT};
pub use parse::parse_statements;

use datareuse_loopir::Program;

/// Parses and lowers an expression program in one call: the einsum
/// source becomes a validated [`Program`] ready for exploration.
///
/// # Errors
///
/// A [`ParseNestError`] carrying the 1-based line and column of the
/// offending token, for both syntax errors and domain-inference errors
/// (an index that can reach a negative value, an unknown iterator in
/// the `~` order, conflicting array shapes across statements).
///
/// # Examples
///
/// ```
/// use datareuse_exprlang::parse_expression;
///
/// let e = parse_expression("C[i,j] += A[i,k * B[k,j]").unwrap_err();
/// assert_eq!(e.line, 1);
/// assert!(e.column > 1);
/// ```
pub fn parse_expression(src: &str) -> Result<Program, ParseNestError> {
    lower(&parse_statements(src)?)
}

/// A quick syntactic test for "is this kernel argument an expression
/// rather than a registered name or a `.dr` file path?".
///
/// Expressions always contain an indexed tensor on the left of `=` or
/// `+=`; names and paths never contain both `[` and `=`.
///
/// # Examples
///
/// ```
/// use datareuse_exprlang::looks_like_expression;
///
/// assert!(looks_like_expression("C[i,j] += A[i,k] * B[k,j]"));
/// assert!(looks_like_expression("y[i] = x[i]"));
/// assert!(!looks_like_expression("me-small"));
/// assert!(!looks_like_expression("kernels/window.dr"));
/// ```
pub fn looks_like_expression(src: &str) -> bool {
    src.contains('[') && src.contains('=')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_does_not_trip_on_paths_or_names() {
        for name in ["me", "fir", "/tmp/a.dr", "a=b", "x[3]"] {
            assert!(!looks_like_expression(name), "{name}");
        }
        assert!(looks_like_expression("out[y,x] += img[y+i, x+j] where i=3, j=3"));
    }

    #[test]
    fn parse_expression_round_trips_a_conv() {
        let p = parse_expression(
            "out[y,x] += image[y+i, x+j] * coef[i,j] where y=16, x=16, i=3, j=3, image:8",
        )
        .unwrap();
        assert_eq!(p.array("image").unwrap().extents(), &[18, 18]);
        assert_eq!(p.array("image").unwrap().elem_bits(), 8);
        assert_eq!(p.array("out").unwrap().elem_bits(), 32);
        assert_eq!(p.nests()[0].accesses().len(), 3);
    }
}
