//! The expression-language AST: what one einsum statement says, before
//! domain inference turns it into loops and array declarations.

use std::collections::BTreeMap;

use datareuse_loopir::AffineExpr;

/// A source position (1-based line and column), carried by every AST
/// node that can still fail during lowering so diagnostics point at the
/// offending token rather than the whole statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Pos {
    pub line: usize,
    pub column: usize,
}

/// One indexed tensor occurrence, e.g. `A[i,k]` or `x[n - t + 63]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorRef {
    pub(crate) name: String,
    pub(crate) indices: Vec<AffineExpr>,
    pub(crate) pos: Pos,
}

impl TensorRef {
    /// The array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The affine index expression of each dimension.
    pub fn indices(&self) -> &[AffineExpr] {
        &self.indices
    }
}

/// One einsum statement: `output (+=|=) input (* input)* (~ order)?
/// (where clauses)?`.
///
/// Statements are produced by [`crate::parse_statements`] and consumed
/// by [`crate::lower`]; the accessors exist so tools (the CLI `kernels`
/// listing, tests) can inspect the inferred domain without lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    pub(crate) output: TensorRef,
    pub(crate) accumulate: bool,
    pub(crate) inputs: Vec<TensorRef>,
    /// Loop order from `~`, with the position of each name.
    pub(crate) order: Option<Vec<(String, Pos)>>,
    /// Iterator extents from `where i=N` clauses.
    pub(crate) extents: BTreeMap<String, (i64, Pos)>,
    /// Array element widths from `where A:BITS` clauses.
    pub(crate) bits: BTreeMap<String, (u32, Pos)>,
    /// Every iterator mentioned in an index expression, in order of
    /// first appearance (output indices first, then inputs left to
    /// right) — the default loop order.
    pub(crate) iterators: Vec<String>,
}

impl Statement {
    /// The written output tensor.
    pub fn output(&self) -> &TensorRef {
        &self.output
    }

    /// The read input tensors, left to right.
    pub fn inputs(&self) -> &[TensorRef] {
        &self.inputs
    }

    /// Whether the statement accumulates (`+=`) rather than assigns.
    pub fn is_accumulate(&self) -> bool {
        self.accumulate
    }

    /// The iterators of the statement in first-appearance order (the
    /// default loop order when no `~` clause is given).
    pub fn iterators(&self) -> &[String] {
        &self.iterators
    }
}
