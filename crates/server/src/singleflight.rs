//! Singleflight coalescing: concurrent identical requests share one
//! computation.
//!
//! The result cache only helps *after* a computation finishes; under
//! concurrent load the expensive window is the gap between the first
//! miss and its fill, when N identical requests would all race the
//! worker pool and redundantly compute the same pure function. This
//! registry closes that gap: the first request to miss for a canonical
//! cache key ([`crate::protocol::cache_key`]) becomes the **leader** and
//! submits the one job; every later request for the same key while the
//! job is in flight becomes a **follower** and merely subscribes to the
//! outcome. When the leader's job completes (result *or* error), every
//! subscriber's callback fires with the shared outcome and the entry is
//! retired — the next request for the key starts a fresh flight (or
//! hits the now-warm cache).
//!
//! Coalescing keys off the canonical request hash, not the cache, so it
//! works even with `--cache-entries 0`: a cacheless server still never
//! computes the same in-flight request twice. Followers are counted in
//! `serve_coalesced` and marked with `coalesced: true` in their response
//! envelope; the `stats`/`health` hit-ratio treats them as cache-path
//! traffic (they cost no compute), which is what keeps the SLO grade
//! honest under coalescing.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::ops::OpError;

/// The shared outcome of one in-flight computation: the serialized
/// result document, or the structured error every subscriber receives.
pub type FlightOutcome = Result<Arc<str>, OpError>;

/// A subscriber callback: invoked exactly once with the shared outcome
/// and whether this subscriber was a follower (`true`) or the leader
/// (`false`). Runs on whichever thread calls [`SingleFlight::complete`]
/// — completion callbacks must be cheap and non-blocking (the serving
/// loop's are: push to a queue, write one wake byte).
pub type Subscriber = Box<dyn FnOnce(&FlightOutcome, bool) + Send>;

/// The role [`SingleFlight::join`] assigned to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRole {
    /// First in: the caller must run the computation and
    /// [`SingleFlight::complete`] it.
    Leader,
    /// An identical computation is already in flight; the subscriber
    /// fires when it lands. The caller must *not* submit work.
    Follower,
}

/// Registry of in-flight computations keyed by canonical request hash.
#[derive(Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<u64, Vec<Subscriber>>>,
}

impl SingleFlight {
    /// An empty registry.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Subscribes to the computation for `key`, creating the flight if
    /// none exists. The returned role tells the caller whether it owns
    /// running the computation.
    pub fn join(&self, key: u64, subscriber: Subscriber) -> JoinRole {
        let mut inflight = self.inflight.lock().expect("singleflight poisoned");
        match inflight.entry(key) {
            Entry::Occupied(mut e) => {
                e.get_mut().push(subscriber);
                JoinRole::Follower
            }
            Entry::Vacant(e) => {
                e.insert(vec![subscriber]);
                JoinRole::Leader
            }
        }
    }

    /// Retires the flight for `key`, delivering `outcome` to every
    /// subscriber in join order (the leader's callback first, with
    /// `coalesced = false`; followers after, with `true`). Callbacks run
    /// outside the registry lock, so a callback may start a new flight
    /// for the same key without deadlocking.
    pub fn complete(&self, key: u64, outcome: &FlightOutcome) {
        let subscribers = self
            .inflight
            .lock()
            .expect("singleflight poisoned")
            .remove(&key)
            .unwrap_or_default();
        for (i, subscriber) in subscribers.into_iter().enumerate() {
            subscriber(outcome, i > 0);
        }
    }

    /// Number of subscribers currently waiting on `key` (0 when no
    /// flight exists). Workers use this to decide whether an expired
    /// leader may skip the compute: only when nobody else is waiting.
    pub fn waiting(&self, key: u64) -> usize {
        self.inflight
            .lock()
            .expect("singleflight poisoned")
            .get(&key)
            .map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn probe(
        log: &Arc<Mutex<Vec<(String, bool)>>>,
        tag: &str,
    ) -> Subscriber {
        let log = Arc::clone(log);
        let tag = tag.to_string();
        Box::new(move |outcome, coalesced| {
            let text = match outcome {
                Ok(raw) => format!("{tag}:{raw}"),
                Err(e) => format!("{tag}:err:{}", e.code),
            };
            log.lock().unwrap().push((text, coalesced));
        })
    }

    #[test]
    fn leader_then_followers_share_one_outcome() {
        let sf = SingleFlight::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        assert_eq!(sf.join(7, probe(&log, "a")), JoinRole::Leader);
        assert_eq!(sf.join(7, probe(&log, "b")), JoinRole::Follower);
        assert_eq!(sf.join(7, probe(&log, "c")), JoinRole::Follower);
        assert_eq!(sf.waiting(7), 3);
        sf.complete(7, &Ok(Arc::from("r")));
        let got = log.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                ("a:r".to_string(), false),
                ("b:r".to_string(), true),
                ("c:r".to_string(), true),
            ]
        );
        assert_eq!(sf.waiting(7), 0, "flight retired");
    }

    #[test]
    fn distinct_keys_are_independent_flights() {
        let sf = SingleFlight::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        assert_eq!(sf.join(1, probe(&log, "x")), JoinRole::Leader);
        assert_eq!(sf.join(2, probe(&log, "y")), JoinRole::Leader);
        sf.complete(2, &Ok(Arc::from("two")));
        sf.complete(1, &Ok(Arc::from("one")));
        let got = log.lock().unwrap().clone();
        assert_eq!(got[0].0, "y:two");
        assert_eq!(got[1].0, "x:one");
    }

    #[test]
    fn errors_fan_out_to_every_subscriber() {
        let sf = SingleFlight::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        sf.join(9, probe(&log, "a"));
        sf.join(9, probe(&log, "b"));
        sf.complete(
            9,
            &Err(OpError {
                code: "overloaded",
                message: "queue full".to_string(),
            }),
        );
        let got = log.lock().unwrap().clone();
        assert_eq!(got[0], ("a:err:overloaded".to_string(), false));
        assert_eq!(got[1], ("b:err:overloaded".to_string(), true));
    }

    #[test]
    fn completion_retires_the_key_for_a_fresh_flight() {
        let sf = SingleFlight::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        sf.join(4, probe(&log, "first"));
        sf.complete(4, &Ok(Arc::from("v1")));
        // A new request after completion is a new leader, not a follower
        // of a dead flight.
        assert_eq!(sf.join(4, probe(&log, "second")), JoinRole::Leader);
        sf.complete(4, &Ok(Arc::from("v2")));
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn complete_without_subscribers_is_a_no_op() {
        let sf = SingleFlight::new();
        sf.complete(42, &Ok(Arc::from("nobody")));
        assert_eq!(sf.waiting(42), 0);
    }

    #[test]
    fn concurrent_joins_agree_on_exactly_one_leader() {
        let sf = Arc::new(SingleFlight::new());
        let leaders = Arc::new(AtomicUsize::new(0));
        let delivered = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let leaders = Arc::clone(&leaders);
                let delivered = Arc::clone(&delivered);
                std::thread::spawn(move || {
                    let d = Arc::clone(&delivered);
                    let role = sf.join(11, Box::new(move |_, _| {
                        d.fetch_add(1, Ordering::SeqCst);
                    }));
                    if role == JoinRole::Leader {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "exactly one leader");
        sf.complete(11, &Ok(Arc::from("r")));
        assert_eq!(delivered.load(Ordering::SeqCst), 8, "everyone notified");
    }
}
