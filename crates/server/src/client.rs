//! A minimal blocking client for the NDJSON protocol.
//!
//! One [`Client`] owns one TCP connection and can issue any number of
//! sequential requests over it. This is what `datareuse query` and the
//! integration tests use; it is deliberately tiny — connect, write a
//! line, read a line.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use datareuse_obs::Json;

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// When the address does not resolve or the connection is refused.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
        // Line-oriented request/response traffic: disable Nagle so a
        // request is not held back waiting for the previous ACK.
        let _ = stream.set_nodelay(true);
        // Bound reads so a wedged server surfaces as an error instead of
        // hanging the caller forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (without the trailing newline).
    ///
    /// # Errors
    ///
    /// On socket failure or a server that closes without responding.
    pub fn send_raw(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(response.trim_end_matches('\n').to_string())
    }

    /// Sends a request document and parses the response envelope.
    ///
    /// # Errors
    ///
    /// On socket failure or an unparseable response.
    pub fn send(&mut self, request: &Json) -> Result<Json, String> {
        let raw = self.send_raw(&request.to_string())?;
        Json::parse(&raw).map_err(|e| format!("bad response: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn client_talks_to_a_live_server() {
        let server = Server::bind(&ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let pong = client
            .send(&Json::obj([("op", Json::str("ping"))]))
            .unwrap();
        assert_eq!(pong.get("result").and_then(Json::as_str), Some("pong"));
        let bye = client.send_raw(r#"{"op":"shutdown"}"#).unwrap();
        assert!(bye.contains("draining"));
        handle.join().unwrap();
    }
}
